#!/usr/bin/env python3
"""Schema check for the BENCH_*.json artifacts at the repository root.

Every benchmark artifact follows the same envelope: a JSON object with a
``benchmark`` pointer to the harness source, a ``workload`` object whose
``description`` explains what was measured, at least one result section
(``default_scale``, ``paper_scale``, ``pre_refactor``/``post_refactor``, …)
and an ``environment`` object recording how the numbers were produced.
CI runs this against every ``BENCH_*.json`` so a hand-edited artifact that
drops a section, references a benchmark file that no longer exists, or
stops being valid JSON fails the push that broke it.

Usage: python3 scripts/check_bench_schema.py [BENCH_foo.json ...]
With no arguments, checks every BENCH_*.json in the repository root.
"""

import glob
import json
import os
import sys

ENVELOPE_KEYS = ("benchmark", "workload", "environment")


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def check(path, repo_root):
    def reject_non_finite(token):
        # Python's json module accepts NaN/Infinity literals by default;
        # a speedup or ratio that divided by zero must fail the check.
        raise ValueError(f"non-finite number {token!r}")

    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle, parse_constant=reject_non_finite)
    except (OSError, ValueError) as err:
        return fail(path, f"not readable JSON: {err}")

    if not isinstance(doc, dict):
        return fail(path, "top level must be a JSON object")

    for key in ENVELOPE_KEYS:
        if key not in doc:
            return fail(path, f"missing required key {key!r}")

    benchmark = doc["benchmark"]
    if not isinstance(benchmark, str) or not benchmark:
        return fail(path, "'benchmark' must be a non-empty source path")
    if not os.path.exists(os.path.join(repo_root, benchmark)):
        return fail(path, f"'benchmark' points at a missing file: {benchmark}")

    workload = doc["workload"]
    if not isinstance(workload, dict):
        return fail(path, "'workload' must be an object")
    prose = workload.get("description", workload.get("notes"))
    if not isinstance(prose, str) or len(prose) < 40:
        return fail(path, "'workload' needs a description/notes prose field")

    if not isinstance(doc["environment"], dict):
        return fail(path, "'environment' must be an object")

    result_sections = [
        key
        for key, value in doc.items()
        if key not in ENVELOPE_KEYS and isinstance(value, dict)
    ]
    if not result_sections:
        return fail(path, "no result section (e.g. 'default_scale') found")

    print(f"ok   {path}: sections {', '.join(sorted(result_sections))}")
    return True


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = argv or sorted(glob.glob(os.path.join(repo_root, "BENCH_*.json")))
    if not paths:
        print("FAIL: no BENCH_*.json artifacts found")
        return 1
    ok = all([check(path, repo_root) for path in paths])
    print(f"checked {len(paths)} artifact(s)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
