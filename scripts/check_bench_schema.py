#!/usr/bin/env python3
"""Schema check for the BENCH_*.json artifacts at the repository root.

Every benchmark artifact follows the same envelope: a JSON object with a
``benchmark`` pointer to the harness source, a ``workload`` object whose
``description`` explains what was measured, at least one result section
(``default_scale``, ``paper_scale``, ``pre_refactor``/``post_refactor``, …)
and an ``environment`` object recording how the numbers were produced.
CI runs this against every ``BENCH_*.json`` so a hand-edited artifact that
drops a section, references a benchmark file that no longer exists, or
stops being valid JSON fails the push that broke it.

The script also validates the telemetry subsystem's JSONL exports
(flight-recorder traces, metrics-hub series, block-journey spans) via
``--jsonl KIND FILE...`` so the telemetry-smoke CI job can gate the
``trace_probe`` output on schema, not just on existing.

Usage: python3 scripts/check_bench_schema.py [BENCH_foo.json ...]
       python3 scripts/check_bench_schema.py --jsonl {trace|series|journeys} FILE...
With no arguments, checks every BENCH_*.json in the repository root.
"""

import glob
import json
import os
import sys

ENVELOPE_KEYS = ("benchmark", "workload", "environment")

# Required keys per telemetry JSONL kind, with the type every line must
# carry for each. ``series`` values may be fractional; everything else
# the recorder emits is an integer count or microsecond timestamp.
JSONL_SCHEMAS = {
    "trace": {"t_us": int, "node": int, "kind": str},
    "series": {"series": str, "t_secs": (int, float), "value": (int, float)},
    "journeys": {
        "seq": int,
        "sealed_us": int,
        "accepts": int,
        "tree_pushes": int,
        "mesh_serves": int,
        "mesh_recovery_hops": int,
        "duplicates": int,
        # null when the block never reached that fraction of receivers
        # before the run ended — a truncated journey, not a bad line.
        "reach_p50_us": (int, type(None)),
        "reach_p95_us": (int, type(None)),
    },
}


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def check(path, repo_root):
    def reject_non_finite(token):
        # Python's json module accepts NaN/Infinity literals by default;
        # a speedup or ratio that divided by zero must fail the check.
        raise ValueError(f"non-finite number {token!r}")

    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle, parse_constant=reject_non_finite)
    except (OSError, ValueError) as err:
        return fail(path, f"not readable JSON: {err}")

    if not isinstance(doc, dict):
        return fail(path, "top level must be a JSON object")

    for key in ENVELOPE_KEYS:
        if key not in doc:
            return fail(path, f"missing required key {key!r}")

    benchmark = doc["benchmark"]
    if not isinstance(benchmark, str) or not benchmark:
        return fail(path, "'benchmark' must be a non-empty source path")
    if not os.path.exists(os.path.join(repo_root, benchmark)):
        return fail(path, f"'benchmark' points at a missing file: {benchmark}")

    workload = doc["workload"]
    if not isinstance(workload, dict):
        return fail(path, "'workload' must be an object")
    prose = workload.get("description", workload.get("notes"))
    if not isinstance(prose, str) or len(prose) < 40:
        return fail(path, "'workload' needs a description/notes prose field")

    if not isinstance(doc["environment"], dict):
        return fail(path, "'environment' must be an object")

    result_sections = [
        key
        for key, value in doc.items()
        if key not in ENVELOPE_KEYS and isinstance(value, dict)
    ]
    if not result_sections:
        return fail(path, "no result section (e.g. 'default_scale') found")

    print(f"ok   {path}: sections {', '.join(sorted(result_sections))}")
    return True


def check_jsonl(kind, path):
    def reject_non_finite(token):
        raise ValueError(f"non-finite number {token!r}")

    schema = JSONL_SCHEMAS[kind]
    try:
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
    except OSError as err:
        return fail(path, f"not readable: {err}")

    if not lines:
        return fail(path, f"empty {kind} export — the recorder emitted nothing")

    for number, line in enumerate(lines, start=1):
        try:
            doc = json.loads(line, parse_constant=reject_non_finite)
        except ValueError as err:
            return fail(path, f"line {number}: not valid JSON: {err}")
        if not isinstance(doc, dict):
            return fail(path, f"line {number}: not a JSON object")
        for key, want in schema.items():
            if key not in doc:
                return fail(path, f"line {number}: missing key {key!r}")
            value = doc[key]
            # bool is an int subclass in Python; a true/false where a
            # count belongs is a schema break, not a number.
            if isinstance(value, bool) or not isinstance(value, want):
                return fail(
                    path, f"line {number}: {key!r} has wrong type {type(value).__name__}"
                )

    print(f"ok   {path}: {len(lines)} {kind} line(s)")
    return True


def main(argv):
    if argv and argv[0] == "--jsonl":
        if len(argv) < 3 or argv[1] not in JSONL_SCHEMAS:
            kinds = "|".join(sorted(JSONL_SCHEMAS))
            print(f"usage: check_bench_schema.py --jsonl {{{kinds}}} FILE...")
            return 2
        kind, paths = argv[1], argv[2:]
        ok = all([check_jsonl(kind, path) for path in paths])
        print(f"checked {len(paths)} {kind} file(s)")
        return 0 if ok else 1

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = argv or sorted(glob.glob(os.path.join(repo_root, "BENCH_*.json")))
    if not paths:
        print("FAIL: no BENCH_*.json artifacts found")
        return 1
    ok = all([check(path, repo_root) for path in paths])
    print(f"checked {len(paths)} artifact(s)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
