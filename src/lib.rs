//! # bullet-suite
//!
//! Umbrella crate for the reproduction of *Bullet: High Bandwidth Data
//! Dissemination Using an Overlay Mesh* (Kostić et al., SOSP 2003).
//!
//! The workspace is organized as one crate per subsystem; this crate simply
//! re-exports them under stable names and provides a [`prelude`] so examples
//! and downstream users can pull in the common types with a single import.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-versus-measured record of every figure.

#![warn(missing_docs)]

pub use bullet_baselines as baselines;
pub use bullet_codec as codec;
pub use bullet_content as content;
pub use bullet_core as bullet;
pub use bullet_dynamics as dynamics;
pub use bullet_experiments as experiments;
pub use bullet_netsim as netsim;
pub use bullet_overlay as overlay;
pub use bullet_ransub as ransub;
pub use bullet_telemetry as telemetry;
pub use bullet_topology as topology;
pub use bullet_transport as transport;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use bullet_netsim::{
        Agent, Context, LinkSpec, NetworkSpec, OverlayId, Sim, SimDuration, SimRng, SimTime,
    };
    pub use bullet_topology::{generate, BandwidthProfile, LossProfile, TopologyConfig};
}
