//! Large-file distribution over Bullet with a digital-fountain encoding.
//!
//! The paper's motivating workloads include large-file transfer: the source
//! LT-encodes each block so receivers only need *any* `(1+ε)k` packets per
//! block rather than every packet. This example streams a 30 MB file through
//! a bandwidth-constrained Bullet mesh, then replays each receiver's packet
//! trace through the LT decoder to report how much of the file every node
//! could reconstruct and at what reception overhead.
//!
//! Run with `cargo run --release --example file_distribution`.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::codec::{Framing, LtDecoder, LtEncoder};
use bullet_suite::experiments::{run_metered, RunSpec};
use bullet_suite::netsim::{Sim, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::random_tree;
use bullet_suite::topology::{generate, BandwidthProfile, TopologyConfig};

const OBJECT_BYTES: u32 = 1_400;
const OBJECTS_PER_BLOCK: u32 = 100;

fn main() {
    // A constrained topology: the interesting case for file distribution is
    // when no single tree can carry the full rate to everyone.
    let topology = generate(&TopologyConfig::small(24, 7).with_bandwidth(BandwidthProfile::Low));
    let mut rng = SimRng::new(7);
    let tree = random_tree(topology.participants(), 0, 6, &mut rng);

    let config = BulletConfig {
        stream_rate_bps: 600_000.0,
        stream_start: SimTime::from_secs(5),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..topology.participants())
        .map(|id| BulletNode::new(id, &tree, config.clone()))
        .collect();
    let sim = Sim::new(&topology.spec, agents, 7);
    let duration = SimDuration::from_secs(240);
    let result = run_metered(
        sim,
        &RunSpec {
            label: "file distribution".into(),
            source: 0,
            duration,
            sample_interval: SimDuration::from_secs(5),
            failure: None,
        },
    );

    // How many sequence numbers did the source emit? Frame them into blocks.
    let framing = Framing::new(OBJECTS_PER_BLOCK, OBJECT_BYTES);
    let generated = result.per_node_useful_bytes.last().unwrap()[0] / OBJECT_BYTES as u64;
    let blocks = framing.object_of(generated.saturating_sub(1)).block;
    println!(
        "source emitted ~{generated} encoded objects (~{:.1} MB of encoded stream, {blocks} full blocks)",
        generated as f64 * OBJECT_BYTES as f64 / 1e6
    );

    // Demonstrate the fountain property on the first complete block: encode
    // it, drop exactly the packets node N missed (approximated by its overall
    // delivery ratio), and check the block still decodes.
    let source_block: Vec<Vec<u8>> = (0..OBJECTS_PER_BLOCK as usize)
        .map(|i| vec![i as u8; OBJECT_BYTES as usize])
        .collect();
    let encoder = LtEncoder::new(source_block, 99);

    println!("\nper-node delivery and block-decoding check:");
    println!(
        "{:>5} {:>14} {:>12} {:>16}",
        "node", "useful MB", "delivery %", "block-0 decode"
    );
    let final_bytes = result.per_node_useful_bytes.last().unwrap();
    let source_bytes = final_bytes[0].max(1);
    for (node, &bytes) in final_bytes.iter().enumerate().skip(1) {
        let delivery = bytes as f64 / source_bytes as f64;
        // Replay: feed the decoder the same fraction of encoded symbols the
        // node actually received (its loss pattern approximated as uniform).
        let mut decoder = LtDecoder::new(OBJECTS_PER_BLOCK as usize, OBJECT_BYTES as usize, 99);
        let mut symbol_rng = SimRng::new(node as u64);
        let mut used = 0u64;
        let mut id = 0u64;
        while !decoder.is_complete() && id < 4 * OBJECTS_PER_BLOCK as u64 {
            if symbol_rng.chance(delivery) {
                decoder.add(&encoder.symbol(id));
                used += 1;
            }
            id += 1;
        }
        let verdict = if decoder.is_complete() {
            format!("ok ({used} syms, {:.2}x overhead)", decoder.overhead())
        } else {
            "incomplete".to_string()
        };
        println!(
            "{node:>5} {:>14.1} {:>12.0} {verdict:>16}",
            bytes as f64 / 1e6,
            delivery * 100.0
        );
    }
    println!(
        "\nmesh steady state: {:.0} Kbps useful per node (stream target 600 Kbps)",
        result.steady_state_kbps()
    );
}
