//! Prints the deterministic fingerprint of the fixed 64-node churn run.
//!
//! The workload (shared with `tests/determinism.rs` via
//! `tests/support/churn64.rs`) drives the bullet64 star through the
//! scenario engine: crash + rejoin, graceful leave with child handoff, a
//! flash crowd of late joiners, an access-link capacity oscillation, and a
//! correlated stub-router outage. The determinism test pins this
//! fingerprint to golden values; this example exists so they can be
//! (re)captured on any build.
//!
//! Run with `cargo run --release --example churn_probe`.

#[path = "../tests/support/churn64.rs"]
mod churn64;

fn main() {
    let (c, digest, bytes_sent, epoch, stats) = churn64::fingerprint();
    println!(
        "counters: delivered={} dropped_in_network={} dropped_dest_failed={} \
         dropped_src_failed={} timers_fired={} events={}",
        c.delivered,
        c.dropped_in_network,
        c.dropped_dest_failed,
        c.dropped_src_failed,
        c.timers_fired,
        c.events
    );
    println!("delivery_digest: {digest:#018x}");
    println!("total_bytes_sent: {bytes_sent}");
    println!("topology_epoch: {epoch}");
    println!(
        "scenario: crashes={} leaves={} joins={} link_mutations={} router_mutations={}",
        stats.crashes, stats.leaves, stats.joins, stats.link_mutations, stats.router_mutations
    );
}
