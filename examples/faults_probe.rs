//! Prints the deterministic fingerprint of the fixed 64-node faults run.
//!
//! The workload (shared with `tests/determinism.rs` via
//! `tests/support/faults64.rs`) drives the bullet64 star with the §4.6
//! recovery subsystem enabled through permanent crashes, a partition/heal
//! cycle and per-node control-message fault plans. The determinism test
//! pins this fingerprint to golden values; this example exists so they
//! can be (re)captured on any build.
//!
//! Run with `cargo run --release --example faults_probe`.

#[path = "../tests/support/faults64.rs"]
mod faults64;

fn main() {
    let (c, digest, bytes_sent, epoch, stats, reattaches) = faults64::fingerprint();
    println!(
        "counters: delivered={} dropped_in_network={} dropped_dest_failed={} \
         dropped_src_failed={} dropped_partitioned={} dropped_faulted={} \
         duplicated_faulted={} delayed_faulted={} timers_fired={} events={}",
        c.delivered,
        c.dropped_in_network,
        c.dropped_dest_failed,
        c.dropped_src_failed,
        c.dropped_partitioned,
        c.dropped_faulted,
        c.duplicated_faulted,
        c.delayed_faulted,
        c.timers_fired,
        c.events
    );
    println!("delivery_digest: {digest:#018x}");
    println!("total_bytes_sent: {bytes_sent}");
    println!("topology_epoch: {epoch}");
    println!(
        "scenario: crashes={} partitions={} heals={} faults={}",
        stats.crashes, stats.partitions, stats.heals, stats.faults
    );
    println!("reattaches: {reattaches}");
}
