//! Prints the deterministic fingerprint of the `BULLET_SCALE=paper` smoke
//! run (256 Bullet nodes streaming over a ≥20,000-router transit-stub
//! topology with lazy landmark-guided routing).
//!
//! The workload (shared with `tests/determinism.rs` via
//! `tests/support/paper_smoke.rs`) is asserted against golden values there;
//! this example exists so the fingerprint can be (re)captured on any build
//! of the simulator.
//!
//! Run with `cargo run --release --example paper_smoke_probe`.

#[path = "../tests/support/paper_smoke.rs"]
mod paper_smoke;

fn main() {
    let (c, digest, bytes_sent, routing) = paper_smoke::fingerprint();
    println!(
        "counters: delivered={} dropped_in_network={} dropped_dest_failed={} \
         dropped_src_failed={} timers_fired={} events={}",
        c.delivered,
        c.dropped_in_network,
        c.dropped_dest_failed,
        c.dropped_src_failed,
        c.timers_fired,
        c.events
    );
    println!("delivery_digest: {digest:#018x}");
    println!("total_bytes_sent: {bytes_sent}");
    println!(
        "routing: mode={} queries={} trees_built={} lazy_searches={} routers_settled={} landmarks={}",
        routing.mode.name(),
        routing.route_queries,
        routing.trees_built,
        routing.lazy_searches,
        routing.routers_settled,
        routing.landmarks
    );
}
