//! A live, wall-clock Bullet mesh running on operating-system threads.
//!
//! Everything else in this repository drives the protocol through the
//! deterministic discrete-event simulator. This example shows that the same
//! `BulletNode` state machine runs unmodified under a completely different
//! runtime: each overlay participant is a thread, messages travel over
//! in-process channels, and timers are real time. (There is no emulated
//! wide-area network here — the point is the runtime boundary, not the
//! bandwidth numbers.)
//!
//! Run with `cargo run --release --example live_mesh`.

use std::collections::BinaryHeap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread;
use std::time::{Duration, Instant};

use bullet_suite::bullet::{BulletConfig, BulletMsg, BulletNode};
use bullet_suite::netsim::{Action, Agent, Context, SimRng, SimTime, TimerAlloc, TimerId};
use bullet_suite::overlay::random_tree;

const NODES: usize = 8;
const RUN_SECONDS: u64 = 8;

/// One pending wall-clock timer.
struct PendingTimer {
    due: Instant,
    id: TimerId,
    tag: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by due time.
        other.due.cmp(&self.due)
    }
}

/// Runs one node's event loop until `deadline`.
fn node_loop(
    mut node: BulletNode,
    inbox: Receiver<(usize, BulletMsg)>,
    peers: Vec<Sender<(usize, BulletMsg)>>,
    start: Instant,
    deadline: Instant,
    seed: u64,
) -> BulletNode {
    let mut rng = SimRng::new(seed);
    let mut timer_alloc = TimerAlloc::new();
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let now_sim = |start: Instant| SimTime::from_micros(start.elapsed().as_micros() as u64);
    let my_id = node.id();

    // Apply the actions an agent callback produced. Cancellation retires the
    // timer's generation-stamped slot, so a cancelled entry still in the
    // heap is recognized as dead when it surfaces.
    let apply = |actions: Vec<Action<BulletMsg>>,
                 timers: &mut BinaryHeap<PendingTimer>,
                 timer_alloc: &mut TimerAlloc| {
        for action in actions {
            match action {
                Action::Send { to, msg, .. } => {
                    // Channel full/closed just means the run is ending.
                    let _ = peers[to].send((my_id, msg));
                }
                Action::SetTimer { id, delay, tag } => timers.push(PendingTimer {
                    due: Instant::now() + Duration::from_micros(delay.as_micros()),
                    id,
                    tag,
                }),
                Action::CancelTimer(id) => {
                    timer_alloc.retire(id);
                }
            }
        }
    };

    let mut actions = Vec::new();
    {
        let mut ctx = Context::new(
            now_sim(start),
            my_id,
            &mut rng,
            &mut actions,
            &mut timer_alloc,
        );
        node.on_start(&mut ctx);
    }
    apply(actions, &mut timers, &mut timer_alloc);

    while Instant::now() < deadline {
        // Fire due timers.
        while let Some(timer) = timers.peek() {
            if timer.due > Instant::now() {
                break;
            }
            let timer = timers.pop().expect("peeked");
            if timer_alloc.retire(timer.id).is_none() {
                continue; // cancelled before expiry
            }
            let mut actions = Vec::new();
            {
                let mut ctx = Context::new(
                    now_sim(start),
                    my_id,
                    &mut rng,
                    &mut actions,
                    &mut timer_alloc,
                );
                node.on_timer(&mut ctx, timer.tag);
            }
            apply(actions, &mut timers, &mut timer_alloc);
        }
        // Wait for the next message or the next timer, whichever is sooner.
        let wait = timers
            .peek()
            .map(|t| t.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        match inbox.recv_timeout(wait) {
            Ok((from, msg)) => {
                let mut actions = Vec::new();
                {
                    let mut ctx = Context::new(
                        now_sim(start),
                        my_id,
                        &mut rng,
                        &mut actions,
                        &mut timer_alloc,
                    );
                    node.on_message(&mut ctx, from, msg);
                }
                apply(actions, &mut timers, &mut timer_alloc);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    node
}

fn main() {
    let mut rng = SimRng::new(99);
    let tree = random_tree(NODES, 0, 3, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 400_000.0,
        stream_start: SimTime::from_secs(1),
        ..BulletConfig::default()
    };

    // One channel per node; every node gets a sender to every other node.
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for _ in 0..NODES {
        let (tx, rx) = channel::<(usize, BulletMsg)>();
        senders.push(tx);
        receivers.push(rx);
    }

    let start = Instant::now();
    let deadline = start + Duration::from_secs(RUN_SECONDS);
    println!("running a {NODES}-node live Bullet mesh for {RUN_SECONDS} wall-clock seconds...");

    let mut handles = Vec::new();
    for (id, inbox) in receivers.into_iter().enumerate() {
        let node = BulletNode::new(id, &tree, config.clone());
        let peers = senders.clone();
        handles.push(thread::spawn(move || {
            node_loop(node, inbox, peers, start, deadline, id as u64)
        }));
    }
    drop(senders);

    for handle in handles {
        let node = handle.join().expect("node thread panicked");
        let m = &node.metrics;
        println!(
            "node {:>2}: useful {:>7.0} KB, from parent {:>7.0} KB, peers(senders) {:?}",
            node.id(),
            m.delivery.useful_bytes as f64 / 1e3,
            m.delivery.from_parent_bytes as f64 / 1e3,
            node.sender_peers(),
        );
    }
    println!(
        "the same BulletNode code ran here under threads and real time instead of the simulator"
    );
}
