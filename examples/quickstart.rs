//! Quickstart: build a topology, layer Bullet over a random tree, stream for
//! a minute, and print what every receiver achieved.
//!
//! Run with `cargo run --release --example quickstart`.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::experiments::{run_metered, RunSpec};
use bullet_suite::netsim::{Sim, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::random_tree;
use bullet_suite::topology::{generate, BandwidthProfile, LossProfile, TopologyConfig};

fn main() {
    // 1. An Internet-like transit-stub topology with 20 participants whose
    //    access links follow the paper's "medium" bandwidth profile.
    let topology = generate(
        &TopologyConfig::small(20, 42)
            .with_bandwidth(BandwidthProfile::Medium)
            .with_loss(LossProfile::None),
    );
    println!(
        "topology: {} routers, {} links, {} participants",
        topology.spec.routers,
        topology.spec.links.len(),
        topology.participants()
    );

    // 2. A random overlay tree rooted at participant 0 (the stream source).
    let mut rng = SimRng::new(42);
    let tree = random_tree(topology.participants(), 0, 6, &mut rng);
    println!(
        "overlay tree: height {}, max degree {}",
        tree.height(),
        tree.max_degree()
    );

    // 3. One Bullet node per participant, streaming 600 Kbps from the root.
    let config = BulletConfig {
        stream_rate_bps: 600_000.0,
        stream_start: SimTime::from_secs(5),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..topology.participants())
        .map(|id| BulletNode::new(id, &tree, config.clone()))
        .collect();
    let sim = Sim::new(&topology.spec, agents, 42);

    // 4. Run for 90 simulated seconds, sampling bandwidth every 2 seconds.
    let result = run_metered(
        sim,
        &RunSpec {
            label: "Bullet quickstart".into(),
            source: 0,
            duration: SimDuration::from_secs(90),
            sample_interval: SimDuration::from_secs(2),
            failure: None,
        },
    );

    println!("\naverage useful bandwidth over time (Kbps):");
    for (t, kbps) in result.times.iter().zip(&result.useful.kbps) {
        if (*t as u64).is_multiple_of(10) {
            println!("  t={t:>5.0}s  {kbps:>7.1}");
        }
    }
    println!(
        "\nsteady state: {:.0} Kbps useful per node",
        result.steady_state_kbps()
    );
    println!(
        "duplicates: {:.1}%   control overhead: {:.1} Kbps/node   median delivery: {:.0}%",
        result.summary.duplicate_fraction * 100.0,
        result.summary.control_overhead_kbps,
        result.summary.median_delivery_fraction * 100.0
    );
}
