//! Runs a small instrumented Bullet workload and exports its telemetry:
//! the flight-recorder trace, the metrics-hub series, the per-block
//! journey spans, and the simulator self-profile, each as JSONL/JSON
//! files plus one `trace_probe {json}` summary line on stdout.
//!
//! This is the telemetry subsystem's end-to-end smoke: CI builds it,
//! validates the emitted JSONL against `scripts/check_bench_schema.py
//! --jsonl`, and asserts that at least one block journey crossed a
//! mesh-recovery edge (the probe itself panics otherwise, so a silent
//! regression cannot pass).
//!
//! Run with `cargo run --release --example trace_probe [out_dir]`
//! (default `target/trace_probe`). `BULLET_TRACE` overrides the trace
//! spec; the default records every category with a ring large enough
//! that nothing is evicted.

use std::fs;
use std::path::PathBuf;

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::experiments::{run_metered_with, RunSpec, TelemetryConfig};
use bullet_suite::netsim::telemetry::TraceSpec;
use bullet_suite::netsim::{LinkSpec, NetworkSpec, Sim, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::random_tree;

const NODES: usize = 48;
const SEED: u64 = 47;

fn count_lines(s: &str) -> usize {
    s.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Journeys whose `mesh_recovery_hops` field is non-zero — blocks at
/// least one node first received across the mesh rather than down its
/// tree edge.
fn mesh_recovery_journeys(journeys_jsonl: &str) -> usize {
    journeys_jsonl
        .lines()
        .filter(|line| {
            line.split("\"mesh_recovery_hops\":")
                .nth(1)
                .and_then(|rest| {
                    rest.split(|c: char| !c.is_ascii_digit())
                        .next()?
                        .parse::<u64>()
                        .ok()
                })
                .is_some_and(|hops| hops > 0)
        })
        .count()
}

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_probe".into())
        .into();

    // Star topology, Bullet over a degree-4 random tree — the bullet64
    // golden workload's shape, small enough to trace in full.
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..NODES)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let sim = Sim::new(&spec, agents, SEED);

    let telemetry_config = TelemetryConfig {
        trace: TraceSpec::from_env()
            .or_else(|| Some(TraceSpec::parse("all,cap=1048576").expect("valid default spec"))),
        profile: true,
    };
    let result = run_metered_with(
        sim,
        &RunSpec {
            label: "trace_probe".into(),
            source: 0,
            duration: SimDuration::from_secs(20),
            sample_interval: SimDuration::from_secs(2),
            failure: None,
        },
        &telemetry_config,
    );

    let telemetry = result.telemetry.expect("telemetry was configured on");
    let profile = telemetry.profile.expect("profiling was configured on");

    fs::create_dir_all(&out_dir).expect("create output dir");
    fs::write(out_dir.join("trace.jsonl"), &telemetry.trace_jsonl).expect("write trace");
    fs::write(out_dir.join("series.jsonl"), &telemetry.series_jsonl).expect("write series");
    fs::write(out_dir.join("journeys.jsonl"), &telemetry.journeys_jsonl).expect("write journeys");
    fs::write(out_dir.join("profile.json"), profile.to_json()).expect("write profile");

    let journeys = count_lines(&telemetry.journeys_jsonl);
    let mesh_journeys = mesh_recovery_journeys(&telemetry.journeys_jsonl);
    assert!(
        mesh_journeys >= 1,
        "no block journey crossed a mesh-recovery edge — the trace missed \
         Bullet's defining behaviour (journeys={journeys})"
    );

    println!(
        "trace_probe {{\"out_dir\":{:?},\"sim_events\":{},\"trace_lines\":{},\"series_lines\":{},\
         \"journeys\":{},\"mesh_recovery_journeys\":{},\"steady_useful_kbps\":{},\"profile\":{}}}",
        out_dir.display().to_string(),
        result.summary.sim_events,
        count_lines(&telemetry.trace_jsonl),
        count_lines(&telemetry.series_jsonl),
        journeys,
        mesh_journeys,
        result.summary.steady_useful_kbps,
        profile.to_json(),
    );
}
