//! Prints the deterministic fingerprint of the fixed 64-node adversary run.
//!
//! The workload (shared with `tests/determinism.rs` via
//! `tests/support/adversary64.rs`) drives the bullet64 star with the
//! data-plane integrity layer enabled while 20% of the overlay corrupts,
//! stalls or falsely advertises mid-stream. The determinism test pins
//! this fingerprint to golden values; this example exists so they can be
//! (re)captured on any build.
//!
//! Run with `cargo run --release --example adversary_probe`.

#[path = "../tests/support/adversary64.rs"]
mod adversary64;

fn main() {
    let (c, digest, bytes_sent, epoch, stats, quarantines) = adversary64::fingerprint();
    println!(
        "counters: delivered={} dropped_in_network={} dropped_dest_failed={} \
         dropped_src_failed={} dropped_partitioned={} dropped_faulted={} \
         duplicated_faulted={} delayed_faulted={} corrupted_adversary={} \
         stalled_adversary={} timers_fired={} events={}",
        c.delivered,
        c.dropped_in_network,
        c.dropped_dest_failed,
        c.dropped_src_failed,
        c.dropped_partitioned,
        c.dropped_faulted,
        c.duplicated_faulted,
        c.delayed_faulted,
        c.corrupted_adversary,
        c.stalled_adversary,
        c.timers_fired,
        c.events
    );
    println!("delivery_digest: {digest:#018x}");
    println!("total_bytes_sent: {bytes_sent}");
    println!("topology_epoch: {epoch}");
    println!("scenario: adversaries={}", stats.adversaries);
    println!("quarantines: {quarantines}");
}
