//! Real-time multimedia streaming over Bullet with layered (MDC-style)
//! quality.
//!
//! The paper's second motivating workload is real-time streaming to
//! heterogeneous receivers: with Multiple Description Coding, whatever subset
//! of the stream a receiver manages to pull still yields a usable (lower
//! quality) video. This example streams 600 Kbps split into four 150 Kbps
//! descriptions over a *low*-bandwidth topology, compares Bullet against
//! plain tree streaming on the same tree, and reports how many descriptions
//! each receiver can render.
//!
//! Run with `cargo run --release --example video_streaming`.

use bullet_suite::baselines::{StreamConfig, StreamTransport, StreamingNode};
use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::experiments::{run_metered, Cdf, RunResult, RunSpec};
use bullet_suite::netsim::{Sim, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::{random_tree, Tree};
use bullet_suite::topology::{generate, BandwidthProfile, BuiltTopology, TopologyConfig};

const DESCRIPTION_KBPS: f64 = 150.0;
const DESCRIPTIONS: u32 = 4;

fn spec(label: &str) -> RunSpec {
    RunSpec {
        label: label.into(),
        source: 0,
        duration: SimDuration::from_secs(150),
        sample_interval: SimDuration::from_secs(5),
        failure: None,
    }
}

fn run_bullet(topology: &BuiltTopology, tree: &Tree) -> RunResult {
    let config = BulletConfig {
        stream_rate_bps: DESCRIPTION_KBPS * DESCRIPTIONS as f64 * 1_000.0,
        stream_start: SimTime::from_secs(5),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..topology.participants())
        .map(|id| BulletNode::new(id, tree, config.clone()))
        .collect();
    run_metered(Sim::new(&topology.spec, agents, 11), &spec("Bullet"))
}

fn run_tree(topology: &BuiltTopology, tree: &Tree) -> RunResult {
    let config = StreamConfig {
        stream_rate_bps: DESCRIPTION_KBPS * DESCRIPTIONS as f64 * 1_000.0,
        stream_start: SimTime::from_secs(5),
        transport: StreamTransport::Tfrc,
        ..StreamConfig::default()
    };
    let agents: Vec<StreamingNode> = (0..topology.participants())
        .map(|id| StreamingNode::new(id, tree, config.clone()))
        .collect();
    run_metered(
        Sim::new(&topology.spec, agents, 11),
        &spec("Tree streaming"),
    )
}

fn describe(label: &str, result: &RunResult) {
    let at = result.times.last().copied().unwrap_or(0.0) * 0.9;
    let cdf: Cdf = result.instantaneous_cdf(at);
    let layers = |kbps: f64| (kbps / DESCRIPTION_KBPS).floor().min(DESCRIPTIONS as f64);
    println!("\n{label}:");
    println!(
        "  steady state useful bandwidth: {:.0} Kbps per node",
        result.steady_state_kbps()
    );
    println!(
        "  per-node instantaneous bandwidth at t={:.0}s: p10 {:.0}, median {:.0}, p90 {:.0} Kbps",
        at,
        cdf.quantile(0.1),
        cdf.quantile(0.5),
        cdf.quantile(0.9)
    );
    println!(
        "  renderable descriptions: worst node {:.0}, median node {:.0}, best node {:.0} (of {DESCRIPTIONS})",
        layers(cdf.quantile(0.0)),
        layers(cdf.quantile(0.5)),
        layers(cdf.quantile(1.0))
    );
    let starved = cdf
        .values
        .iter()
        .filter(|&&kbps| kbps < DESCRIPTION_KBPS)
        .count();
    println!(
        "  receivers below one description ({} Kbps): {starved} of {}",
        DESCRIPTION_KBPS,
        cdf.values.len()
    );
}

fn main() {
    let topology = generate(&TopologyConfig::small(25, 11).with_bandwidth(BandwidthProfile::Low));
    let mut rng = SimRng::new(11);
    let tree = random_tree(topology.participants(), 0, 6, &mut rng);
    println!(
        "streaming {} descriptions x {} Kbps to {} receivers over a low-bandwidth topology",
        DESCRIPTIONS,
        DESCRIPTION_KBPS,
        topology.participants() - 1
    );

    let bullet = run_bullet(&topology, &tree);
    let tree_run = run_tree(&topology, &tree);
    describe("Bullet (mesh over the random tree)", &bullet);
    describe("TFRC streaming over the same tree", &tree_run);

    let gain = bullet.steady_state_kbps() / tree_run.steady_state_kbps().max(1.0);
    println!("\nBullet delivers {gain:.1}x the tree's bandwidth on this topology");
}
