//! Prints the deterministic fingerprint of a fixed 64-node Bullet run.
//!
//! The workload (shared with `tests/determinism.rs` via
//! `tests/support/bullet64.rs`) is asserted against golden values there;
//! this example exists so the fingerprint can be (re)captured on any build
//! of the simulator — it was used to verify that the zero-allocation
//! simulator refactor (route interning, pooled flights, generation-stamped
//! timers) reproduces the pre-refactor event sequence bit for bit.
//!
//! Run with `cargo run --release --example determinism_probe`.

#[path = "../tests/support/bullet64.rs"]
mod bullet64;

fn main() {
    let (c, digest, bytes_sent) = bullet64::fingerprint();
    println!(
        "counters: delivered={} dropped_in_network={} dropped_dest_failed={} \
         dropped_src_failed={} timers_fired={} events={}",
        c.delivered,
        c.dropped_in_network,
        c.dropped_dest_failed,
        c.dropped_src_failed,
        c.timers_fired,
        c.events
    );
    println!("delivery_digest: {digest:#018x}");
    println!("total_bytes_sent: {bytes_sent}");
}
