//! Failure resilience: what happens to receivers when an interior node dies.
//!
//! Reproduces the spirit of the paper's §4.6 at example scale: the root child
//! with the most descendants is killed mid-stream, once with RanSub failure
//! detection disabled (peer sets frozen) and once with it enabled. In both
//! cases the mesh keeps delivering data to the failed node's descendants,
//! unlike a plain tree where they would receive nothing until the tree
//! repairs itself.
//!
//! Run with `cargo run --release --example failure_resilience`.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::experiments::{run_metered, RunResult, RunSpec};
use bullet_suite::netsim::{Sim, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::{random_tree, Tree};
use bullet_suite::topology::{generate, BandwidthProfile, BuiltTopology, TopologyConfig};

const DURATION_SECS: u64 = 180;
const FAILURE_SECS: u64 = 100;

fn run(topology: &BuiltTopology, tree: &Tree, victim: usize, failure_detection: bool) -> RunResult {
    let config = BulletConfig {
        stream_rate_bps: 600_000.0,
        stream_start: SimTime::from_secs(10),
        ransub_failure_detection: failure_detection,
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..topology.participants())
        .map(|id| BulletNode::new(id, tree, config.clone()))
        .collect();
    let label = if failure_detection {
        "RanSub recovery enabled"
    } else {
        "no RanSub recovery"
    };
    run_metered(
        Sim::new(&topology.spec, agents, 23),
        &RunSpec {
            label: label.into(),
            source: 0,
            duration: SimDuration::from_secs(DURATION_SECS),
            sample_interval: SimDuration::from_secs(5),
            failure: Some((SimTime::from_secs(FAILURE_SECS), victim)),
        },
    )
}

fn mean_between(result: &RunResult, from: f64, to: f64) -> f64 {
    let samples: Vec<f64> = result
        .times
        .iter()
        .zip(&result.useful.kbps)
        .filter(|(t, _)| **t >= from && **t <= to)
        .map(|(_, k)| *k)
        .collect();
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

fn main() {
    let topology =
        generate(&TopologyConfig::small(30, 23).with_bandwidth(BandwidthProfile::Medium));
    let mut rng = SimRng::new(23);
    let tree = random_tree(topology.participants(), 0, 5, &mut rng);
    let victim = tree
        .children(0)
        .iter()
        .copied()
        .max_by_key(|&c| tree.subtree_size(c))
        .expect("root has children");
    println!(
        "failing node {victim} at t={FAILURE_SECS}s; it has {} descendants out of {} participants",
        tree.subtree_size(victim) - 1,
        topology.participants()
    );

    for failure_detection in [false, true] {
        let result = run(&topology, &tree, victim, failure_detection);
        let before = mean_between(&result, 40.0, FAILURE_SECS as f64);
        let after = mean_between(&result, FAILURE_SECS as f64 + 15.0, DURATION_SECS as f64);
        println!(
            "\n{}:\n  mean useful bandwidth before failure: {before:>6.0} Kbps\n  mean useful bandwidth after failure:  {after:>6.0} Kbps ({:.0}% retained)",
            result.label,
            after / before.max(1.0) * 100.0
        );
    }
    println!(
        "\nIn a plain streaming tree the {}-node subtree of the failed child would receive 0 Kbps after the failure.",
        tree.subtree_size(victim) - 1
    );
}
