//! Prints the deterministic fingerprint of the fixed 64-node overload run.
//!
//! The workload (shared with `tests/determinism.rs` via
//! `tests/support/overload64.rs`) drives the bullet64 star with the
//! overload-resilience layer enabled through a 16-node join storm and six
//! scripted slow receivers. The determinism test pins this fingerprint to
//! golden values; this example exists so they can be (re)captured on any
//! build.
//!
//! Run with `cargo run --release --example overload_probe`.

#[path = "../tests/support/overload64.rs"]
mod overload64;

fn main() {
    let (c, digest, bytes_sent, stats, activity) = overload64::fingerprint();
    println!(
        "counters: delivered={} dropped_in_network={} dropped_dest_failed={} \
         dropped_src_failed={} timers_fired={} events={}",
        c.delivered,
        c.dropped_in_network,
        c.dropped_dest_failed,
        c.dropped_src_failed,
        c.timers_fired,
        c.events
    );
    println!("delivery_digest: {digest:#018x}");
    println!("total_bytes_sent: {bytes_sent}");
    println!(
        "scenario: joins={} slow_nodes={}",
        stats.joins, stats.slow_nodes
    );
    println!(
        "overload: sheds={} deferred={} admitted_after_defer={} peak_inbox={} \
         evictions={} demotions={}",
        activity.inbox_sheds,
        activity.joins_deferred,
        activity.joins_admitted_after_defer,
        activity.peak_inbox_depth,
        activity.working_set_evictions,
        activity.slow_demotions
    );
}
