//! The fixed 64-node Bullet golden workload.
//!
//! Shared (via `#[path]` inclusion) by `tests/determinism.rs`, which asserts
//! the pre-refactor golden fingerprint, and
//! `examples/determinism_probe.rs`, which recaptures it. Keeping one copy
//! guarantees a recaptured fingerprint describes exactly the workload the
//! regression test runs.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::netsim::telemetry::{block_journeys, journeys_to_jsonl, SelfProfile, TraceSpec};
use bullet_suite::netsim::{LinkSpec, NetworkSpec, Sim, SimCounters, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::random_tree;

const NODES: usize = 64;
const SEED: u64 = 2003;
const RUN_SECS: u64 = 20;

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

fn run_sim(traced: bool) -> Sim<BulletNode> {
    // Star topology: one core router, one stub router per participant.
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..NODES)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let mut sim = Sim::new(&spec, agents, SEED);
    if traced {
        let trace = TraceSpec::parse("all,cap=1048576").expect("valid trace spec");
        sim.install_recorder(&trace);
        sim.enable_profiling();
    }
    sim.run_until(SimTime::from_secs(RUN_SECS));
    sim
}

fn digest_of(sim: &Sim<BulletNode>) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for node in 0..NODES {
        let m = &sim.agent(node).metrics;
        let t = sim.traffic(node);
        for v in [
            m.delivery.useful_packets,
            m.delivery.useful_bytes,
            m.delivery.raw_bytes,
            m.delivery.duplicate_packets,
            m.delivery.total_packets,
            t.data_bytes_in,
            t.control_bytes_in,
            t.data_bytes_out,
            t.control_bytes_out,
        ] {
            digest = mix(digest, v);
        }
    }
    digest
}

/// Runs the workload and returns `(counters, delivery digest, total bytes
/// sent on physical links)`.
pub fn fingerprint() -> (SimCounters, u64, u64) {
    let sim = run_sim(false);
    let digest = digest_of(&sim);
    (sim.counters(), digest, sim.network().total_bytes_sent())
}

/// The golden fingerprint plus the telemetry a fully instrumented run of
/// the same workload captures.
#[allow(dead_code)]
pub struct TracedFingerprint {
    /// The base `(counters, digest, bytes)` fingerprint of the run.
    pub base: (SimCounters, u64, u64),
    /// Flight-recorder trace as JSONL (all categories, no eviction).
    pub trace_jsonl: String,
    /// Per-block journey spans as JSONL.
    pub journeys_jsonl: String,
    /// The simulator self-profile.
    pub profile: SelfProfile,
}

/// Runs the same workload with a full-category flight recorder (sized so
/// nothing is evicted) and self-profiling enabled. The base fingerprint
/// must match [`fingerprint`] exactly — telemetry is read-only — and the
/// trace itself must be deterministic.
#[allow(dead_code)]
pub fn fingerprint_traced() -> TracedFingerprint {
    let mut sim = run_sim(true);
    let digest = digest_of(&sim);
    let base = (sim.counters(), digest, sim.network().total_bytes_sent());
    let profile = sim.profile().expect("profiling enabled");
    let recorder = sim.take_recorder().expect("recorder installed");
    assert_eq!(recorder.evicted(), 0, "trace ring sized to hold the run");
    TracedFingerprint {
        base,
        trace_jsonl: recorder.to_jsonl(),
        journeys_jsonl: journeys_to_jsonl(&block_journeys(recorder.events()), NODES - 1),
        profile,
    }
}
