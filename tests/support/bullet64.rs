//! The fixed 64-node Bullet golden workload.
//!
//! Shared (via `#[path]` inclusion) by `tests/determinism.rs`, which asserts
//! the pre-refactor golden fingerprint, and
//! `examples/determinism_probe.rs`, which recaptures it. Keeping one copy
//! guarantees a recaptured fingerprint describes exactly the workload the
//! regression test runs.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::netsim::{LinkSpec, NetworkSpec, Sim, SimCounters, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::random_tree;

const NODES: usize = 64;
const SEED: u64 = 2003;
const RUN_SECS: u64 = 20;

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Runs the workload and returns `(counters, delivery digest, total bytes
/// sent on physical links)`.
pub fn fingerprint() -> (SimCounters, u64, u64) {
    // Star topology: one core router, one stub router per participant.
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..NODES)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let mut sim = Sim::new(&spec, agents, SEED);
    sim.run_until(SimTime::from_secs(RUN_SECS));

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for node in 0..NODES {
        let m = &sim.agent(node).metrics;
        let t = sim.traffic(node);
        for v in [
            m.useful_packets,
            m.useful_bytes,
            m.raw_bytes,
            m.duplicate_packets,
            m.total_packets,
            t.data_bytes_in,
            t.control_bytes_in,
            t.data_bytes_out,
            t.control_bytes_out,
        ] {
            digest = mix(digest, v);
        }
    }
    (sim.counters(), digest, sim.network().total_bytes_sent())
}
