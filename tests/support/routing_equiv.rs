//! Routing-equivalence harness.
//!
//! The lazy bidirectional router and its ALT (landmark) variant must return
//! the *same* canonical route — identical hop sequence, hence identical
//! cost — as the eager per-source reference Dijkstra, for every router pair
//! the overlay can use; the batched one-to-many row fills
//! (`Network::route_batched` / `route_all_from`) must reproduce those same
//! routes again. This module cross-checks all strategies over one
//! `NetworkSpec` and is shared (via `#[path]` inclusion) by
//! `tests/properties.rs` and the paper-scale tests, so every generated
//! topology class goes through the same gate.

use bullet_suite::netsim::{
    Network, NetworkSpec, RepairMode, RouterId, RoutingMode, SimDuration, SimRng,
};

/// Number of landmarks the harness gives the ALT router. Deliberately small
/// so the landmark bounds do real pruning work instead of degenerating.
pub const HARNESS_LANDMARKS: usize = 4;

/// Builds the three networks under comparison.
fn networks(spec: &NetworkSpec) -> (Network, Network, Network) {
    (
        Network::with_routing(spec, RoutingMode::EagerPerSource),
        Network::with_routing(spec, RoutingMode::LazyBidirectional),
        Network::with_routing(
            spec,
            RoutingMode::LazyAlt {
                landmarks: HARNESS_LANDMARKS,
            },
        ),
    )
}

/// Builds the batched (row-filling) networks under comparison: plain
/// bidirectional and ALT, both queried exclusively through
/// `Network::route_batched`.
fn batched_networks(spec: &NetworkSpec) -> (Network, Network) {
    (
        Network::with_routing(spec, RoutingMode::LazyBidirectional),
        Network::with_routing(
            spec,
            RoutingMode::LazyAlt {
                landmarks: HARNESS_LANDMARKS,
            },
        ),
    )
}

/// Asserts that one participant pair routes identically under all three
/// pairwise strategies (path hop sequence and propagation cost) and under
/// the batched one-to-many row fills.
#[allow(clippy::too_many_arguments)]
fn assert_pair(
    eager: &mut Network,
    bidi: &mut Network,
    alt: &mut Network,
    bidi_batched: &mut Network,
    alt_batched: &mut Network,
    a: usize,
    b: usize,
    label: &str,
) {
    let reference = eager.path(a, b);
    let lazy = bidi.path(a, b);
    let guided = alt.path(a, b);
    assert_eq!(
        reference, lazy,
        "{label}: participants {a}->{b}: bidirectional path diverges from reference"
    );
    assert_eq!(
        reference, guided,
        "{label}: participants {a}->{b}: ALT path diverges from reference"
    );
    for (net, name) in [(bidi_batched, "batched-bidi"), (alt_batched, "batched-alt")] {
        let batched = net
            .route_batched(a, b)
            .map(|id| net.route_links(id).to_vec());
        assert_eq!(
            reference, batched,
            "{label}: participants {a}->{b}: {name} row fill diverges from reference"
        );
    }
    if reference.is_some() {
        let cost = eager.propagation_delay(a, b);
        assert_eq!(
            cost,
            bidi.propagation_delay(a, b),
            "{label}: {a}->{b}: bidirectional cost diverges"
        );
        assert_eq!(
            cost,
            alt.propagation_delay(a, b),
            "{label}: {a}->{b}: ALT cost diverges"
        );
    }
}

/// Cross-checks every ordered participant pair of `spec` across the routing
/// strategies (pairwise and batched), then verifies each strategy did what
/// it claims (the reference built trees, the lazy routers built none, the
/// batched networks never fell back to point searches).
pub fn assert_all_participant_pairs_equivalent(spec: &NetworkSpec, label: &str) {
    let (mut eager, mut bidi, mut alt) = networks(spec);
    let (mut bidi_batched, mut alt_batched) = batched_networks(spec);
    let n = spec.participants();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                assert_pair(
                    &mut eager,
                    &mut bidi,
                    &mut alt,
                    &mut bidi_batched,
                    &mut alt_batched,
                    a,
                    b,
                    label,
                );
            }
        }
    }
    check_strategy_invariants(&eager, &bidi, &alt, label);
    check_batched_invariants(&bidi_batched, &alt_batched, n, label);
}

/// Cross-checks a sampled subset of ordered participant pairs — used at
/// paper scale where all-pairs would run 20k-router reference Dijkstras for
/// every source.
pub fn assert_sampled_pairs_equivalent(spec: &NetworkSpec, pairs: &[(usize, usize)], label: &str) {
    let (mut eager, mut bidi, mut alt) = networks(spec);
    let (mut bidi_batched, mut alt_batched) = batched_networks(spec);
    for &(a, b) in pairs {
        if a != b {
            assert_pair(
                &mut eager,
                &mut bidi,
                &mut alt,
                &mut bidi_batched,
                &mut alt_batched,
                a,
                b,
                label,
            );
        }
    }
    check_strategy_invariants(&eager, &bidi, &alt, label);
    check_batched_invariants(&bidi_batched, &alt_batched, spec.participants(), label);
}

fn check_strategy_invariants(eager: &Network, bidi: &Network, alt: &Network, label: &str) {
    let e = eager.routing_stats();
    assert_eq!(e.lazy_searches, 0, "{label}: reference ran lazy searches");
    let b = bidi.routing_stats();
    assert_eq!(b.trees_built, 0, "{label}: lazy router built SPT trees");
    let g = alt.routing_stats();
    assert_eq!(g.trees_built, 0, "{label}: ALT router built SPT trees");
    // The comparison must not be vacuous: each strategy must actually have
    // run its claimed algorithm on the pairs it was handed.
    if e.route_queries > 0 {
        assert!(e.trees_built > 0, "{label}: reference built no trees");
        assert!(b.lazy_searches > 0, "{label}: bidi ran no searches");
        assert!(b.routers_settled > 0, "{label}: bidi settled nothing");
        assert!(g.lazy_searches > 0, "{label}: ALT ran no searches");
        assert!(g.landmarks > 0, "{label}: ALT router holds no landmarks");
    }
}

/// One scripted topology mutation, applied identically to a live
/// [`Network`] (incremental, epoch-invalidated path) and to a
/// [`NetworkSpec`] (from which a fresh network is rebuilt for comparison).
#[derive(Clone, Copy, Debug)]
pub enum TopoMutation {
    /// Set a physical link's capacity (not route-affecting).
    Bandwidth(usize, f64),
    /// Set a physical link's loss probability (not route-affecting).
    Loss(usize, f64),
    /// Set a physical link's propagation delay (route-affecting).
    Delay(usize, SimDuration),
    /// Take a physical link up/down (route-affecting).
    LinkUp(usize, bool),
    /// Take every link of a router up/down (route-affecting).
    RouterUp(RouterId, bool),
}

impl TopoMutation {
    fn apply_to_network(self, net: &mut Network) {
        match self {
            TopoMutation::Bandwidth(link, bps) => net.set_link_bandwidth(link, bps),
            TopoMutation::Loss(link, loss) => net.set_link_loss(link, loss),
            TopoMutation::Delay(link, delay) => net.set_link_delay(link, delay),
            TopoMutation::LinkUp(link, up) => net.set_link_up(link, up),
            TopoMutation::RouterUp(router, up) => net.set_router_up(router, up),
        }
    }

    fn apply_to_spec(self, spec: &mut NetworkSpec) {
        match self {
            TopoMutation::Bandwidth(link, bps) => spec.set_link_bandwidth(link, bps),
            TopoMutation::Loss(link, loss) => spec.set_link_loss(link, loss),
            TopoMutation::Delay(link, delay) => spec.set_link_delay(link, delay),
            TopoMutation::LinkUp(link, up) => spec.set_link_up(link, up),
            TopoMutation::RouterUp(router, up) => spec.set_router_up(router, up),
        }
    }
}

/// The mutation gate of the scenario-dynamics engine: after **each** step
/// of `mutations`, every ordered participant-pair route served by the
/// incrementally invalidated networks (all three strategies, pairwise and
/// batched row fills) must be bit-identical to a *freshly rebuilt* eager
/// network on the mutated spec — and the incremental networks' link state
/// (capacity, loss, delay, up) must match the rebuilt one's too.
///
/// Every network is warmed with a full all-pairs sweep before the first
/// mutation so that stale caches, memo rows and router workspaces actually
/// exist to be invalidated.
pub fn assert_mutation_equivalence(spec: &NetworkSpec, mutations: &[TopoMutation], label: &str) {
    let (mut eager, mut bidi, mut alt) = networks(spec);
    let (mut bidi_batched, mut alt_batched) = batched_networks(spec);
    let n = spec.participants();
    let warm = |net: &mut Network| {
        for a in 0..n {
            for b in 0..n {
                let _ = net.path(a, b);
            }
        }
    };
    for net in [&mut eager, &mut bidi, &mut alt] {
        warm(net);
    }
    for a in 0..n {
        for b in 0..n {
            let _ = bidi_batched.route_batched(a, b);
            let _ = alt_batched.route_batched(a, b);
        }
    }
    let mut mutated_spec = spec.clone();
    for (step, &mutation) in mutations.iter().enumerate() {
        mutation.apply_to_spec(&mut mutated_spec);
        for net in [
            &mut eager,
            &mut bidi,
            &mut alt,
            &mut bidi_batched,
            &mut alt_batched,
        ] {
            mutation.apply_to_network(net);
        }
        let mut fresh = Network::with_routing(&mutated_spec, RoutingMode::EagerPerSource);
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let reference = fresh.path(a, b);
                let ctx = format!("{label}: step {step} ({mutation:?}): {a}->{b}");
                assert_eq!(reference, eager.path(a, b), "{ctx}: incremental eager");
                assert_eq!(reference, bidi.path(a, b), "{ctx}: incremental bidi");
                assert_eq!(reference, alt.path(a, b), "{ctx}: incremental alt");
                for (net, name) in [
                    (&mut bidi_batched, "batched-bidi"),
                    (&mut alt_batched, "batched-alt"),
                ] {
                    let batched = net
                        .route_batched(a, b)
                        .map(|id| net.route_links(id).to_vec());
                    assert_eq!(reference, batched, "{ctx}: incremental {name}");
                }
            }
        }
        // Link state followed the mutation on every incremental network.
        for (id, want) in fresh.links().iter().enumerate() {
            for (net, name) in [(&eager, "eager"), (&bidi, "bidi"), (&alt, "alt")] {
                let got = net.link(id);
                let ctx = format!("{label}: step {step} ({mutation:?}): link {id} on {name}");
                assert_eq!(got.bandwidth_bps, want.bandwidth_bps, "{ctx}: bandwidth");
                assert_eq!(got.loss, want.loss, "{ctx}: loss");
                assert_eq!(got.delay, want.delay, "{ctx}: delay");
                assert_eq!(got.up, want.up, "{ctx}: up");
            }
        }
    }
    // Route-affecting mutations (and only those) moved the epoch.
    let route_affecting = mutations
        .iter()
        .filter(|m| {
            matches!(
                m,
                TopoMutation::Delay(..) | TopoMutation::LinkUp(..) | TopoMutation::RouterUp(..)
            )
        })
        .count() as u64;
    assert!(
        eager.topology_epoch() <= route_affecting,
        "{label}: epoch {} exceeds the {} route-affecting mutations",
        eager.topology_epoch(),
        route_affecting
    );
    if route_affecting > 0 {
        assert!(eager.topology_epoch() > 0, "{label}: epoch never moved");
    }
}

/// Randomized mutation-sequence equivalence fuzzer for incremental route
/// repair: drives `steps` seeded random mutations — bandwidth, loss, delay
/// raises/lowers, exact-restore delay oscillations, link toggles, no-op
/// re-asserts, correlated router outages and heals — over `spec`, and after
/// **every** step asserts that all incrementally repaired networks (the
/// three strategies plus both batched row-fill variants) and a
/// wholesale-rebuild baseline serve routes bit-identical to a network
/// freshly built on the mutated spec.
///
/// After the random phase, a deterministic heal epilogue restores every
/// downed router and link and every changed delay (plus one raise/restore
/// oscillation), so every run is guaranteed to exercise the improving-
/// mutation machinery — landmark admissibility checks, the lower-bound
/// survival filter, unreachable-pair reopening — regardless of seed.
///
/// The closing asserts pin the mode accounting: the incremental networks
/// must never have fallen back to a wholesale dump, the rebuild baseline
/// must have dumped on every route-affecting mutation, both must agree on
/// the epoch, and the fuzz run must actually have exercised the repair
/// machinery (route-affecting mutations and ALT admissibility checks > 0).
pub fn assert_incremental_equivalence(spec: &NetworkSpec, seed: u64, steps: usize, label: &str) {
    let mut rng = SimRng::new(seed);
    let (mut eager, mut bidi, mut alt) = networks(spec);
    let (mut bidi_batched, mut alt_batched) = batched_networks(spec);
    // The fuzzer is about the incremental mode: pin it even if the
    // environment overrode BULLET_REPAIR.
    for net in [
        &mut eager,
        &mut bidi,
        &mut alt,
        &mut bidi_batched,
        &mut alt_batched,
    ] {
        net.set_repair_mode(RepairMode::Incremental);
    }
    let mut rebuild = Network::with_routing(
        spec,
        RoutingMode::LazyAlt {
            landmarks: HARNESS_LANDMARKS,
        },
    );
    rebuild.set_repair_mode(RepairMode::Rebuild);
    let n = spec.participants();
    // Warm every cache layer so there is real state to invalidate.
    for a in 0..n {
        for b in 0..n {
            for net in [&mut eager, &mut bidi, &mut alt, &mut rebuild] {
                let _ = net.path(a, b);
            }
            let _ = bidi_batched.route_batched(a, b);
            let _ = alt_batched.route_batched(a, b);
        }
    }
    // Applies one mutation to the spec and every network under test, then
    // checks every ordered participant pair against a network freshly built
    // on the mutated spec.
    #[allow(clippy::too_many_arguments)]
    fn apply_and_verify(
        mutation: TopoMutation,
        mutated_spec: &mut NetworkSpec,
        eager: &mut Network,
        bidi: &mut Network,
        alt: &mut Network,
        bidi_batched: &mut Network,
        alt_batched: &mut Network,
        rebuild: &mut Network,
        n: usize,
        step_label: &str,
    ) {
        mutation.apply_to_spec(mutated_spec);
        for net in [
            &mut *eager,
            &mut *bidi,
            &mut *alt,
            &mut *bidi_batched,
            &mut *alt_batched,
            &mut *rebuild,
        ] {
            mutation.apply_to_network(net);
        }
        // Ground truth: a network freshly built on the mutated spec.
        let mut fresh = Network::with_routing(mutated_spec, RoutingMode::EagerPerSource);
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let reference = fresh.path(a, b);
                let ctx = format!("{step_label} ({mutation:?}): {a}->{b}");
                assert_eq!(reference, eager.path(a, b), "{ctx}: incremental eager");
                assert_eq!(reference, bidi.path(a, b), "{ctx}: incremental bidi");
                assert_eq!(reference, alt.path(a, b), "{ctx}: incremental alt");
                assert_eq!(reference, rebuild.path(a, b), "{ctx}: rebuild baseline");
                for (net, name) in [
                    (&mut *bidi_batched, "batched-bidi"),
                    (&mut *alt_batched, "batched-alt"),
                ] {
                    let batched = net
                        .route_batched(a, b)
                        .map(|id| net.route_links(id).to_vec());
                    assert_eq!(reference, batched, "{ctx}: incremental {name}");
                }
                if reference.is_some() {
                    assert_eq!(
                        fresh.propagation_delay(a, b),
                        alt.propagation_delay(a, b),
                        "{ctx}: ALT cost diverges"
                    );
                }
            }
        }
    }
    let mut mutated_spec = spec.clone();
    let links = mutated_spec.links.len();
    let original_delays: Vec<SimDuration> =
        mutated_spec.links.iter().map(|link| link.delay).collect();
    let mut downed_routers: Vec<RouterId> = Vec::new();
    for step in 0..steps {
        let mutation = loop {
            match rng.range_usize(0, 8) {
                0 => {
                    break TopoMutation::Bandwidth(
                        rng.range_usize(0, links),
                        rng.range_f64(1e6, 20e6),
                    )
                }
                1 => break TopoMutation::Loss(rng.range_usize(0, links), rng.range_f64(0.0, 0.3)),
                // A delay move in either direction (including onto a down
                // link, where it must stay metadata-only until the heal).
                2 => {
                    break TopoMutation::Delay(
                        rng.range_usize(0, links),
                        SimDuration::from_micros(rng.range_u64(500, 60_000)),
                    )
                }
                // Exact-restore oscillation: landmark repair must cost zero.
                3 => {
                    let link = rng.range_usize(0, links);
                    break TopoMutation::Delay(link, original_delays[link]);
                }
                4 => {
                    let link = rng.range_usize(0, links);
                    break TopoMutation::LinkUp(link, !mutated_spec.links[link].up);
                }
                // Re-asserting the current state must be a complete no-op.
                5 => {
                    let link = rng.range_usize(0, links);
                    break TopoMutation::LinkUp(link, mutated_spec.links[link].up);
                }
                // A correlated outage of any router — stub or transit.
                6 => {
                    if downed_routers.len() >= 2 {
                        continue;
                    }
                    let router = rng.range_usize(0, mutated_spec.routers);
                    if downed_routers.contains(&router) {
                        continue;
                    }
                    downed_routers.push(router);
                    break TopoMutation::RouterUp(router, false);
                }
                _ => {
                    if downed_routers.is_empty() {
                        continue;
                    }
                    let i = rng.range_usize(0, downed_routers.len());
                    break TopoMutation::RouterUp(downed_routers.swap_remove(i), true);
                }
            }
        };
        apply_and_verify(
            mutation,
            &mut mutated_spec,
            &mut eager,
            &mut bidi,
            &mut alt,
            &mut bidi_batched,
            &mut alt_batched,
            &mut rebuild,
            n,
            &format!("{label}: step {step}"),
        );
    }
    // Deterministic heal epilogue: bring every downed router and link back
    // up, restore every changed delay, and finish with one raise/restore
    // oscillation — so every seed exercises edge additions and cost lowers
    // (the improving-mutation machinery) no matter what the random phase
    // happened to draw.
    let mut epilogue: Vec<TopoMutation> = Vec::new();
    for router in downed_routers.drain(..) {
        epilogue.push(TopoMutation::RouterUp(router, true));
    }
    for (link, state) in mutated_spec.links.iter().enumerate() {
        if !state.up {
            epilogue.push(TopoMutation::LinkUp(link, true));
        }
    }
    for (link, &original) in original_delays.iter().enumerate() {
        if mutated_spec.links[link].delay != original {
            epilogue.push(TopoMutation::Delay(link, original));
        }
    }
    epilogue.push(TopoMutation::Delay(
        0,
        original_delays[0] + SimDuration::from_millis(50),
    ));
    epilogue.push(TopoMutation::Delay(0, original_delays[0]));
    for (step, mutation) in epilogue.into_iter().enumerate() {
        apply_and_verify(
            mutation,
            &mut mutated_spec,
            &mut eager,
            &mut bidi,
            &mut alt,
            &mut bidi_batched,
            &mut alt_batched,
            &mut rebuild,
            n,
            &format!("{label}: heal step {step}"),
        );
    }
    // Mode accounting over the whole run.
    for (net, name) in [
        (&eager, "eager"),
        (&bidi, "bidi"),
        (&alt, "alt"),
        (&bidi_batched, "batched-bidi"),
        (&alt_batched, "batched-alt"),
    ] {
        assert_eq!(
            net.repair_stats().full_invalidations,
            0,
            "{label}: incremental {name} fell back to a wholesale dump"
        );
    }
    let rb = rebuild.repair_stats();
    assert_eq!(
        rb.full_invalidations, rb.route_mutations,
        "{label}: rebuild baseline must dump wholesale on every mutation"
    );
    assert_eq!(
        rebuild.topology_epoch(),
        alt.topology_epoch(),
        "{label}: repair modes disagree on the epoch"
    );
    // The run must have exercised the machinery it gates.
    let rs = alt.repair_stats();
    assert!(
        rs.route_mutations > 0,
        "{label}: fuzz produced no route-affecting mutations"
    );
    assert!(
        rs.landmark_checks > 0,
        "{label}: fuzz produced no improving mutations (no ALT admissibility checks ran)"
    );
}

fn check_batched_invariants(bidi: &Network, alt: &Network, participants: usize, label: &str) {
    // The flat route memo covers every harness topology, so a batched
    // network must serve everything from one-to-many row fills: no SPT
    // trees, no point searches, and at most one row fill per participant.
    for (net, name) in [(bidi, "batched-bidi"), (alt, "batched-alt")] {
        let s = net.routing_stats();
        assert_eq!(s.trees_built, 0, "{label}: {name} built SPT trees");
        assert_eq!(
            s.lazy_searches, 0,
            "{label}: {name} fell back to point searches"
        );
        if s.route_queries > 0 {
            assert!(s.batched_queries > 0, "{label}: {name} ran no row fills");
            assert!(
                s.batched_queries <= participants as u64,
                "{label}: {name} ran more row fills than participants"
            );
            assert!(s.routers_settled > 0, "{label}: {name} settled nothing");
        }
    }
}
