//! Routing-equivalence harness.
//!
//! The lazy bidirectional router and its ALT (landmark) variant must return
//! the *same* canonical route — identical hop sequence, hence identical
//! cost — as the eager per-source reference Dijkstra, for every router pair
//! the overlay can use; the batched one-to-many row fills
//! (`Network::route_batched` / `route_all_from`) must reproduce those same
//! routes again. This module cross-checks all strategies over one
//! `NetworkSpec` and is shared (via `#[path]` inclusion) by
//! `tests/properties.rs` and the paper-scale tests, so every generated
//! topology class goes through the same gate.

use bullet_suite::netsim::{Network, NetworkSpec, RoutingMode};

/// Number of landmarks the harness gives the ALT router. Deliberately small
/// so the landmark bounds do real pruning work instead of degenerating.
pub const HARNESS_LANDMARKS: usize = 4;

/// Builds the three networks under comparison.
fn networks(spec: &NetworkSpec) -> (Network, Network, Network) {
    (
        Network::with_routing(spec, RoutingMode::EagerPerSource),
        Network::with_routing(spec, RoutingMode::LazyBidirectional),
        Network::with_routing(
            spec,
            RoutingMode::LazyAlt {
                landmarks: HARNESS_LANDMARKS,
            },
        ),
    )
}

/// Builds the batched (row-filling) networks under comparison: plain
/// bidirectional and ALT, both queried exclusively through
/// `Network::route_batched`.
fn batched_networks(spec: &NetworkSpec) -> (Network, Network) {
    (
        Network::with_routing(spec, RoutingMode::LazyBidirectional),
        Network::with_routing(
            spec,
            RoutingMode::LazyAlt {
                landmarks: HARNESS_LANDMARKS,
            },
        ),
    )
}

/// Asserts that one participant pair routes identically under all three
/// pairwise strategies (path hop sequence and propagation cost) and under
/// the batched one-to-many row fills.
#[allow(clippy::too_many_arguments)]
fn assert_pair(
    eager: &mut Network,
    bidi: &mut Network,
    alt: &mut Network,
    bidi_batched: &mut Network,
    alt_batched: &mut Network,
    a: usize,
    b: usize,
    label: &str,
) {
    let reference = eager.path(a, b);
    let lazy = bidi.path(a, b);
    let guided = alt.path(a, b);
    assert_eq!(
        reference, lazy,
        "{label}: participants {a}->{b}: bidirectional path diverges from reference"
    );
    assert_eq!(
        reference, guided,
        "{label}: participants {a}->{b}: ALT path diverges from reference"
    );
    for (net, name) in [(bidi_batched, "batched-bidi"), (alt_batched, "batched-alt")] {
        let batched = net
            .route_batched(a, b)
            .map(|id| net.route_links(id).to_vec());
        assert_eq!(
            reference, batched,
            "{label}: participants {a}->{b}: {name} row fill diverges from reference"
        );
    }
    if reference.is_some() {
        let cost = eager.propagation_delay(a, b);
        assert_eq!(
            cost,
            bidi.propagation_delay(a, b),
            "{label}: {a}->{b}: bidirectional cost diverges"
        );
        assert_eq!(
            cost,
            alt.propagation_delay(a, b),
            "{label}: {a}->{b}: ALT cost diverges"
        );
    }
}

/// Cross-checks every ordered participant pair of `spec` across the routing
/// strategies (pairwise and batched), then verifies each strategy did what
/// it claims (the reference built trees, the lazy routers built none, the
/// batched networks never fell back to point searches).
pub fn assert_all_participant_pairs_equivalent(spec: &NetworkSpec, label: &str) {
    let (mut eager, mut bidi, mut alt) = networks(spec);
    let (mut bidi_batched, mut alt_batched) = batched_networks(spec);
    let n = spec.participants();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                assert_pair(
                    &mut eager,
                    &mut bidi,
                    &mut alt,
                    &mut bidi_batched,
                    &mut alt_batched,
                    a,
                    b,
                    label,
                );
            }
        }
    }
    check_strategy_invariants(&eager, &bidi, &alt, label);
    check_batched_invariants(&bidi_batched, &alt_batched, n, label);
}

/// Cross-checks a sampled subset of ordered participant pairs — used at
/// paper scale where all-pairs would run 20k-router reference Dijkstras for
/// every source.
pub fn assert_sampled_pairs_equivalent(spec: &NetworkSpec, pairs: &[(usize, usize)], label: &str) {
    let (mut eager, mut bidi, mut alt) = networks(spec);
    let (mut bidi_batched, mut alt_batched) = batched_networks(spec);
    for &(a, b) in pairs {
        if a != b {
            assert_pair(
                &mut eager,
                &mut bidi,
                &mut alt,
                &mut bidi_batched,
                &mut alt_batched,
                a,
                b,
                label,
            );
        }
    }
    check_strategy_invariants(&eager, &bidi, &alt, label);
    check_batched_invariants(&bidi_batched, &alt_batched, spec.participants(), label);
}

fn check_strategy_invariants(eager: &Network, bidi: &Network, alt: &Network, label: &str) {
    let e = eager.routing_stats();
    assert_eq!(e.lazy_searches, 0, "{label}: reference ran lazy searches");
    let b = bidi.routing_stats();
    assert_eq!(b.trees_built, 0, "{label}: lazy router built SPT trees");
    let g = alt.routing_stats();
    assert_eq!(g.trees_built, 0, "{label}: ALT router built SPT trees");
    // The comparison must not be vacuous: each strategy must actually have
    // run its claimed algorithm on the pairs it was handed.
    if e.route_queries > 0 {
        assert!(e.trees_built > 0, "{label}: reference built no trees");
        assert!(b.lazy_searches > 0, "{label}: bidi ran no searches");
        assert!(b.routers_settled > 0, "{label}: bidi settled nothing");
        assert!(g.lazy_searches > 0, "{label}: ALT ran no searches");
        assert!(g.landmarks > 0, "{label}: ALT router holds no landmarks");
    }
}

fn check_batched_invariants(bidi: &Network, alt: &Network, participants: usize, label: &str) {
    // The flat route memo covers every harness topology, so a batched
    // network must serve everything from one-to-many row fills: no SPT
    // trees, no point searches, and at most one row fill per participant.
    for (net, name) in [(bidi, "batched-bidi"), (alt, "batched-alt")] {
        let s = net.routing_stats();
        assert_eq!(s.trees_built, 0, "{label}: {name} built SPT trees");
        assert_eq!(
            s.lazy_searches, 0,
            "{label}: {name} fell back to point searches"
        );
        if s.route_queries > 0 {
            assert!(s.batched_queries > 0, "{label}: {name} ran no row fills");
            assert!(
                s.batched_queries <= participants as u64,
                "{label}: {name} ran more row fills than participants"
            );
            assert!(s.routers_settled > 0, "{label}: {name} settled nothing");
        }
    }
}
