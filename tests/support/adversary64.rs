//! The fixed 64-node adversary golden workload.
//!
//! The bullet64 star topology with the data-plane integrity layer enabled
//! (block verification, peer health scoring, quarantine) on top of the
//! §4.6 recovery profile, driven by an `adversary_fraction` script that
//! turns 20% of the non-source nodes adversarial mid-stream: even picks
//! corrupt 75% of the data blocks they relay, odd picks stall completely
//! and falsely advertise phantom content. Shared (via `#[path]`
//! inclusion) by `tests/determinism.rs`, which pins the fingerprint to
//! golden values, and `examples/adversary_probe.rs`, which recaptures
//! them.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::dynamics::{ScenarioDriver, ScenarioScript, ScenarioStats};
use bullet_suite::netsim::{LinkSpec, NetworkSpec, Sim, SimCounters, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::random_tree;

const NODES: usize = 64;
const SEED: u64 = 2004;
const RUN_SECS: u64 = 25;

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// 20% of the non-source nodes turn adversarial at t=5s, alternating
/// corrupter and stall/false-advertiser personas.
fn script() -> ScenarioScript {
    let nodes: Vec<usize> = (1..NODES).collect();
    ScenarioScript::adversary_fraction(&nodes, 0.2, SimTime::from_secs(5), 0.75, SEED ^ 0xAD5A)
}

/// Runs the workload and returns `(counters, delivery digest, total bytes
/// sent on physical links, topology epoch, scenario stats, total
/// quarantines)`.
///
/// The digest extends the faults64 per-node values with the integrity
/// metrics (blocks verified, corrupt blocks rejected/accepted, health
/// penalties, quarantines), so any behavioural drift in the defense — not
/// just in delivery — moves the fingerprint.
pub fn fingerprint() -> (SimCounters, u64, u64, u64, ScenarioStats, u64) {
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ransub_epoch: SimDuration::from_secs(2),
        ..BulletConfig::default()
    }
    .integrity();
    let agents: Vec<BulletNode> = (0..NODES)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let mut sim = Sim::new(&spec, agents, SEED);
    let mut driver = ScenarioDriver::new(&script());
    driver.install(&mut sim);
    driver.run_until(&mut sim, SimTime::from_secs(RUN_SECS));

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for node in 0..NODES {
        let m = &sim.agent(node).metrics;
        let t = sim.traffic(node);
        for v in [
            m.delivery.useful_packets,
            m.delivery.useful_bytes,
            m.delivery.raw_bytes,
            m.delivery.duplicate_packets,
            m.delivery.total_packets,
            m.orphan_detections,
            m.reattaches,
            m.control_retries,
            m.false_positive_evictions,
            m.blocks_verified,
            m.corrupt_blocks_rejected,
            m.corrupt_blocks_accepted,
            m.health_penalties,
            m.quarantines,
            t.data_bytes_in,
            t.control_bytes_in,
            t.data_bytes_out,
            t.control_bytes_out,
        ] {
            digest = mix(digest, v);
        }
    }
    let quarantines = (0..NODES).map(|n| sim.agent(n).metrics.quarantines).sum();
    (
        sim.counters(),
        digest,
        sim.network().total_bytes_sent(),
        sim.network().topology_epoch(),
        driver.stats,
        quarantines,
    )
}
