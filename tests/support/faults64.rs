//! The fixed 64-node faults golden workload.
//!
//! The bullet64 star topology with the §4.6 recovery subsystem enabled
//! (short 2-second RanSub epochs so detection fits the window), driven by
//! a scenario script that exercises every failure channel at once: a
//! permanent crash that orphans a subtree (recovery re-attaches it), a
//! network partition with a later heal, and per-node control-message
//! fault plans (drops, duplicates and delays off the deterministic sim
//! RNG). Shared (via `#[path]` inclusion) by `tests/determinism.rs`,
//! which pins the fingerprint to golden values, and
//! `examples/faults_probe.rs`, which recaptures them.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::dynamics::{ScenarioAction, ScenarioDriver, ScenarioScript, ScenarioStats};
use bullet_suite::netsim::{
    FaultPlan, LinkSpec, NetworkSpec, Sim, SimCounters, SimDuration, SimRng, SimTime,
};
use bullet_suite::overlay::random_tree;

const NODES: usize = 64;
const SEED: u64 = 2003;
const RUN_SECS: u64 = 25;

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// The faults script over the 64-node star: a subtree-orphaning crash,
/// a partition/heal cycle and two control-message fault plans.
fn script() -> ScenarioScript {
    ScenarioScript::new()
        // Lossy and slow control planes from early on: node 5 drops 30%
        // and duplicates 10% of its incoming control messages, node 9
        // delays half of its by 20 ms.
        .at(
            SimTime::from_secs(3),
            ScenarioAction::Fault {
                node: 5,
                plan: FaultPlan {
                    drop_chance: 0.3,
                    duplicate_chance: 0.1,
                    ..FaultPlan::default()
                },
            },
        )
        .at(
            SimTime::from_secs(3),
            ScenarioAction::Fault {
                node: 9,
                plan: FaultPlan {
                    delay_chance: 0.5,
                    delay: SimDuration::from_millis(20),
                    ..FaultPlan::default()
                },
            },
        )
        // A permanent crash: node 3's subtree orphans and must re-attach.
        .at(SimTime::from_secs(6), ScenarioAction::Crash { node: 3 })
        // A partition cuts nodes 33-47 off for three epochs, then heals.
        .at(
            SimTime::from_secs(8),
            ScenarioAction::Partition {
                nodes: (33..48).collect(),
            },
        )
        .at(SimTime::from_secs(14), ScenarioAction::Heal)
        // A second permanent crash after the heal.
        .at(SimTime::from_secs(16), ScenarioAction::Crash { node: 11 })
}

/// Runs the workload and returns `(counters, delivery digest, total bytes
/// sent on physical links, topology epoch, scenario stats, total
/// re-attaches)`.
///
/// The digest extends the churn64 per-node values with the recovery
/// metrics (orphan detections, re-attaches, control retries, eviction
/// false positives), so any behavioural drift in the §4.6 subsystem —
/// not just in delivery — moves the fingerprint.
pub fn fingerprint() -> (SimCounters, u64, u64, u64, ScenarioStats, u64) {
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ransub_epoch: SimDuration::from_secs(2),
        ..BulletConfig::default()
    }
    .recovery();
    let agents: Vec<BulletNode> = (0..NODES)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let mut sim = Sim::new(&spec, agents, SEED);
    let mut driver = ScenarioDriver::new(&script());
    driver.install(&mut sim);
    driver.run_until(&mut sim, SimTime::from_secs(RUN_SECS));

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for node in 0..NODES {
        let m = &sim.agent(node).metrics;
        let t = sim.traffic(node);
        for v in [
            m.delivery.useful_packets,
            m.delivery.useful_bytes,
            m.delivery.raw_bytes,
            m.delivery.duplicate_packets,
            m.delivery.total_packets,
            m.orphan_detections,
            m.reattaches,
            m.control_retries,
            m.false_positive_evictions,
            t.data_bytes_in,
            t.control_bytes_in,
            t.data_bytes_out,
            t.control_bytes_out,
        ] {
            digest = mix(digest, v);
        }
    }
    let reattaches = (0..NODES).map(|n| sim.agent(n).metrics.reattaches).sum();
    (
        sim.counters(),
        digest,
        sim.network().total_bytes_sent(),
        sim.network().topology_epoch(),
        driver.stats,
        reattaches,
    )
}
