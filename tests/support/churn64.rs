//! The fixed 64-node churn golden workload.
//!
//! The bullet64 star topology and configuration, driven by a scenario
//! script that exercises every dynamics channel at once: a crash with a
//! later rejoin, a graceful leave (child handoff), a flash crowd of late
//! joiners, an oscillating access-link capacity, and a correlated stub
//! outage with recovery. Shared (via `#[path]` inclusion) by
//! `tests/determinism.rs`, which pins the fingerprint to golden values,
//! and `examples/churn_probe.rs`, which recaptures them.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::dynamics::{ScenarioAction, ScenarioDriver, ScenarioScript, ScenarioStats};
use bullet_suite::netsim::{LinkSpec, NetworkSpec, Sim, SimCounters, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::random_tree;

const NODES: usize = 64;
const SEED: u64 = 2003;
const RUN_SECS: u64 = 20;

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// The churn script over the 64-node star: every scenario channel fires at
/// least once inside the 20-second window.
fn script() -> ScenarioScript {
    let script = ScenarioScript::new()
        // Crash + rejoin cycle.
        .at(SimTime::from_secs(6), ScenarioAction::Crash { node: 3 })
        .at(SimTime::from_secs(10), ScenarioAction::Join { node: 3 })
        // Graceful leave: children are handed to the leaver's parent.
        .at(
            SimTime::from_secs(9),
            ScenarioAction::GracefulLeave { node: 5 },
        )
        // Node 1's access link halves in capacity, then recovers.
        .at(
            SimTime::from_secs(7),
            ScenarioAction::SetLinkBandwidth {
                link: 1,
                bps: 1_000_000.0,
            },
        )
        .at(
            SimTime::from_secs(13),
            ScenarioAction::SetLinkBandwidth {
                link: 1,
                bps: 2_000_000.0,
            },
        )
        // Correlated outage of node 7's stub router (route-invalidating).
        .at(
            SimTime::from_secs(11),
            ScenarioAction::SetRouterUp {
                router: 7,
                up: false,
            },
        )
        .at(
            SimTime::from_secs(14),
            ScenarioAction::SetRouterUp {
                router: 7,
                up: true,
            },
        );
    // Flash crowd: the last quarter of the overlay joins at 8..12 s.
    let crowd: Vec<usize> = (48..NODES).collect();
    script.merge(ScenarioScript::flash_crowd(
        &crowd,
        SimTime::from_secs(8),
        4.0,
        SEED ^ 0xF1A5,
    ))
}

/// Runs the workload and returns `(counters, delivery digest, total bytes
/// sent on physical links, topology epoch, scenario stats)`.
pub fn fingerprint() -> (SimCounters, u64, u64, u64, ScenarioStats) {
    // Star topology: one core router, one stub router per participant —
    // identical to the bullet64 golden workload.
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ..BulletConfig::default()
    }
    .churn();
    let agents: Vec<BulletNode> = (0..NODES)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let mut sim = Sim::new(&spec, agents, SEED);
    let mut driver = ScenarioDriver::new(&script());
    driver.install(&mut sim);
    driver.run_until(&mut sim, SimTime::from_secs(RUN_SECS));

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for node in 0..NODES {
        let m = &sim.agent(node).metrics;
        let t = sim.traffic(node);
        for v in [
            m.delivery.useful_packets,
            m.delivery.useful_bytes,
            m.delivery.raw_bytes,
            m.delivery.duplicate_packets,
            m.delivery.total_packets,
            t.data_bytes_in,
            t.control_bytes_in,
            t.data_bytes_out,
            t.control_bytes_out,
        ] {
            digest = mix(digest, v);
        }
    }
    (
        sim.counters(),
        digest,
        sim.network().total_bytes_sent(),
        sim.network().topology_epoch(),
        driver.stats,
    )
}
