//! The fixed `BULLET_SCALE=paper` smoke workload.
//!
//! A 256-participant Bullet overlay streams for a few seconds of simulated
//! time over a full paper-class transit-stub topology (≥ 20,000 routers,
//! degree-one leaf attachment, Table 1 medium bandwidths), routed by the
//! lazy landmark-guided bidirectional search `Scale::Paper` selects. Shared
//! (via `#[path]` inclusion) by `tests/determinism.rs`, which pins the
//! delivery digest and byte totals to golden values, and by
//! `examples/paper_smoke_probe.rs`, which recaptures them.
//!
//! Because routes are canonical (see `bullet_netsim::routing`), the order
//! in which router pairs are first contacted — and therefore the order in
//! which routes are computed and interned — cannot influence any path, so
//! the fingerprint is stable no matter how route computation interleaves
//! with the protocol.

use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::experiments::Scale;
use bullet_suite::netsim::{RoutingStats, Sim, SimCounters, SimRng, SimTime};
use bullet_suite::overlay::random_tree;
use bullet_suite::topology::{generate, TopologyConfig};

/// Participants in the smoke overlay (a subset of the paper's 1,000 so the
/// golden test stays inside a debug-build time budget).
pub const PARTICIPANTS: usize = 256;
/// Topology / protocol seed.
pub const SEED: u64 = 2003;
/// Simulated run length, in seconds.
pub const RUN_SECS: u64 = 6;

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Runs the workload and returns `(counters, delivery digest, total bytes
/// sent on physical links, routing stats)`.
pub fn fingerprint() -> (SimCounters, u64, u64, RoutingStats) {
    let topo = generate(&TopologyConfig::paper_scale(PARTICIPANTS, SEED));
    assert!(
        topo.spec.routers >= 20_000,
        "paper smoke must run on a paper-sized topology"
    );
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(PARTICIPANTS, 0, 4, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..PARTICIPANTS)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let mut sim = Sim::with_routing(&topo.spec, agents, SEED, Scale::Paper.routing_mode());
    sim.run_until(SimTime::from_secs(RUN_SECS));

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for node in 0..PARTICIPANTS {
        let m = &sim.agent(node).metrics;
        let t = sim.traffic(node);
        for v in [
            m.delivery.useful_packets,
            m.delivery.useful_bytes,
            m.delivery.raw_bytes,
            m.delivery.duplicate_packets,
            m.delivery.total_packets,
            t.data_bytes_in,
            t.control_bytes_in,
            t.data_bytes_out,
            t.control_bytes_out,
        ] {
            digest = mix(digest, v);
        }
    }
    let routing = sim.network().routing_stats();
    (
        sim.counters(),
        digest,
        sim.network().total_bytes_sent(),
        routing,
    )
}
