//! The fixed 64-node overload golden workload.
//!
//! The bullet64 star topology with the overload-resilience layer enabled
//! (bounded prioritized inboxes, join admission control, working-set
//! memory budget, slow-receiver demotion) on top of the integrity and
//! recovery profiles, driven through a 16-node join storm at t=5s and six
//! scripted slow receivers (~10% of the overlay) that understate their
//! intake fivefold. The overload knobs are tightened well below their
//! defaults so every mechanism actually fires at this scale: the inbox
//! budget forces sheds and join deferrals during the storm, and the
//! working-set budget forces owed-floor evictions. Shared (via `#[path]`
//! inclusion) by `tests/determinism.rs`, which pins the fingerprint to
//! golden values, and `examples/overload_probe.rs`, which recaptures
//! them.

use bullet_suite::bullet::config::OverloadConfig;
use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::dynamics::{ScenarioAction, ScenarioDriver, ScenarioScript, ScenarioStats};
use bullet_suite::netsim::{LinkSpec, NetworkSpec, Sim, SimCounters, SimDuration, SimRng, SimTime};
use bullet_suite::overlay::random_tree;

const NODES: usize = 64;
const SEED: u64 = 2005;
const RUN_SECS: u64 = 30;

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Aggregated overload-layer activity across the overlay, for the golden
/// assertions that the layer actually fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadActivity {
    pub inbox_sheds: u64,
    pub joins_deferred: u64,
    pub joins_admitted_after_defer: u64,
    pub peak_inbox_depth: u64,
    pub working_set_evictions: u64,
    pub slow_demotions: u64,
}

/// Six slow receivers from t=3s, then a 16-node join storm at t=5s ramped
/// over 5 seconds.
fn script() -> ScenarioScript {
    let mut script = ScenarioScript::new();
    for node in [7, 14, 21, 28, 35, 42] {
        script = script.at(
            SimTime::from_secs(3),
            ScenarioAction::SlowNode { node, factor: 0.2 },
        );
    }
    script.at(
        SimTime::from_secs(5),
        ScenarioAction::JoinStorm {
            first: 48,
            count: 16,
            ramp_secs: 5.0,
            seed: SEED ^ 0x0B10,
        },
    )
}

/// Runs the workload and returns `(counters, delivery digest, total bytes
/// sent on physical links, scenario stats, overlay-wide overload
/// activity)`.
///
/// The digest extends the adversary64 per-node values with the overload
/// metrics (inbox sheds, join deferrals and later admissions, peak inbox
/// depth, working-set evictions, slow demotions), so any behavioural
/// drift in the overload layer — not just in delivery — moves it.
pub fn fingerprint() -> (SimCounters, u64, u64, ScenarioStats, OverloadActivity) {
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let mut config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ransub_epoch: SimDuration::from_secs(2),
        filter_refresh_interval: SimDuration::from_secs(2),
        mesh_eval_interval: SimDuration::from_secs(5),
        ..BulletConfig::default()
    }
    .overload();
    config.overload = Some(OverloadConfig {
        inbox_budget: 12,
        working_set_budget: 600,
        ..OverloadConfig::default()
    });
    let agents: Vec<BulletNode> = (0..NODES)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let mut sim = Sim::new(&spec, agents, SEED);
    let mut driver = ScenarioDriver::new(&script());
    driver.install(&mut sim);
    driver.run_until(&mut sim, SimTime::from_secs(RUN_SECS));

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut activity = OverloadActivity::default();
    for node in 0..NODES {
        let m = &sim.agent(node).metrics;
        let t = sim.traffic(node);
        for v in [
            m.delivery.useful_packets,
            m.delivery.useful_bytes,
            m.delivery.raw_bytes,
            m.delivery.duplicate_packets,
            m.delivery.total_packets,
            m.orphan_detections,
            m.reattaches,
            m.control_retries,
            m.health_penalties,
            m.quarantines,
            m.inbox_sheds,
            m.joins_deferred,
            m.joins_admitted_after_defer,
            m.peak_inbox_depth,
            m.working_set_evictions,
            m.slow_demotions,
            t.data_bytes_in,
            t.control_bytes_in,
            t.data_bytes_out,
            t.control_bytes_out,
        ] {
            digest = mix(digest, v);
        }
        activity.inbox_sheds += m.inbox_sheds;
        activity.joins_deferred += m.joins_deferred;
        activity.joins_admitted_after_defer += m.joins_admitted_after_defer;
        activity.peak_inbox_depth = activity.peak_inbox_depth.max(m.peak_inbox_depth);
        activity.working_set_evictions += m.working_set_evictions;
        activity.slow_demotions += m.slow_demotions;
    }
    (
        sim.counters(),
        digest,
        sim.network().total_bytes_sent(),
        driver.stats,
        activity,
    )
}
