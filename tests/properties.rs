//! Property-style tests over the core data structures and invariants.
//!
//! The build environment has no access to crates.io, so instead of the
//! `proptest` DSL these properties are exercised with an explicit
//! seeded-case loop: each test draws many random inputs from the workspace's
//! own deterministic [`SimRng`] and asserts the invariant on every case.
//! Failures print the offending case number, which (with the fixed seeds)
//! reproduces deterministically.

use std::collections::BTreeSet;

use bullet_suite::codec::{Framing, LtDecoder, LtEncoder, TornadoDecoder, TornadoEncoder};
use bullet_suite::content::{BloomFilter, PermutationFamily, SummaryTicket, WorkingSet};
use bullet_suite::netsim::{LinkSpec, Network, NetworkSpec, RoutingMode, SimDuration, SimRng};
use bullet_suite::overlay::{
    bottleneck_tree_with, overcast_tree_with, random_tree, OmbtConfig, OracleStrategy,
    OvercastConfig, ThroughputOracle, Tree,
};
use bullet_suite::ransub::{compact, Member, WeightedSet};
use bullet_suite::topology::{generate, TopologyConfig};
use bullet_suite::transport::tcp_throughput_bps;

#[path = "support/routing_equiv.rs"]
mod routing_equiv;

const CASES: u64 = 64;

/// Draws a value uniformly from `[lo, hi)`.
fn gen_range(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi);
    lo + rng.next_u64() % (hi - lo)
}

/// Draws a random set of distinct values from `[lo, hi)` with a size drawn
/// from `[min_len, max_len)`.
fn gen_set(rng: &mut SimRng, lo: u64, hi: u64, min_len: usize, max_len: usize) -> BTreeSet<u64> {
    let target = gen_range(rng, min_len as u64, max_len as u64) as usize;
    let mut set = BTreeSet::new();
    while set.len() < target {
        set.insert(gen_range(rng, lo, hi));
    }
    set
}

/// A Bloom filter never forgets an inserted key (no false negatives).
#[test]
fn bloom_filter_has_no_false_negatives() {
    let mut rng = SimRng::new(0xB100);
    for case in 0..CASES {
        let keys = gen_set(&mut rng, 0, 1_000_000, 1, 500);
        let mut filter = BloomFilter::for_capacity(keys.len(), 0.01);
        for &key in &keys {
            filter.insert(key);
        }
        for &key in &keys {
            assert!(filter.contains(key), "case {case}: lost key {key}");
        }
    }
}

/// Summary-ticket resemblance is symmetric, bounded, and equal to 1 for
/// identical working sets.
#[test]
fn summary_ticket_resemblance_properties() {
    let family = PermutationFamily::paper_default();
    let mut rng = SimRng::new(0x51C4);
    for case in 0..CASES {
        let a = gen_set(&mut rng, 0, 100_000, 1, 300);
        let b = gen_set(&mut rng, 0, 100_000, 1, 300);
        let ta = SummaryTicket::from_elements(&family, a.iter().copied());
        let tb = SummaryTicket::from_elements(&family, b.iter().copied());
        let r_ab = ta.resemblance(&tb);
        let r_ba = tb.resemblance(&ta);
        assert!((r_ab - r_ba).abs() < 1e-12, "case {case}: asymmetric");
        assert!((0.0..=1.0).contains(&r_ab), "case {case}: out of range");
        assert_eq!(ta.resemblance(&ta), 1.0, "case {case}");
    }
}

/// Working-set pruning never drops sequence numbers above the watermark and
/// never resurrects pruned ones.
#[test]
fn working_set_pruning_invariants() {
    let mut rng = SimRng::new(0x3033);
    for case in 0..CASES {
        let seqs = gen_set(&mut rng, 0, 10_000, 1, 400);
        let cutoff = gen_range(&mut rng, 0, 10_000);
        let mut ws = WorkingSet::new();
        for &seq in &seqs {
            ws.insert(seq);
        }
        ws.prune_below(cutoff);
        for &seq in &seqs {
            if seq >= cutoff {
                assert!(ws.contains(seq), "case {case}: dropped live seq {seq}");
            } else {
                assert!(!ws.contains(seq), "case {case}: kept pruned seq {seq}");
                assert!(!ws.insert(seq), "case {case}: resurrected seq {seq}");
            }
        }
        assert!(ws.low_watermark() >= cutoff.min(ws.low_watermark().max(cutoff)));
    }
}

/// LT codes recover the original block from any sufficiently large set of
/// distinct encoded symbols.
#[test]
fn lt_codes_round_trip() {
    let mut rng = SimRng::new(0x17C0);
    for case in 0..CASES {
        let k = gen_range(&mut rng, 4, 80) as usize;
        let seed = gen_range(&mut rng, 0, 1_000);
        let skip = gen_range(&mut rng, 1, 4);
        let source: Vec<Vec<u8>> = (0..k).map(|i| vec![(i % 251) as u8; 32]).collect();
        let encoder = LtEncoder::new(source.clone(), seed);
        let mut decoder = LtDecoder::new(k, 32, seed);
        let mut id = 0u64;
        while !decoder.is_complete() && id < 50 * k as u64 {
            if id.is_multiple_of(skip) {
                decoder.add(&encoder.symbol(id));
            }
            id += 1;
        }
        assert!(decoder.is_complete(), "case {case}: k={k} never decoded");
        assert_eq!(decoder.into_source().unwrap(), source, "case {case}");
    }
}

/// Tornado decoding is always *correct*: whatever subset of packets arrives
/// (check packets included), once the decoder reports completion the
/// reconstructed block equals the original. Recovery from a given loss
/// pattern is probabilistic for a sparse single-layer code, so the test
/// feeds the initially dropped packets afterwards if needed and requires
/// eventual completion with the full packet set.
#[test]
fn tornado_codes_decode_correctly() {
    let mut rng = SimRng::new(0x70B0);
    for case in 0..CASES {
        let k = gen_range(&mut rng, 8, 60) as usize;
        let drop_every = gen_range(&mut rng, 5, 15);
        let source: Vec<Vec<u8>> = (0..k).map(|i| vec![(i * 7 % 256) as u8; 16]).collect();
        let encoder = TornadoEncoder::new(source.clone(), 5, 2.0, 4);
        let mut decoder = TornadoDecoder::new(k, 16, 5, 4);
        let mut dropped = Vec::new();
        for index in 0..encoder.n() as u64 {
            if index % drop_every != 0 {
                decoder.add(&encoder.symbol(index));
            } else {
                dropped.push(index);
            }
        }
        // Late arrivals of the dropped packets must finish the block.
        for index in dropped {
            if decoder.is_complete() {
                break;
            }
            decoder.add(&encoder.symbol(index));
        }
        assert!(decoder.is_complete(), "case {case}: k={k}");
        assert_eq!(decoder.into_source().unwrap(), source, "case {case}");
    }
}

/// Compact never emits duplicates, never exceeds the requested size, and
/// reports the combined population.
#[test]
fn compact_invariants() {
    let mut rng = SimRng::new(0xC03A);
    for case in 0..CASES {
        let n_sets = gen_range(&mut rng, 1, 6) as usize;
        let sizes: Vec<(usize, u64)> = (0..n_sets)
            .map(|_| {
                (
                    gen_range(&mut rng, 1, 8) as usize,
                    gen_range(&mut rng, 1, 100),
                )
            })
            .collect();
        let set_size = gen_range(&mut rng, 1, 12) as usize;
        let mut next_node = 0usize;
        let inputs: Vec<WeightedSet<u32>> = sizes
            .iter()
            .map(|&(members, population)| {
                let members: Vec<Member<u32>> = (0..members)
                    .map(|_| {
                        next_node += 1;
                        Member {
                            node: next_node,
                            state: next_node as u32,
                        }
                    })
                    .collect();
                WeightedSet {
                    members,
                    population,
                }
            })
            .collect();
        let out = compact(&inputs, set_size, &mut rng);
        assert!(out.members.len() <= set_size, "case {case}: oversized");
        let mut nodes: Vec<_> = out.members.iter().map(|m| m.node).collect();
        nodes.sort_unstable();
        let distinct = nodes.len();
        nodes.dedup();
        assert_eq!(nodes.len(), distinct, "case {case}: duplicate members");
        assert_eq!(
            out.population,
            sizes.iter().map(|&(_, p)| p).sum::<u64>(),
            "case {case}"
        );
    }
}

/// Random trees are always valid rooted trees that respect their degree
/// bound and contain every participant.
#[test]
fn random_trees_are_valid() {
    let mut rng = SimRng::new(0x73EE);
    for case in 0..CASES {
        let n = gen_range(&mut rng, 1, 200) as usize;
        let max_children = gen_range(&mut rng, 1, 8) as usize;
        let seed = gen_range(&mut rng, 0, 1_000);
        let mut tree_rng = SimRng::new(seed);
        let tree = random_tree(n, 0, max_children, &mut tree_rng);
        assert_eq!(tree.len(), n, "case {case}");
        assert_eq!(tree.subtree_size(0), n, "case {case}");
        assert!(tree.max_degree() <= max_children, "case {case}");
        // Rebuilding from the parent array must succeed (validates
        // acyclicity).
        assert!(
            Tree::from_parents(tree.parents().to_vec()).is_ok(),
            "case {case}"
        );
    }
}

/// The TCP response function is monotonically decreasing in both loss and
/// RTT.
#[test]
fn tcp_throughput_is_monotone() {
    let mut rng = SimRng::new(0x7C40);
    for case in 0..CASES {
        let rtt = gen_range(&mut rng, 1, 500) as f64 / 1_000.0;
        let loss = gen_range(&mut rng, 1, 300) as f64 / 1_000.0;
        let base = tcp_throughput_bps(1_500.0, rtt, loss);
        let more_loss = tcp_throughput_bps(1_500.0, rtt, (loss * 1.5).min(0.999));
        let more_rtt = tcp_throughput_bps(1_500.0, rtt * 1.5, loss);
        assert!(base > 0.0, "case {case}");
        assert!(more_loss <= base + 1e-9, "case {case}");
        assert!(more_rtt <= base + 1e-9, "case {case}");
    }
}

/// For seeded transit-stub topologies at small and default (emulation)
/// scale, the lazy bidirectional search and its ALT variant return exactly
/// the reference per-source Dijkstra's path — cost and hop sequence — for
/// every ordered participant pair.
#[test]
fn lazy_routing_matches_reference_on_seeded_topology_classes() {
    let mut rng = SimRng::new(0x0D17_0A11);
    for case in 0..6 {
        let seed = rng.next_u64();
        let clients = 6 + (rng.next_u64() % 8) as usize;
        let small = generate(&TopologyConfig::small(clients, seed));
        routing_equiv::assert_all_participant_pairs_equivalent(
            &small.spec,
            &format!("small/case{case}"),
        );
        let emulation = generate(&TopologyConfig::emulation(clients, seed));
        routing_equiv::assert_all_participant_pairs_equivalent(
            &emulation.spec,
            &format!("emulation/case{case}"),
        );
    }
}

/// A uniform-delay grid maximizes equal-cost path ties; the canonical
/// tie-break must make all three strategies agree on every pair anyway.
#[test]
fn lazy_routing_matches_reference_on_tie_heavy_grids() {
    let (w, h) = (7, 7);
    let mut spec = NetworkSpec::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let id = y * w + x;
            if x + 1 < w {
                spec.add_link(LinkSpec::new(id, id + 1, 1e6, SimDuration::from_millis(1)));
            }
            if y + 1 < h {
                spec.add_link(LinkSpec::new(id, id + w, 1e6, SimDuration::from_millis(1)));
            }
            spec.attach(id);
        }
    }
    routing_equiv::assert_all_participant_pairs_equivalent(&spec, "grid7x7");
}

/// The paper topology class (≈20k routers): a sampled set of participant
/// pairs must route identically under all three strategies, and the lazy
/// strategies must never build a shortest-path tree.
#[test]
fn lazy_routing_matches_reference_on_the_paper_topology_class() {
    let topo = generate(&TopologyConfig::paper_scale(16, 5));
    assert!(
        topo.spec.routers >= 20_000,
        "paper class must be paper-sized"
    );
    let n = topo.participants();
    let mut pairs = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                pairs.push((a, b));
            }
        }
    }
    routing_equiv::assert_sampled_pairs_equivalent(&topo.spec, &pairs, "paper");
}

/// The scenario-dynamics mutation gate on seeded topology classes: after
/// every scripted link/router mutation, the incrementally invalidated
/// networks (all strategies, pairwise and batched) must route bit-identically
/// to a freshly rebuilt network on the mutated topology.
#[test]
fn mutated_routing_matches_fresh_rebuild_on_seeded_topology_classes() {
    use routing_equiv::TopoMutation;
    let mut rng = SimRng::new(0x0D11_A317);
    for case in 0..4 {
        let seed = rng.next_u64();
        let clients = 6 + (rng.next_u64() % 6) as usize;
        for (topo, class) in [
            (generate(&TopologyConfig::small(clients, seed)), "small"),
            (
                generate(&TopologyConfig::emulation(clients, seed)),
                "emulation",
            ),
        ] {
            let spec = &topo.spec;
            let links = spec.links.len();
            let pick = |rng: &mut SimRng| (rng.next_u64() % links as u64) as usize;
            let mut mutations = vec![
                TopoMutation::Bandwidth(pick(&mut rng), 256_000.0),
                TopoMutation::LinkUp(pick(&mut rng), false),
                TopoMutation::Delay(pick(&mut rng), SimDuration::from_millis(50)),
                TopoMutation::Loss(pick(&mut rng), 0.2),
            ];
            // A correlated stub outage of one participant's attachment
            // router, later healed; and the downed link restored.
            let stub = spec.attachments[(rng.next_u64() % clients as u64) as usize];
            mutations.push(TopoMutation::RouterUp(stub, false));
            mutations.push(TopoMutation::RouterUp(stub, true));
            if let TopoMutation::LinkUp(link, _) = mutations[1] {
                mutations.push(TopoMutation::LinkUp(link, true));
            }
            routing_equiv::assert_mutation_equivalence(
                spec,
                &mutations,
                &format!("{class}/case{case}"),
            );
        }
    }
}

/// Same gate on the tie-heavy grid, where a mutation shifts which of many
/// equal-cost paths is canonical — the hardest case for incremental
/// invalidation to get bit-identical.
#[test]
fn mutated_routing_matches_fresh_rebuild_on_tie_heavy_grids() {
    use routing_equiv::TopoMutation;
    let (w, h) = (5, 5);
    let mut spec = NetworkSpec::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let id = y * w + x;
            if x + 1 < w {
                spec.add_link(LinkSpec::new(id, id + 1, 1e6, SimDuration::from_millis(1)));
            }
            if y + 1 < h {
                spec.add_link(LinkSpec::new(id, id + w, 1e6, SimDuration::from_millis(1)));
            }
            spec.attach(id);
        }
    }
    let mutations = [
        TopoMutation::LinkUp(0, false),
        TopoMutation::Delay(7, SimDuration::from_millis(3)),
        TopoMutation::LinkUp(0, true),
        TopoMutation::RouterUp(12, false), // the grid's center router
        TopoMutation::RouterUp(12, true),
        TopoMutation::Delay(7, SimDuration::from_millis(1)),
    ];
    routing_equiv::assert_mutation_equivalence(&spec, &mutations, "grid5x5");
}

/// The randomized mutation-equivalence gate for incremental route repair:
/// long seeded sequences of mixed mutations (worsening, improving,
/// exact-restore oscillations, no-op re-asserts, correlated router outages)
/// over both generated topology classes, with a fresh rebuild as ground
/// truth after every step and the repair-mode accounting pinned at the end.
#[test]
fn incremental_repair_matches_rebuild_under_fuzzed_mutation_sequences() {
    let mut rng = SimRng::new(0x1C4E_9A1B);
    for case in 0..3 {
        let seed = rng.next_u64();
        let clients = 6 + (rng.next_u64() % 6) as usize;
        let small = generate(&TopologyConfig::small(clients, seed));
        routing_equiv::assert_incremental_equivalence(
            &small.spec,
            rng.next_u64(),
            14,
            &format!("fuzz/small/case{case}"),
        );
        let emulation = generate(&TopologyConfig::emulation(clients, seed));
        routing_equiv::assert_incremental_equivalence(
            &emulation.spec,
            rng.next_u64(),
            14,
            &format!("fuzz/emulation/case{case}"),
        );
    }
}

/// Same fuzzer on the tie-heavy grid, where improving mutations shift which
/// of many equal-cost paths is canonical — the hardest case for the
/// landmark-bound survival filter to get bit-identical (any `>=` where `>`
/// is required keeps a route that the canonical tie-break would replace).
#[test]
fn incremental_repair_matches_rebuild_on_fuzzed_tie_heavy_grids() {
    let (w, h) = (5, 5);
    let mut spec = NetworkSpec::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let id = y * w + x;
            if x + 1 < w {
                spec.add_link(LinkSpec::new(id, id + 1, 1e6, SimDuration::from_millis(1)));
            }
            if y + 1 < h {
                spec.add_link(LinkSpec::new(id, id + w, 1e6, SimDuration::from_millis(1)));
            }
            spec.attach(id);
        }
    }
    routing_equiv::assert_incremental_equivalence(&spec, 0x6E1D_F02D, 16, "fuzz/grid5x5");
}

/// ALT landmark lower bounds must stay admissible (`lb <= true cost`)
/// across arbitrary mutation sequences. Worsening mutations keep stale
/// tables sound for free; improving mutations must trigger the
/// admissibility check-and-repair — and a stale-landmark query must never
/// escape the guard: the repaired network's paths stay bit-identical to a
/// fresh rebuild on every pair, after every step.
#[test]
fn alt_lower_bounds_stay_admissible_after_mutation_sequences() {
    use routing_equiv::TopoMutation;
    let mut rng = SimRng::new(0x0A17_B0B5);
    for case in 0..4 {
        let seed = rng.next_u64();
        let topo = generate(&TopologyConfig::small(8, seed));
        let mut spec = topo.spec.clone();
        let mut net = Network::with_routing(&spec, RoutingMode::LazyAlt { landmarks: 4 });
        let n = spec.participants();
        for a in 0..n {
            for b in 0..n {
                let _ = net.path(a, b);
            }
        }
        let links = spec.links.len();
        // Alternate worsening and improving delay moves with a mid-sequence
        // link outage and heal, so the landmark tables see both the
        // stale-is-still-sound direction and the must-repair direction.
        let target = (rng.next_u64() % links as u64) as usize;
        let mutations = [
            TopoMutation::Delay(target, SimDuration::from_millis(80)),
            TopoMutation::LinkUp((target + 1) % links, false),
            TopoMutation::Delay(target, SimDuration::from_micros(700)),
            TopoMutation::LinkUp((target + 1) % links, true),
            TopoMutation::Delay((target + 2) % links, SimDuration::from_micros(900)),
        ];
        for (step, mutation) in mutations.into_iter().enumerate() {
            match mutation {
                TopoMutation::Delay(link, delay) => {
                    spec.set_link_delay(link, delay);
                    net.set_link_delay(link, delay);
                }
                TopoMutation::LinkUp(link, up) => {
                    spec.set_link_up(link, up);
                    net.set_link_up(link, up);
                }
                _ => unreachable!(),
            }
            let mut fresh = Network::with_routing(&spec, RoutingMode::EagerPerSource);
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let ctx = format!("case {case} step {step}: {a}->{b}");
                    // Stale landmarks must never leak a wrong route.
                    assert_eq!(fresh.path(a, b), net.path(a, b), "{ctx}: path diverges");
                    let lb = net
                        .alt_lower_bound(a, b)
                        .expect("ALT network must expose landmark bounds");
                    if let Some(true_cost) = fresh.propagation_delay(a, b) {
                        // All harness delays are >= 1us, so the raw routing
                        // cost equals the propagation delay in microseconds.
                        assert!(
                            lb <= true_cost.as_micros(),
                            "{ctx}: lower bound {lb} exceeds true cost {}",
                            true_cost.as_micros()
                        );
                    }
                }
            }
        }
        let rs = net.repair_stats();
        assert!(
            rs.landmark_checks > 0,
            "case {case}: improving mutations never triggered an admissibility check"
        );
        assert_eq!(
            rs.full_invalidations, 0,
            "case {case}: incremental network fell back to a wholesale dump"
        );
    }
}

/// The bandwidth oracles must observe link mutations: estimates read live
/// link state, so a capacity change (no route change) and a delay change
/// (route change) both show up in the next estimate — the oracle side of
/// the scenario engine's time-varying-link support.
#[test]
fn throughput_oracle_rereads_mutated_link_state() {
    let topo = generate(&TopologyConfig::small(8, 0x0AC1E));
    let mut spec = topo.spec.clone();
    let before = {
        let mut net = Network::new(&spec);
        let mut oracle = ThroughputOracle::new(&mut net, 1_500);
        (1..8)
            .map(|n| oracle.estimate_bps(0, n))
            .collect::<Vec<_>>()
    };
    // Throttle participant 0's access link far below every estimate above.
    let router = spec.attachments[0];
    let access = spec
        .links
        .iter()
        .position(|l| l.a == router || l.b == router)
        .expect("attached participants have an access link");
    let throttled_bps = 64_000.0;
    let mut net = Network::new(&spec);
    net.set_link_bandwidth(access, throttled_bps);
    spec.set_link_bandwidth(access, throttled_bps);
    let (mutated, fresh): (Vec<_>, Vec<_>) = {
        let mutated = {
            let mut oracle = ThroughputOracle::new(&mut net, 1_500);
            (1..8).map(|n| oracle.estimate_bps(0, n)).collect()
        };
        let mut fresh_net = Network::new(&spec);
        let mut oracle = ThroughputOracle::new(&mut fresh_net, 1_500);
        (mutated, (1..8).map(|n| oracle.estimate_bps(0, n)).collect())
    };
    assert_eq!(
        mutated, fresh,
        "oracle over the mutated network diverges from a fresh rebuild"
    );
    for (n, (b, m)) in before.iter().zip(&mutated).enumerate() {
        let b = b.expect("reachable before");
        let m = m.expect("reachable after");
        assert!(
            m <= throttled_bps + 1.0 && m < b,
            "estimate 0->{}: {m} Bps ignores the throttled access link ({b} Bps before)",
            n + 1
        );
    }
}

/// The offline tree oracles must build **bit-identical** trees whether their
/// routes come from pairwise point searches or from the batched one-to-many
/// row fills: the paths are canonical either way, and the floating-point
/// estimate arithmetic is untouched by the strategy. This is the oracle
/// counterpart of the routing-equivalence gate.
#[test]
fn tree_oracles_are_identical_under_batched_and_pairwise_routing() {
    let mut rng = SimRng::new(0x0BA7_C11E);
    for case in 0..4 {
        let seed = rng.next_u64();
        let clients = 10 + (rng.next_u64() % 8) as usize;
        for (topo, class) in [
            (generate(&TopologyConfig::small(clients, seed)), "small"),
            (
                generate(&TopologyConfig::emulation(clients, seed)),
                "emulation",
            ),
        ] {
            let label = format!("{class}/case{case}");
            let ombt = OmbtConfig {
                packet_size: 1_500,
                max_children: 4,
            };
            let batched = bottleneck_tree_with(
                &mut Network::new(&topo.spec),
                clients,
                0,
                &ombt,
                OracleStrategy::Batched,
            );
            let pairwise = bottleneck_tree_with(
                &mut Network::new(&topo.spec),
                clients,
                0,
                &ombt,
                OracleStrategy::Pairwise,
            );
            assert_eq!(
                batched.parents(),
                pairwise.parents(),
                "{label}: OMBT diverges under batching"
            );
            let overcast = OvercastConfig {
                max_children: 3,
                ..OvercastConfig::default()
            };
            let batched = overcast_tree_with(
                &mut Network::new(&topo.spec),
                clients,
                0,
                &overcast,
                OracleStrategy::Batched,
            );
            let pairwise = overcast_tree_with(
                &mut Network::new(&topo.spec),
                clients,
                0,
                &overcast,
                OracleStrategy::Pairwise,
            );
            assert_eq!(
                batched.parents(),
                pairwise.parents(),
                "{label}: Overcast diverges under batching"
            );
            // The per-node bandwidth metric behind the hand-crafted
            // good/worst trees: batched row fills vs pure point queries.
            let estimates = |strategy: OracleStrategy, prefetch: bool| -> Vec<Option<f64>> {
                let mut net = Network::new(&topo.spec);
                let mut oracle = ThroughputOracle::with_strategy(&mut net, 1_500, strategy);
                if prefetch {
                    oracle.prefetch_from(0);
                }
                (1..clients)
                    .map(|node| oracle.estimate_bps(0, node))
                    .collect()
            };
            let prefetched = estimates(OracleStrategy::Pairwise, true);
            let batched = estimates(OracleStrategy::Batched, false);
            let pairwise = estimates(OracleStrategy::Pairwise, false);
            assert_eq!(
                prefetched, pairwise,
                "{label}: prefetched metric diverges from pairwise"
            );
            assert_eq!(
                batched, pairwise,
                "{label}: batched metric diverges from pairwise"
            );
        }
    }
}

/// Builds the small adversary-property star: `n` Bullet nodes, a quarter of
/// the non-source nodes turning adversarial at t=5s (alternating corrupter
/// and stall/false-advertiser personas), run for 30 simulated seconds.
fn integrity_run(
    config: bullet_suite::bullet::BulletConfig,
    seed: u64,
) -> bullet_suite::netsim::Sim<bullet_suite::bullet::BulletNode> {
    use bullet_suite::bullet::BulletNode;
    use bullet_suite::dynamics::{ScenarioDriver, ScenarioScript};
    use bullet_suite::netsim::{Sim, SimTime};
    let n = 20;
    let mut spec = NetworkSpec::new(n + 1);
    for i in 0..n {
        spec.add_link(LinkSpec::new(
            n,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(seed);
    let tree = random_tree(n, 0, 4, &mut rng);
    let agents: Vec<BulletNode> = (0..n)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    let mut sim = Sim::new(&spec, agents, seed);
    let nodes: Vec<usize> = (1..n).collect();
    let script =
        ScenarioScript::adversary_fraction(&nodes, 0.25, SimTime::from_secs(5), 0.9, seed ^ 0xBAD);
    let mut driver = ScenarioDriver::new(&script);
    driver.install(&mut sim);
    driver.run_until(&mut sim, SimTime::from_secs(30));
    sim
}

/// With the integrity layer on, no final working set holds a corrupted
/// block, nothing tampered is ever accepted, and the defense visibly fired
/// (rejections and quarantines) — across seeds, i.e. across adversary
/// placements.
#[test]
fn integrity_defense_keeps_working_sets_clean() {
    use bullet_suite::bullet::BulletConfig;
    use bullet_suite::netsim::SimTime;
    for seed in [1u64, 2, 3] {
        let config = BulletConfig {
            stream_rate_bps: 400_000.0,
            stream_start: SimTime::from_secs(2),
            ransub_epoch: SimDuration::from_secs(2),
            ..BulletConfig::default()
        }
        .integrity();
        let sim = integrity_run(config, seed);
        let mut rejected = 0;
        let mut quarantines = 0;
        for node in 0..20 {
            let agent = sim.agent(node);
            assert_eq!(
                agent.corrupt_blocks_held(),
                0,
                "seed {seed}: node {node} holds corrupted blocks with the defense on"
            );
            assert_eq!(
                agent.reverify_working_set(),
                0,
                "seed {seed}: node {node} has a block whose digest does not re-verify"
            );
            assert_eq!(
                agent.metrics.corrupt_blocks_accepted, 0,
                "seed {seed}: node {node} accepted a tampered block with the defense on"
            );
            rejected += agent.metrics.corrupt_blocks_rejected;
            quarantines += agent.metrics.quarantines;
        }
        assert!(
            rejected > 0,
            "seed {seed}: the attack never landed a tampered block to reject"
        );
        assert!(
            quarantines > 0,
            "seed {seed}: no misbehaving peer was ever quarantined"
        );
    }
}

/// With the integrity layer off, the same attack lands: tampered blocks
/// are accepted into working sets and survive to the end of the run.
#[test]
fn integrity_attack_lands_when_the_defense_is_off() {
    use bullet_suite::bullet::BulletConfig;
    use bullet_suite::netsim::SimTime;
    for seed in [1u64, 2, 3] {
        let config = BulletConfig {
            stream_rate_bps: 400_000.0,
            stream_start: SimTime::from_secs(2),
            ransub_epoch: SimDuration::from_secs(2),
            ..BulletConfig::default()
        }
        .recovery();
        let sim = integrity_run(config, seed);
        let accepted: u64 = (0..20)
            .map(|n| sim.agent(n).metrics.corrupt_blocks_accepted)
            .sum();
        let held: usize = (0..20).map(|n| sim.agent(n).corrupt_blocks_held()).sum();
        let reverify: usize = (0..20).map(|n| sim.agent(n).reverify_working_set()).sum();
        let quarantines: u64 = (0..20).map(|n| sim.agent(n).metrics.quarantines).sum();
        assert!(
            accepted > 0,
            "seed {seed}: the undefended overlay accepted no tampered blocks"
        );
        assert!(
            held > 0,
            "seed {seed}: no tampered block survived in any working set"
        );
        assert_eq!(
            reverify, held,
            "seed {seed}: tainted bookkeeping disagrees with direct re-verification"
        );
        assert_eq!(
            quarantines, 0,
            "seed {seed}: quarantine fired with the integrity layer off"
        );
    }
}

/// Liveness under maximum pressure: with every overload budget at its
/// tightest and finite drop-tail ingress on every node, half the overlay
/// storming in mid-stream, and scripted slow receivers, nothing starves.
/// Every deferred join is eventually admitted (each storm node ends the
/// run receiving data), and every receiver keeps making fresh progress
/// late in the run — the overload layer sheds and defers, it never wedges.
#[test]
fn overload_max_pressure_never_starves_receivers() {
    use bullet_suite::bullet::config::OverloadConfig;
    use bullet_suite::bullet::{BulletConfig, BulletNode};
    use bullet_suite::dynamics::{ScenarioAction, ScenarioDriver, ScenarioScript};
    use bullet_suite::netsim::{NodeResources, QueueDiscipline, Sim, SimTime};
    use bullet_suite::overlay::random_tree;

    const NODES: usize = 24;
    for seed in [1u64, 2, 3] {
        let mut spec = NetworkSpec::new(NODES + 1);
        for i in 0..NODES {
            spec.add_link(LinkSpec::new(
                NODES,
                i,
                2_000_000.0,
                SimDuration::from_millis(10),
            ));
            spec.attach(i);
        }
        let mut rng = SimRng::new(seed);
        let tree = random_tree(NODES, 0, 4, &mut rng);
        let mut config = BulletConfig {
            stream_rate_bps: 400_000.0,
            stream_start: SimTime::from_secs(2),
            ransub_epoch: SimDuration::from_secs(2),
            filter_refresh_interval: SimDuration::from_secs(2),
            mesh_eval_interval: SimDuration::from_secs(5),
            ..BulletConfig::default()
        }
        .overload();
        config.overload = Some(OverloadConfig {
            inbox_budget: 2,
            working_set_budget: 80,
            ..OverloadConfig::default()
        });
        let agents: Vec<BulletNode> = (0..NODES)
            .map(|i| BulletNode::new(i, &tree, config.clone()))
            .collect();
        let mut sim = Sim::new(&spec, agents, seed);
        for node in 1..NODES {
            sim.set_node_resources(
                node,
                NodeResources {
                    queue_budget: 25,
                    drain_per_sec: 60.0,
                    discipline: QueueDiscipline::DropTail,
                },
            );
        }
        let script = ScenarioScript::new()
            .at(
                SimTime::from_secs(3),
                ScenarioAction::SlowNode {
                    node: 5,
                    factor: 0.2,
                },
            )
            .at(
                SimTime::from_secs(3),
                ScenarioAction::SlowNode {
                    node: 11,
                    factor: 0.2,
                },
            )
            .at(
                SimTime::from_secs(4),
                ScenarioAction::JoinStorm {
                    first: 12,
                    count: 12,
                    ramp_secs: 3.0,
                    seed: seed ^ 0x0B10,
                },
            );
        let mut driver = ScenarioDriver::new(&script);
        driver.install(&mut sim);
        driver.run_until(&mut sim, SimTime::from_secs(25));
        let mid: Vec<u64> = (0..NODES)
            .map(|n| sim.agent(n).metrics.delivery.useful_packets)
            .collect();
        driver.run_until(&mut sim, SimTime::from_secs(40));

        let mut sheds = 0;
        let mut deferred = 0;
        let mut admitted = 0;
        for (node, &before) in mid.iter().enumerate().skip(1) {
            let m = &sim.agent(node).metrics;
            assert!(
                m.delivery.useful_packets > before,
                "seed {seed}: node {node} made no fresh progress after t=25s \
                 ({} useful packets, stuck)",
                m.delivery.useful_packets,
            );
            sheds += m.inbox_sheds;
            deferred += m.joins_deferred;
            admitted += m.joins_admitted_after_defer;
        }
        assert!(
            sheds > 0,
            "seed {seed}: the inbox budget never shed — the run exerted no pressure"
        );
        assert!(
            deferred > 0,
            "seed {seed}: no join was ever deferred — admission control never engaged"
        );
        assert!(
            admitted > 0,
            "seed {seed}: no deferred join was ever admitted"
        );
    }
}

/// Framing maps sequence numbers to (block, offset) pairs and back without
/// loss.
#[test]
fn framing_round_trips() {
    let mut rng = SimRng::new(0xF4A3);
    for case in 0..CASES {
        let seq = gen_range(&mut rng, 0, 1_000_000);
        let per_block = gen_range(&mut rng, 1, 500) as u32;
        let bytes = gen_range(&mut rng, 1, 2_000) as u32;
        let framing = Framing::new(per_block, bytes);
        let object = framing.object_of(seq);
        assert_eq!(framing.seq_of(object), seq, "case {case}");
        assert!(object.offset < per_block, "case {case}");
        let (low, high) = framing.block_range(object.block);
        assert!((low..=high).contains(&seq), "case {case}");
    }
}
