//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use bullet_suite::codec::{Framing, LtDecoder, LtEncoder, TornadoDecoder, TornadoEncoder};
use bullet_suite::content::{BloomFilter, PermutationFamily, SummaryTicket, WorkingSet};
use bullet_suite::netsim::SimRng;
use bullet_suite::overlay::{random_tree, Tree};
use bullet_suite::ransub::{compact, Member, WeightedSet};
use bullet_suite::transport::tcp_throughput_bps;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A Bloom filter never forgets an inserted key (no false negatives).
    #[test]
    fn bloom_filter_has_no_false_negatives(keys in prop::collection::hash_set(0u64..1_000_000, 1..500)) {
        let mut filter = BloomFilter::for_capacity(keys.len(), 0.01);
        for &key in &keys {
            filter.insert(key);
        }
        for &key in &keys {
            prop_assert!(filter.contains(key));
        }
    }

    /// Summary-ticket resemblance is symmetric, bounded, and equal to 1 for
    /// identical working sets.
    #[test]
    fn summary_ticket_resemblance_properties(
        a in prop::collection::hash_set(0u64..100_000, 1..300),
        b in prop::collection::hash_set(0u64..100_000, 1..300),
    ) {
        let family = PermutationFamily::paper_default();
        let ta = SummaryTicket::from_elements(&family, a.iter().copied());
        let tb = SummaryTicket::from_elements(&family, b.iter().copied());
        let r_ab = ta.resemblance(&tb);
        let r_ba = tb.resemblance(&ta);
        prop_assert!((r_ab - r_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&r_ab));
        prop_assert_eq!(ta.resemblance(&ta), 1.0);
    }

    /// Working-set pruning never drops sequence numbers above the watermark
    /// and never resurrects pruned ones.
    #[test]
    fn working_set_pruning_invariants(
        seqs in prop::collection::hash_set(0u64..10_000, 1..400),
        cutoff in 0u64..10_000,
    ) {
        let mut ws = WorkingSet::new();
        for &seq in &seqs {
            ws.insert(seq);
        }
        ws.prune_below(cutoff);
        for &seq in &seqs {
            if seq >= cutoff {
                prop_assert!(ws.contains(seq));
            } else {
                prop_assert!(!ws.contains(seq));
                prop_assert!(!ws.insert(seq));
            }
        }
        prop_assert!(ws.low_watermark() >= cutoff.min(ws.low_watermark().max(cutoff)));
    }

    /// LT codes recover the original block from any sufficiently large set of
    /// distinct encoded symbols.
    #[test]
    fn lt_codes_round_trip(k in 4usize..80, seed in 0u64..1_000, skip in 1u64..4) {
        let source: Vec<Vec<u8>> = (0..k).map(|i| vec![(i % 251) as u8; 32]).collect();
        let encoder = LtEncoder::new(source.clone(), seed);
        let mut decoder = LtDecoder::new(k, 32, seed);
        let mut id = 0u64;
        while !decoder.is_complete() && id < 50 * k as u64 {
            if id % skip == 0 {
                decoder.add(&encoder.symbol(id));
            }
            id += 1;
        }
        prop_assert!(decoder.is_complete(), "k={k} never decoded");
        prop_assert_eq!(decoder.into_source().unwrap(), source);
    }

    /// Tornado decoding is always *correct*: whatever subset of packets
    /// arrives (check packets included), once the decoder reports completion
    /// the reconstructed block equals the original. Recovery from a given
    /// loss pattern is probabilistic for a sparse single-layer code, so the
    /// property feeds the initially dropped packets afterwards if needed and
    /// requires eventual completion with the full packet set.
    #[test]
    fn tornado_codes_decode_correctly(k in 8usize..60, drop_every in 5u64..15) {
        let source: Vec<Vec<u8>> = (0..k).map(|i| vec![(i * 7 % 256) as u8; 16]).collect();
        let encoder = TornadoEncoder::new(source.clone(), 5, 2.0, 4);
        let mut decoder = TornadoDecoder::new(k, 16, 5, 4);
        let mut dropped = Vec::new();
        for index in 0..encoder.n() as u64 {
            if index % drop_every != 0 {
                decoder.add(&encoder.symbol(index));
            } else {
                dropped.push(index);
            }
        }
        // Late arrivals of the dropped packets must finish the block.
        for index in dropped {
            if decoder.is_complete() {
                break;
            }
            decoder.add(&encoder.symbol(index));
        }
        prop_assert!(decoder.is_complete());
        prop_assert_eq!(decoder.into_source().unwrap(), source);
    }

    /// Compact never emits duplicates, never exceeds the requested size, and
    /// reports the combined population.
    #[test]
    fn compact_invariants(
        sizes in prop::collection::vec((1usize..8, 1u64..100), 1..6),
        set_size in 1usize..12,
        seed in 0u64..500,
    ) {
        let mut rng = SimRng::new(seed);
        let mut next_node = 0usize;
        let inputs: Vec<WeightedSet<u32>> = sizes.iter().map(|&(members, population)| {
            let members: Vec<Member<u32>> = (0..members).map(|_| {
                next_node += 1;
                Member { node: next_node, state: next_node as u32 }
            }).collect();
            WeightedSet { members, population }
        }).collect();
        let out = compact(&inputs, set_size, &mut rng);
        prop_assert!(out.members.len() <= set_size);
        let mut nodes: Vec<_> = out.members.iter().map(|m| m.node).collect();
        nodes.sort_unstable();
        let distinct = nodes.len();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), distinct);
        prop_assert_eq!(out.population, sizes.iter().map(|&(_, p)| p).sum::<u64>());
    }

    /// Random trees are always valid rooted trees that respect their degree
    /// bound and contain every participant.
    #[test]
    fn random_trees_are_valid(n in 1usize..200, max_children in 1usize..8, seed in 0u64..1_000) {
        let mut rng = SimRng::new(seed);
        let tree = random_tree(n, 0, max_children, &mut rng);
        prop_assert_eq!(tree.len(), n);
        prop_assert_eq!(tree.subtree_size(0), n);
        prop_assert!(tree.max_degree() <= max_children);
        // Rebuilding from the parent array must succeed (validates acyclicity).
        prop_assert!(Tree::from_parents(tree.parents().to_vec()).is_ok());
    }

    /// The TCP response function is monotonically decreasing in both loss and
    /// RTT.
    #[test]
    fn tcp_throughput_is_monotone(
        rtt_ms in 1u32..500,
        loss_milli in 1u32..300,
    ) {
        let rtt = rtt_ms as f64 / 1_000.0;
        let loss = loss_milli as f64 / 1_000.0;
        let base = tcp_throughput_bps(1_500.0, rtt, loss);
        let more_loss = tcp_throughput_bps(1_500.0, rtt, (loss * 1.5).min(0.999));
        let more_rtt = tcp_throughput_bps(1_500.0, rtt * 1.5, loss);
        prop_assert!(base > 0.0);
        prop_assert!(more_loss <= base + 1e-9);
        prop_assert!(more_rtt <= base + 1e-9);
    }

    /// Framing maps sequence numbers to (block, offset) pairs and back without
    /// loss.
    #[test]
    fn framing_round_trips(seq in 0u64..1_000_000, per_block in 1u32..500, bytes in 1u32..2_000) {
        let framing = Framing::new(per_block, bytes);
        let object = framing.object_of(seq);
        prop_assert_eq!(framing.seq_of(object), seq);
        prop_assert!(object.offset < per_block);
        let (low, high) = framing.block_range(object.block);
        prop_assert!((low..=high).contains(&seq));
    }
}
