//! Cross-crate integration tests: topology generation, tree construction,
//! Bullet, and the baselines all working together through the simulator.

use bullet_suite::baselines::{StreamConfig, StreamTransport, StreamingNode};
use bullet_suite::bullet::{BulletConfig, BulletNode};
use bullet_suite::dynamics::{ChurnConfig, ScenarioAction, ScenarioScript};
use bullet_suite::experiments::{build_topology, build_tree};
use bullet_suite::experiments::{
    bullet_run, bullet_run_scenario, flash_crowd_figure, run_metered, RunResult, RunSpec, Scale,
    TreeKind,
};
use bullet_suite::netsim::{Sim, SimDuration, SimTime};
use bullet_suite::overlay::Tree;
use bullet_suite::topology::{BandwidthProfile, BuiltTopology, LossProfile};

const STREAM_BPS: f64 = 600_000.0;

fn small_env(profile: BandwidthProfile, seed: u64) -> (BuiltTopology, Tree) {
    let topo = build_topology(Scale::Small, 24, profile, LossProfile::None, seed);
    let tree = build_tree(&topo, TreeKind::Random { max_children: 8 }, 0, seed);
    (topo, tree)
}

fn spec(label: &str, secs: u64) -> RunSpec {
    RunSpec {
        label: label.into(),
        source: 0,
        duration: SimDuration::from_secs(secs),
        sample_interval: SimDuration::from_secs(3),
        failure: None,
    }
}

fn run_bullet(topo: &BuiltTopology, tree: &Tree, seed: u64, secs: u64) -> RunResult {
    let config = BulletConfig {
        stream_rate_bps: STREAM_BPS,
        stream_start: SimTime::from_secs(10),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..topo.participants())
        .map(|id| BulletNode::new(id, tree, config.clone()))
        .collect();
    run_metered(Sim::new(&topo.spec, agents, seed), &spec("Bullet", secs))
}

fn run_streaming(topo: &BuiltTopology, tree: &Tree, seed: u64, secs: u64) -> RunResult {
    let config = StreamConfig {
        stream_rate_bps: STREAM_BPS,
        stream_start: SimTime::from_secs(10),
        transport: StreamTransport::Tfrc,
        ..StreamConfig::default()
    };
    let agents: Vec<StreamingNode> = (0..topo.participants())
        .map(|id| StreamingNode::new(id, tree, config.clone()))
        .collect();
    run_metered(Sim::new(&topo.spec, agents, seed), &spec("Streaming", secs))
}

#[test]
fn bullet_outperforms_streaming_on_a_constrained_random_tree() {
    let (topo, tree) = small_env(BandwidthProfile::Low, 101);
    let bullet = run_bullet(&topo, &tree, 101, 120);
    let streaming = run_streaming(&topo, &tree, 101, 120);
    let bullet_kbps = bullet.steady_state_kbps();
    let streaming_kbps = streaming.steady_state_kbps();
    assert!(
        bullet_kbps > 1.4 * streaming_kbps,
        "expected Bullet ({bullet_kbps:.0} Kbps) to clearly beat tree streaming ({streaming_kbps:.0} Kbps) on a constrained topology"
    );
}

#[test]
fn bullet_matches_the_target_rate_when_bandwidth_is_ample() {
    let (topo, tree) = small_env(BandwidthProfile::High, 102);
    let bullet = run_bullet(&topo, &tree, 102, 120);
    let kbps = bullet.steady_state_kbps();
    assert!(
        kbps > 0.75 * STREAM_BPS / 1_000.0,
        "achieved only {kbps:.0} Kbps of a {:.0} Kbps stream on a high-bandwidth topology",
        STREAM_BPS / 1_000.0
    );
}

#[test]
fn mesh_keeps_descendants_alive_through_a_failure() {
    let (topo, tree) = small_env(BandwidthProfile::Medium, 103);
    let victim = tree
        .children(0)
        .iter()
        .copied()
        .max_by_key(|&c| tree.subtree_size(c))
        .expect("root has children");
    let descendants: Vec<usize> = tree
        .subtree(victim)
        .into_iter()
        .filter(|&n| n != victim)
        .collect();
    if descendants.is_empty() {
        // Extremely unlikely with this seed, but the test would be vacuous.
        panic!("chosen victim has no descendants; adjust the seed");
    }
    let config = BulletConfig {
        stream_rate_bps: STREAM_BPS,
        stream_start: SimTime::from_secs(10),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..topo.participants())
        .map(|id| BulletNode::new(id, &tree, config.clone()))
        .collect();
    let mut run_spec = spec("failure", 150);
    run_spec.failure = Some((SimTime::from_secs(80), victim));
    let result = run_metered(Sim::new(&topo.spec, agents, 103), &run_spec);

    // Descendants of the failed node must keep making progress afterwards.
    let idx_fail = result.times.iter().position(|&t| t >= 90.0).unwrap();
    let last = result.per_node_useful_bytes.last().unwrap();
    let at_fail = &result.per_node_useful_bytes[idx_fail];
    let still_progressing = descendants
        .iter()
        .filter(|&&n| last[n] > at_fail[n] + 100_000)
        .count();
    assert!(
        still_progressing * 2 >= descendants.len(),
        "only {still_progressing} of {} descendants kept receiving data after their ancestor failed",
        descendants.len()
    );
}

#[test]
fn identical_seeds_reproduce_identical_results() {
    let (topo, tree) = small_env(BandwidthProfile::Medium, 104);
    let a = run_bullet(&topo, &tree, 104, 60);
    let b = run_bullet(&topo, &tree, 104, 60);
    assert_eq!(a.per_node_useful_bytes, b.per_node_useful_bytes);
    assert_eq!(a.useful.kbps, b.useful.kbps);
}

#[test]
fn offline_bottleneck_tree_beats_a_random_tree_for_plain_streaming() {
    let topo = build_topology(
        Scale::Small,
        24,
        BandwidthProfile::Medium,
        LossProfile::None,
        105,
    );
    let random = build_tree(&topo, TreeKind::Random { max_children: 8 }, 0, 105);
    let bottleneck = build_tree(&topo, TreeKind::Bottleneck, 0, 105);
    let random_run = run_streaming(&topo, &random, 105, 120);
    let bottleneck_run = run_streaming(&topo, &bottleneck, 105, 120);
    assert!(
        bottleneck_run.steady_state_kbps() > random_run.steady_state_kbps(),
        "bottleneck tree ({:.0} Kbps) should beat the random tree ({:.0} Kbps)",
        bottleneck_run.steady_state_kbps(),
        random_run.steady_state_kbps()
    );
}

/// Satellite gate for routing Figs. 13/14 through the scenario engine: the
/// one-crash script must reproduce the legacy `RunSpec::failure` injection
/// **exactly** — same sampled series, same summary — because the driver
/// pre-schedules crashes through the simulator's event queue with the same
/// ordering the legacy path used. This replays the `failure_figure` inputs
/// at small scale down both paths and compares bit for bit.
#[test]
fn fig13_through_the_scenario_engine_matches_the_legacy_path() {
    // Mirrors figures::failure_figure at Scale::Small (seed 13, medium
    // bandwidth, 600 Kbps, random tree, worst-case victim at 60% of 90 s).
    let scale = Scale::Small;
    let seed = 13;
    let topo = build_topology(scale, 30, BandwidthProfile::Medium, LossProfile::None, seed);
    let tree = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, seed);
    let victim = tree
        .children(0)
        .iter()
        .copied()
        .max_by_key(|&c| tree.subtree_size(c))
        .expect("root has children");
    let failure_time = SimTime::from_secs((90.0 * 0.6) as u64);
    let mut config = BulletConfig {
        stream_rate_bps: 600_000.0,
        stream_start: SimTime::from_secs(10),
        ..BulletConfig::default()
    };
    config.ransub_failure_detection = false;
    let mut run = RunSpec {
        label: "Bullet, worst-case failure, no RanSub recovery".into(),
        source: 0,
        duration: SimDuration::from_secs(90),
        sample_interval: SimDuration::from_secs(2),
        failure: None,
    };

    let script = ScenarioScript::single_crash(failure_time, victim);
    let scripted = bullet_run_scenario(&topo.spec, &tree, &config, &run, &script, seed);

    run.failure = Some((failure_time, victim));
    let legacy = bullet_run(&topo.spec, &tree, &config, &run, seed);

    assert_eq!(
        legacy.useful.kbps, scripted.useful.kbps,
        "useful series moved"
    );
    assert_eq!(legacy.raw.kbps, scripted.raw.kbps, "raw series moved");
    assert_eq!(
        legacy.from_parent.kbps, scripted.from_parent.kbps,
        "from-parent series moved"
    );
    assert_eq!(
        legacy.per_node_useful_bytes, scripted.per_node_useful_bytes,
        "per-node byte counters moved"
    );
    assert_eq!(legacy.summary, scripted.summary, "summary scalars moved");
}

/// Loss and bandwidth mutations are metadata-only: link costs are
/// propagation delays, so neither can re-route anything, and the repair
/// subsystem must do literally zero work for them. Re-asserting the links'
/// current values mid-run must reproduce the unscripted run bit for bit
/// (identical delivery traces), and even genuinely changed values must not
/// register a single route mutation or invalidation.
#[test]
fn loss_and_bandwidth_scripts_cause_zero_route_repair() {
    let (topo, tree) = small_env(BandwidthProfile::Medium, 41);
    let config = BulletConfig {
        stream_rate_bps: STREAM_BPS,
        stream_start: SimTime::from_secs(10),
        ..BulletConfig::default()
    };
    let run = spec("Bullet, metadata-only mutations", 60);

    let baseline =
        bullet_run_scenario(&topo.spec, &tree, &config, &run, &ScenarioScript::new(), 41);

    // Same-value re-asserts: metadata writes with no observable effect.
    let mut noop = ScenarioScript::new();
    for (i, at) in [(0usize, 20u64), (1, 30), (2, 40)] {
        noop.push(
            SimTime::from_secs(at),
            ScenarioAction::SetLinkBandwidth {
                link: i,
                bps: topo.spec.links[i].bandwidth_bps,
            },
        );
        noop.push(
            SimTime::from_secs(at + 5),
            ScenarioAction::SetLinkLoss {
                link: i,
                loss: topo.spec.links[i].loss,
            },
        );
    }
    let reasserted = bullet_run_scenario(&topo.spec, &tree, &config, &run, &noop, 41);
    assert_eq!(
        baseline.useful.kbps, reasserted.useful.kbps,
        "same-value loss/bandwidth writes moved the useful series"
    );
    assert_eq!(
        baseline.per_node_useful_bytes, reasserted.per_node_useful_bytes,
        "same-value loss/bandwidth writes moved per-node delivery"
    );
    assert_eq!(
        baseline.summary, reasserted.summary,
        "same-value loss/bandwidth writes moved the summary"
    );
    assert_eq!(
        baseline.summary.route_mutations, 0,
        "repair work registered"
    );

    // Genuinely changed values alter packet fates but still must not touch
    // the routing layers.
    let changed = ScenarioScript::new()
        .at(
            SimTime::from_secs(20),
            ScenarioAction::SetLinkBandwidth {
                link: 0,
                bps: topo.spec.links[0].bandwidth_bps * 0.5,
            },
        )
        .at(
            SimTime::from_secs(30),
            ScenarioAction::SetLinkLoss {
                link: 1,
                loss: 0.05,
            },
        );
    let perturbed = bullet_run_scenario(&topo.spec, &tree, &config, &run, &changed, 41);
    assert_eq!(
        perturbed.summary.route_mutations, 0,
        "loss/bandwidth changes must not count as route mutations"
    );
    assert_eq!(
        perturbed.summary.routes_invalidated, 0,
        "loss/bandwidth changes must not invalidate any route"
    );
    assert_eq!(
        perturbed.summary.landmark_repairs, 0,
        "loss/bandwidth changes must not repair landmark tables"
    );
}

/// A flash crowd absorbed mid-run: the late joiners bootstrap off the mesh
/// and end the run having received a meaningful share of the stream.
#[test]
fn flash_crowd_joiners_catch_up() {
    let figure = flash_crowd_figure(Scale::Small);
    assert_eq!(figure.id, "flashcrowd");
    assert!(!figure.notes.is_empty());
    let steady = figure
        .steady_state_of("flash crowd")
        .expect("figure has a labelled series");
    assert!(
        steady > 150.0,
        "overlay collapsed under the flash crowd: {steady:.0} Kbps steady"
    );
}

/// Continuous crash/rejoin churn of every non-source node: the mesh keeps
/// the median node progressing even while a quarter of the overlay is down
/// at any instant.
#[test]
fn bullet_survives_exponential_churn() {
    let (topo, tree) = small_env(BandwidthProfile::Medium, 107);
    let config = BulletConfig {
        stream_rate_bps: STREAM_BPS,
        stream_start: SimTime::from_secs(10),
        ..BulletConfig::default()
    }
    .churn();
    let script = ScenarioScript::exponential_churn(&ChurnConfig {
        nodes: (1..topo.participants()).collect(),
        start: SimTime::from_secs(15),
        end: SimTime::from_secs(110),
        mean_session_secs: 40.0,
        mean_downtime_secs: 10.0,
        graceful_fraction: 0.2,
        seed: 107,
    });
    assert!(!script.is_empty(), "churn script generated no events");
    let result = bullet_run_scenario(
        &topo.spec,
        &tree,
        &config,
        &spec("Bullet under churn", 120),
        &script,
        107,
    );
    let kbps = result.steady_state_kbps();
    assert!(
        kbps > 100.0,
        "mesh collapsed under churn: {kbps:.0} Kbps steady useful"
    );
    // Churning nodes miss whatever fell out of the recovery horizon while
    // they were down (the working set covers ~30 s of stream), so whole-run
    // delivery fractions sit well below the static-network runs; the gate
    // is that the median node still makes real progress.
    assert!(
        result.summary.median_delivery_fraction > 0.15,
        "median node received only {:.0}% of the stream under churn",
        result.summary.median_delivery_fraction * 100.0
    );
}

#[test]
fn control_overhead_stays_near_the_paper_figure() {
    let (topo, tree) = small_env(BandwidthProfile::Medium, 106);
    let bullet = run_bullet(&topo, &tree, 106, 120);
    let overhead = bullet.summary.control_overhead_kbps;
    assert!(
        overhead < 60.0,
        "per-node control overhead {overhead:.1} Kbps is far above the paper's ~30 Kbps"
    );
}
