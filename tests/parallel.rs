//! Thread-invariance gates for the parallel experiment harness.
//!
//! The run grid of every figure executes on a scoped-thread worker pool
//! (`BULLET_THREADS`), with the expensive immutable setup — generated
//! topology, bandwidth assignment, ALT landmark tables — shared across
//! workers via `Arc` and every mutable piece (network link state, route
//! memo, simulator, RNG) private per run. The contract is absolute: **all
//! `RunResult`s, `FigureResult`s and rendered report bytes are
//! bit-identical at any thread count.** These tests hold that contract at
//! 1 vs 8 threads, over a multi-seed sweep (so result reordering would be
//! caught), and re-run the bullet64/churn64 golden workloads concurrently
//! to pin them against their single-threaded fingerprints.

#[path = "support/adversary64.rs"]
mod adversary64;
#[path = "support/bullet64.rs"]
mod bullet64;
#[path = "support/churn64.rs"]
mod churn64;
#[path = "support/faults64.rs"]
mod faults64;
#[path = "support/overload64.rs"]
mod overload64;

use bullet_suite::experiments::{figure_suite_subset, render_suite, Scale, Sweep};

/// The subset of the suite the invariance gate sweeps: a multi-run paper
/// figure (fig09: three topologies × two protocols), the fig07 grid with
/// its derived fig08 CDF, a scenario-dynamics figure (churn: scripted
/// mid-run membership events), and the failure-recovery figure (recovery:
/// sustained crashes with the §4.6 subsystem on vs off). Two seeds widen
/// every configuration so the grid is large enough that an ordering bug
/// cannot hide.
const GATED_SUBSET: &[&str] = &["fig07", "fig09", "churn", "recovery"];

#[test]
fn figure_suite_is_bit_identical_across_thread_counts() {
    let serial = figure_suite_subset(Scale::Small, GATED_SUBSET, &Sweep::new(1, 2));
    let threaded = figure_suite_subset(Scale::Small, GATED_SUBSET, &Sweep::new(8, 2));
    assert_eq!(
        serial.len(),
        threaded.len(),
        "thread count changed the figure count"
    );
    for (a, b) in serial.iter().zip(&threaded) {
        assert_eq!(a, b, "figure {} differs between 1 and 8 threads", a.id);
    }
    // The rendered reports — what the bench harnesses print and what the
    // BENCH artifacts are built from — must match byte for byte.
    assert_eq!(render_suite(&serial), render_suite(&threaded));
}

#[test]
fn multi_seed_sweep_widens_the_grid_deterministically() {
    let single = figure_suite_subset(Scale::Small, &["fig07"], &Sweep::new(8, 1));
    let multi = figure_suite_subset(Scale::Small, &["fig07"], &Sweep::new(8, 3));
    // Seed 0 of the sweep reproduces the single-seed figure's series
    // exactly (same run, same label); extra seeds append labelled series
    // plus a spread note.
    let (fig7_single, fig7_multi) = (&single[0], &multi[0]);
    assert_eq!(fig7_multi.series.len(), 3 * fig7_single.series.len());
    assert_eq!(&fig7_multi.series[..3], &fig7_single.series[..]);
    assert!(fig7_multi
        .series
        .iter()
        .any(|s| s.label.contains("[seed 2]")));
    assert_eq!(
        fig7_multi.notes.len(),
        fig7_single.notes.len() + 1,
        "multi-seed figures append one spread note per configuration"
    );
    // The extra seeds are genuinely different runs, not copies.
    assert_ne!(fig7_multi.series[0].kbps, fig7_multi.series[3].kbps);
}

/// The golden workloads re-run on worker threads: eight concurrent
/// executions of the bullet64 fingerprint must all reproduce the golden
/// values the single-threaded determinism test pins (`tests/determinism.rs`
/// holds the authoritative constants; this cross-checks them under
/// `BULLET_THREADS=8`-style concurrency).
#[test]
fn bullet64_golden_is_identical_under_concurrency() {
    let reference = bullet64::fingerprint();
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8).map(|_| scope.spawn(bullet64::fingerprint)).collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    for fingerprint in concurrent {
        assert_eq!(fingerprint, reference);
    }
}

/// The telemetry gate: a fully instrumented bullet64 run (all-category
/// flight recorder + self-profiling) must produce the *same trace bytes*
/// on every worker thread — sim-time-stamped events only, no wall clock,
/// no thread identity. The deterministic half of the profile compares too
/// (`SelfProfile::eq` ignores its wall-clock fields by design).
#[test]
fn bullet64_trace_is_identical_under_concurrency() {
    let reference = bullet64::fingerprint_traced();
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| scope.spawn(bullet64::fingerprint_traced))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    for traced in concurrent {
        assert_eq!(traced.base, reference.base);
        assert_eq!(traced.trace_jsonl, reference.trace_jsonl);
        assert_eq!(traced.journeys_jsonl, reference.journeys_jsonl);
        assert_eq!(traced.profile, reference.profile);
    }
}

/// Same gate for the faults64 golden: the §4.6 recovery subsystem —
/// orphan detection off RanSub-epoch silence, the re-attach ladder,
/// control-RPC retries — together with partition drops and per-node
/// fault-injection draws must be byte-identical at any thread count.
#[test]
fn faults64_golden_is_identical_under_concurrency() {
    let reference = faults64::fingerprint();
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8).map(|_| scope.spawn(faults64::fingerprint)).collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    for fingerprint in concurrent {
        assert_eq!(fingerprint, reference);
    }
}

/// Same gate for the adversary64 golden: the data-plane integrity layer —
/// block verification, the adversary stall/corrupt draws and tamper hook,
/// health scoring decay and quarantine evictions — must be byte-identical
/// at any thread count.
#[test]
fn adversary64_golden_is_identical_under_concurrency() {
    let reference = adversary64::fingerprint();
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| scope.spawn(adversary64::fingerprint))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    for fingerprint in concurrent {
        assert_eq!(fingerprint, reference);
    }
}

/// Same gate for the overload64 golden: the overload-resilience layer —
/// bounded-inbox shedding, join deferral backoffs, working-set budget
/// evictions, slow-receiver demotions, and the join-storm expansion — must
/// be byte-identical at any thread count.
#[test]
fn overload64_golden_is_identical_under_concurrency() {
    let reference = overload64::fingerprint();
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| scope.spawn(overload64::fingerprint))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    for fingerprint in concurrent {
        assert_eq!(fingerprint, reference);
    }
}

/// Same gate for the churn64 golden: scenario-driven runs (mid-run network
/// mutation, epoch-invalidated rerouting, membership churn) are equally
/// thread-context-independent.
#[test]
fn churn64_golden_is_identical_under_concurrency() {
    let reference = churn64::fingerprint();
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8).map(|_| scope.spawn(churn64::fingerprint)).collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    for fingerprint in concurrent {
        assert_eq!(fingerprint, reference);
    }
}
