//! Determinism regression tests for the simulator refactor.
//!
//! The zero-allocation simulator rework (interned `RouteId` routes, pooled
//! flight slab, generation-stamped timer slots, 4-ary event queue with a
//! current-instant FIFO) must not change a single simulated timestamp, drop
//! decision, or RNG draw. The golden values below were captured by running
//! `examples/determinism_probe.rs` against the *pre-refactor* simulator
//! (seed commit, `Vec`-path flights + `BinaryHeap` + cancelled-timer set)
//! and are asserted against the current implementation here. The workload
//! itself lives in `tests/support/bullet64.rs`, shared with the probe.

#[path = "support/adversary64.rs"]
mod adversary64;
#[path = "support/bullet64.rs"]
mod bullet64;
#[path = "support/churn64.rs"]
mod churn64;
#[path = "support/faults64.rs"]
mod faults64;
#[path = "support/overload64.rs"]
mod overload64;
#[path = "support/paper_smoke.rs"]
mod paper_smoke;

use bullet_suite::netsim::RoutingMode;

/// The refactored simulator must reproduce the pre-refactor run exactly.
#[test]
fn bullet_64_matches_pre_refactor_golden_run() {
    let (counters, digest, bytes_sent) = bullet64::fingerprint();
    // Captured from the pre-refactor simulator (see module docs).
    assert_eq!(counters.delivered, 61_237);
    assert_eq!(counters.dropped_in_network, 92);
    assert_eq!(counters.dropped_dest_failed, 0);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.timers_fired, 7_374);
    assert_eq!(counters.events, 252_623);
    assert_eq!(digest, 0xb60f_4497_7cd1_2016);
    assert_eq!(bytes_sent, 143_402_772);
}

/// A fully instrumented run (all-category flight recorder + self-profiling)
/// must reproduce the same golden fingerprint: telemetry is observation
/// only, and the trace it captures is itself deterministic.
#[test]
fn bullet_64_traced_matches_the_same_golden_run() {
    let traced = bullet64::fingerprint_traced();
    let (counters, digest, bytes_sent) = traced.base;
    assert_eq!(counters.delivered, 61_237);
    assert_eq!(counters.events, 252_623);
    assert_eq!(digest, 0xb60f_4497_7cd1_2016);
    assert_eq!(bytes_sent, 143_402_772);
    // The trace saw the run: sends, deliveries, block journeys.
    assert!(!traced.trace_jsonl.is_empty());
    assert!(traced.trace_jsonl.contains("\"kind\":\"block_sealed\""));
    assert!(traced.journeys_jsonl.contains("\"seq\":0,"));
    assert_eq!(traced.profile.events, counters.events);
    assert!(traced.profile.peak_queue_depth > 0);
    // Two instrumented runs produce byte-identical traces.
    let again = bullet64::fingerprint_traced();
    assert_eq!(again.trace_jsonl, traced.trace_jsonl);
    assert_eq!(again.journeys_jsonl, traced.journeys_jsonl);
    assert_eq!(again.profile, traced.profile);
}

/// Two runs with the same seed must be byte-identical, including the event
/// count (which covers event ordering, not just outcomes).
#[test]
fn bullet_64_is_deterministic_across_runs() {
    let first = bullet64::fingerprint();
    let second = bullet64::fingerprint();
    assert_eq!(first.0, second.0);
    assert_eq!(first.1, second.1);
    assert_eq!(first.2, second.2);
}

/// The 64-node churn run: the bullet64 star driven by the scenario engine
/// through a crash + rejoin, a graceful leave with child handoff, a
/// 16-node flash crowd, an access-link capacity oscillation, and a
/// correlated stub-router outage (two route-invalidating epochs). The
/// goldens below were captured with `examples/churn_probe.rs` on the first
/// scenario-engine build; any divergence means the dynamics driver, the
/// mutable-network invalidation, or the churn protocol paths changed
/// behaviour.
#[test]
fn churn_64_matches_golden_run() {
    let (counters, digest, bytes_sent, epoch, stats) = churn64::fingerprint();
    assert_eq!(counters.delivered, 44_032);
    assert_eq!(counters.dropped_in_network, 391);
    assert_eq!(counters.dropped_dest_failed, 314);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.timers_fired, 6_504);
    assert_eq!(counters.events, 184_647);
    assert_eq!(digest, 0x5a57_6fcd_5133_257e);
    assert_eq!(bytes_sent, 105_616_680);
    // One stub outage down + up: exactly two route-invalidating epochs.
    assert_eq!(epoch, 2);
    // The script applied in full: 1 crash, 1 graceful leave, 1 rejoin plus
    // 16 flash-crowd joins, 2 capacity mutations, 2 router mutations.
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.leaves, 1);
    assert_eq!(stats.joins, 17);
    assert_eq!(stats.link_mutations, 2);
    assert_eq!(stats.router_mutations, 2);
}

/// Two churn runs with the same seed must be byte-identical: scenario
/// application (including epoch-invalidated rerouting) is deterministic.
#[test]
fn churn_64_is_deterministic_across_runs() {
    assert_eq!(churn64::fingerprint(), churn64::fingerprint());
}

/// The 64-node faults run: the bullet64 star with the §4.6 recovery
/// subsystem enabled, driven through two permanent subtree-orphaning
/// crashes, a 15-node partition/heal cycle, and per-node control-message
/// fault plans (30% drop + 10% duplicate on one node, 50% 20 ms delay on
/// another), all drawn from the deterministic sim RNG. The goldens below
/// were captured with `examples/faults_probe.rs` on the first recovery
/// build; the digest covers the recovery metrics (orphan detections,
/// re-attaches, control retries, eviction false positives) per node, so
/// any behavioural drift in the failure-recovery subsystem moves it.
#[test]
fn faults_64_matches_golden_run() {
    let (counters, digest, bytes_sent, epoch, stats, reattaches) = faults64::fingerprint();
    assert_eq!(counters.delivered, 68_294);
    assert_eq!(counters.dropped_in_network, 737);
    assert_eq!(counters.dropped_dest_failed, 796);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.dropped_partitioned, 1_578);
    assert_eq!(counters.dropped_faulted, 102);
    assert_eq!(counters.duplicated_faulted, 21);
    assert_eq!(counters.delayed_faulted, 119);
    assert_eq!(counters.timers_fired, 10_564);
    assert_eq!(counters.events, 288_283);
    assert_eq!(digest, 0x5369_0a92_4fd5_22d4);
    assert_eq!(bytes_sent, 163_201_968);
    // Partitions and faults never touch routes: no topology epochs.
    assert_eq!(epoch, 0);
    // The script applied in full.
    assert_eq!(stats.crashes, 2);
    assert_eq!(stats.partitions, 1);
    assert_eq!(stats.heals, 1);
    assert_eq!(stats.faults, 2);
    // The recovery subsystem actually fired: orphans (and partition
    // survivors that lost their parent path) re-attached.
    assert_eq!(reattaches, 95);
}

/// Two faults runs with the same seed must be byte-identical: fault
/// injection draws, partition drops and the re-attach ladder are all
/// deterministic.
#[test]
fn faults_64_is_deterministic_across_runs() {
    assert_eq!(faults64::fingerprint(), faults64::fingerprint());
}

/// The 64-node adversary run: the bullet64 star with the data-plane
/// integrity layer enabled (on top of the §4.6 recovery profile) while an
/// `adversary_fraction` script turns 20% of the overlay adversarial at
/// t=5s — even picks corrupt 75% of the data blocks they relay, odd picks
/// stall completely and falsely advertise phantom content. The goldens
/// below were captured with `examples/adversary_probe.rs` on the first
/// integrity build; the digest covers the integrity metrics (blocks
/// verified, corrupt rejected/accepted, health penalties, quarantines)
/// per node, so any behavioural drift in the defense moves it. The digest
/// was recaptured when the stall-penalty misfire was fixed (penalties now
/// require an outstanding *owed* block): honest idle senders stopped
/// accruing penalties, which moves the per-node penalty counts — and only
/// them; every simulator counter, event count and quarantine decision is
/// unchanged.
#[test]
fn adversary_64_matches_golden_run() {
    let (counters, digest, bytes_sent, epoch, stats, quarantines) = adversary64::fingerprint();
    assert_eq!(counters.delivered, 21_894);
    assert_eq!(counters.dropped_in_network, 17);
    assert_eq!(counters.dropped_dest_failed, 0);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.dropped_partitioned, 0);
    assert_eq!(counters.dropped_faulted, 0);
    assert_eq!(counters.corrupted_adversary, 47);
    assert_eq!(counters.stalled_adversary, 1_075);
    assert_eq!(counters.timers_fired, 10_699);
    assert_eq!(counters.events, 98_337);
    assert_eq!(digest, 0x722f_465c_502e_41d6);
    assert_eq!(bytes_sent, 51_218_216);
    // Adversary plans never touch routes: no topology epochs.
    assert_eq!(epoch, 0);
    // The script applied in full: 20% of 63 non-source nodes.
    assert_eq!(stats.adversaries, 13);
    // The defense actually fired: misbehaving peers got quarantined.
    assert_eq!(quarantines, 9);
}

/// Two adversary runs with the same seed must be byte-identical: the
/// corrupt/stall draws, tamper hook, health scoring and quarantine
/// evictions are all deterministic.
#[test]
fn adversary_64_is_deterministic_across_runs() {
    assert_eq!(adversary64::fingerprint(), adversary64::fingerprint());
}

/// The 64-node overload run: the bullet64 star with the overload-resilience
/// layer enabled (bounded prioritized inboxes, join admission control,
/// working-set memory budget, slow-receiver demotion) driven through a
/// 16-node join storm and six scripted slow receivers. The goldens below
/// were captured with `examples/overload_probe.rs` on the first overload
/// build; the digest covers the overload metrics (sheds, deferrals,
/// later admissions, peak inbox depth, evictions, demotions) per node, so
/// any behavioural drift in the defense moves it.
#[test]
fn overload_64_matches_golden_run() {
    let (counters, digest, bytes_sent, stats, activity) = overload64::fingerprint();
    assert_eq!(counters.delivered, 94_318);
    assert_eq!(counters.dropped_in_network, 415);
    assert_eq!(counters.dropped_dest_failed, 205);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.timers_fired, 13_551);
    assert_eq!(counters.events, 392_523);
    assert_eq!(digest, 0x02e0_ef65_ed69_08ad);
    assert_eq!(bytes_sent, 221_772_616);
    // The script applied in full: 16 storm joins, 6 slow-node switches.
    assert_eq!(stats.joins, 16);
    assert_eq!(stats.slow_nodes, 6);
    // Every overload mechanism actually fired.
    assert_eq!(activity.inbox_sheds, 529);
    assert_eq!(activity.joins_deferred, 825);
    assert_eq!(activity.joins_admitted_after_defer, 90);
    assert_eq!(activity.peak_inbox_depth, 74);
    assert_eq!(activity.working_set_evictions, 7_517);
    assert_eq!(activity.slow_demotions, 4);
}

/// Two overload runs with the same seed must be byte-identical: storm
/// expansion, deferral backoffs, shedding decisions, budget evictions and
/// slow demotions are all deterministic.
#[test]
fn overload_64_is_deterministic_across_runs() {
    assert_eq!(overload64::fingerprint(), overload64::fingerprint());
}

/// The `BULLET_SCALE=paper` smoke run: 256 Bullet nodes streaming for a few
/// simulated seconds over a ≥20,000-router paper-class topology, routed by
/// lazy landmark-guided bidirectional search. The goldens below were
/// captured with `examples/paper_smoke_probe.rs`; because every route is
/// canonical, route-computation order can never leak into these values —
/// any divergence means the lazy router (or the simulator) changed
/// behaviour.
#[test]
fn paper_scale_smoke_matches_golden_run() {
    let (counters, digest, bytes_sent, routing) = paper_smoke::fingerprint();
    assert_eq!(counters.delivered, 18_982);
    assert_eq!(counters.dropped_in_network, 246);
    assert_eq!(counters.dropped_dest_failed, 0);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.timers_fired, 7_779);
    assert_eq!(counters.events, 427_235);
    assert_eq!(digest, 0x4f1d_76a4_5a57_617e);
    assert_eq!(bytes_sent, 473_096_556);

    // The acceptance gate for the routing rework: a paper-scale topology
    // built and streamed without ever materializing a per-source
    // shortest-path tree (let alone all-pairs state).
    assert!(matches!(routing.mode, RoutingMode::LazyAlt { .. }));
    assert_eq!(routing.trees_built, 0, "no SPT may ever be built");
    assert_eq!(routing.route_queries, 627);
    assert_eq!(routing.lazy_searches, 627);
    assert_eq!(routing.routers_settled, 1_874_197);
    assert_eq!(routing.landmarks, 8);
}
