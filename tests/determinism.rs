//! Determinism regression tests for the simulator refactor.
//!
//! The zero-allocation simulator rework (interned `RouteId` routes, pooled
//! flight slab, generation-stamped timer slots, 4-ary event queue with a
//! current-instant FIFO) must not change a single simulated timestamp, drop
//! decision, or RNG draw. The golden values below were captured by running
//! `examples/determinism_probe.rs` against the *pre-refactor* simulator
//! (seed commit, `Vec`-path flights + `BinaryHeap` + cancelled-timer set)
//! and are asserted against the current implementation here. The workload
//! itself lives in `tests/support/bullet64.rs`, shared with the probe.

#[path = "support/bullet64.rs"]
mod bullet64;

/// The refactored simulator must reproduce the pre-refactor run exactly.
#[test]
fn bullet_64_matches_pre_refactor_golden_run() {
    let (counters, digest, bytes_sent) = bullet64::fingerprint();
    // Captured from the pre-refactor simulator (see module docs).
    assert_eq!(counters.delivered, 61_237);
    assert_eq!(counters.dropped_in_network, 92);
    assert_eq!(counters.dropped_dest_failed, 0);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.timers_fired, 7_374);
    assert_eq!(counters.events, 252_623);
    assert_eq!(digest, 0xb60f_4497_7cd1_2016);
    assert_eq!(bytes_sent, 143_402_772);
}

/// Two runs with the same seed must be byte-identical, including the event
/// count (which covers event ordering, not just outcomes).
#[test]
fn bullet_64_is_deterministic_across_runs() {
    let first = bullet64::fingerprint();
    let second = bullet64::fingerprint();
    assert_eq!(first.0, second.0);
    assert_eq!(first.1, second.1);
    assert_eq!(first.2, second.2);
}
