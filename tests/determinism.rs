//! Determinism regression tests for the simulator refactor.
//!
//! The zero-allocation simulator rework (interned `RouteId` routes, pooled
//! flight slab, generation-stamped timer slots, 4-ary event queue with a
//! current-instant FIFO) must not change a single simulated timestamp, drop
//! decision, or RNG draw. The golden values below were captured by running
//! `examples/determinism_probe.rs` against the *pre-refactor* simulator
//! (seed commit, `Vec`-path flights + `BinaryHeap` + cancelled-timer set)
//! and are asserted against the current implementation here. The workload
//! itself lives in `tests/support/bullet64.rs`, shared with the probe.

#[path = "support/bullet64.rs"]
mod bullet64;
#[path = "support/paper_smoke.rs"]
mod paper_smoke;

use bullet_suite::netsim::RoutingMode;

/// The refactored simulator must reproduce the pre-refactor run exactly.
#[test]
fn bullet_64_matches_pre_refactor_golden_run() {
    let (counters, digest, bytes_sent) = bullet64::fingerprint();
    // Captured from the pre-refactor simulator (see module docs).
    assert_eq!(counters.delivered, 61_237);
    assert_eq!(counters.dropped_in_network, 92);
    assert_eq!(counters.dropped_dest_failed, 0);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.timers_fired, 7_374);
    assert_eq!(counters.events, 252_623);
    assert_eq!(digest, 0xb60f_4497_7cd1_2016);
    assert_eq!(bytes_sent, 143_402_772);
}

/// Two runs with the same seed must be byte-identical, including the event
/// count (which covers event ordering, not just outcomes).
#[test]
fn bullet_64_is_deterministic_across_runs() {
    let first = bullet64::fingerprint();
    let second = bullet64::fingerprint();
    assert_eq!(first.0, second.0);
    assert_eq!(first.1, second.1);
    assert_eq!(first.2, second.2);
}

/// The `BULLET_SCALE=paper` smoke run: 256 Bullet nodes streaming for a few
/// simulated seconds over a ≥20,000-router paper-class topology, routed by
/// lazy landmark-guided bidirectional search. The goldens below were
/// captured with `examples/paper_smoke_probe.rs`; because every route is
/// canonical, route-computation order can never leak into these values —
/// any divergence means the lazy router (or the simulator) changed
/// behaviour.
#[test]
fn paper_scale_smoke_matches_golden_run() {
    let (counters, digest, bytes_sent, routing) = paper_smoke::fingerprint();
    assert_eq!(counters.delivered, 18_982);
    assert_eq!(counters.dropped_in_network, 246);
    assert_eq!(counters.dropped_dest_failed, 0);
    assert_eq!(counters.dropped_src_failed, 0);
    assert_eq!(counters.timers_fired, 7_779);
    assert_eq!(counters.events, 427_235);
    assert_eq!(digest, 0x4f1d_76a4_5a57_617e);
    assert_eq!(bytes_sent, 473_096_556);

    // The acceptance gate for the routing rework: a paper-scale topology
    // built and streamed without ever materializing a per-source
    // shortest-path tree (let alone all-pairs state).
    assert!(matches!(routing.mode, RoutingMode::LazyAlt { .. }));
    assert_eq!(routing.trees_built, 0, "no SPT may ever be built");
    assert_eq!(routing.route_queries, 627);
    assert_eq!(routing.lazy_searches, 627);
    assert_eq!(routing.routers_settled, 1_874_197);
    assert_eq!(routing.landmarks, 8);
}
