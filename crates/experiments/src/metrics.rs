//! Series and summary statistics for experiment results.

/// `numerator / denominator`, or `0.0` when the denominator is zero — the
/// guard every summary ratio shares so a degenerate run (no packets, no
/// duplicates) folds to zero instead of NaN.
pub fn ratio_or_zero(numerator: f64, denominator: f64) -> f64 {
    if denominator == 0.0 {
        0.0
    } else {
        numerator / denominator
    }
}

/// Sorts `values` and returns the element at index `len / 2` — the
/// harness's historical median convention — or `0.0` when the input is
/// empty (e.g. a source-only run with no receivers).
pub fn median_or_zero(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values.get(values.len() / 2).copied().unwrap_or(0.0)
}

/// Mean seconds per completion from a cumulative microsecond total, or
/// `0.0` when nothing completed.
pub fn mean_secs_from_us(total_us: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        total_us as f64 / 1e6 / count as f64
    }
}

/// A labelled bandwidth-over-time series (the unit of every figure's plot).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BandwidthSeries {
    /// Curve label (e.g. "Bullet - Medium Bandwidth").
    pub label: String,
    /// Sample times, in seconds since the start of the run.
    pub times: Vec<f64>,
    /// Average per-node bandwidth at each sample, in Kbps.
    pub kbps: Vec<f64>,
}

impl BandwidthSeries {
    /// Creates an empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        BandwidthSeries {
            label: label.into(),
            times: Vec::new(),
            kbps: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, time_secs: f64, kbps: f64) {
        self.times.push(time_secs);
        self.kbps.push(kbps);
    }

    /// Mean bandwidth over the final `fraction` of the samples — the
    /// "steady-state achieved bandwidth" number quoted in the text of the
    /// paper (e.g. "approximately 500 Kbps" for Fig. 7).
    pub fn steady_state_kbps(&self, fraction: f64) -> f64 {
        if self.kbps.is_empty() {
            return 0.0;
        }
        let fraction = fraction.clamp(0.05, 1.0);
        let start = ((self.kbps.len() as f64) * (1.0 - fraction)).floor() as usize;
        let tail = &self.kbps[start.min(self.kbps.len() - 1)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Peak sample value.
    pub fn peak_kbps(&self) -> f64 {
        self.kbps.iter().copied().fold(0.0, f64::max)
    }
}

/// An empirical CDF over per-node values (Fig. 8).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cdf {
    /// Sorted sample values.
    pub values: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF from unsorted samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Cdf { values: samples }
    }

    /// The fraction of samples at or below `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let count = self.values.iter().filter(|&&v| v <= x).count();
        count as f64 / self.values.len() as f64
    }

    /// The `q`-quantile (q in [0, 1]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let idx = ((self.values.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.values[idx]
    }

    /// Iterates `(value, cumulative fraction)` pairs for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.values.len() as f64;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }
}

/// Scalar summary of one run, covering the numbers quoted in the text of
/// §4.2 (control overhead, duplicate ratio, link stress).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Mean per-node useful bandwidth in steady state, Kbps.
    pub steady_useful_kbps: f64,
    /// Mean per-node raw (including duplicates) bandwidth in steady state,
    /// Kbps.
    pub steady_raw_kbps: f64,
    /// Fraction of received data packets that were duplicates.
    pub duplicate_fraction: f64,
    /// Of the duplicates, the fraction that arrived from tree parents
    /// (relays of recovered packets down the tree).
    pub parent_relay_duplicate_share: f64,
    /// Mean per-node control overhead, Kbps.
    pub control_overhead_kbps: f64,
    /// Mean link stress over traced packets.
    pub link_stress_mean: f64,
    /// Maximum link stress observed.
    pub link_stress_max: u64,
    /// Fraction of the generated stream the median node received.
    pub median_delivery_fraction: f64,
    /// Total orphan detections across nodes (§4.6 recovery subsystem;
    /// zero for baselines and recovery-off runs).
    pub orphan_detections: u64,
    /// Total completed orphan re-attaches across nodes.
    pub reattaches: u64,
    /// Mean seconds from orphan detection to re-attach acceptance (zero
    /// when nothing re-attached).
    pub mean_reattach_secs: f64,
    /// Median across re-attached nodes of their mean detection-to-accept
    /// time, seconds (the §4.6 acceptance number).
    pub median_reattach_secs: f64,
    /// Total useful packets that arrived from the mesh while their
    /// receiver was orphaned — the window the mesh bridged.
    pub orphan_window_packets: u64,
    /// Total control RPCs re-sent after a timeout.
    pub control_retries: u64,
    /// Total peers evicted for silence that were later heard from again.
    pub false_positive_evictions: u64,
    /// Route-affecting topology mutations the run applied (epoch bumps);
    /// zero for static-topology runs.
    pub route_mutations: u64,
    /// Interned routes invalidated by affected-region incremental repair
    /// (zero under wholesale rebuild, where every mutation dumps all
    /// lookup layers instead).
    pub routes_invalidated: u64,
    /// ALT landmark tables repaired after improving mutations (admissibility
    /// check failures; zero when mutations only worsened links or the
    /// tables were already consistent).
    pub landmark_repairs: u64,
    /// Total data packets whose carried digest was checked against the
    /// sealed block digest (zero for baselines, which carry no digests).
    pub blocks_verified: u64,
    /// Total corrupted blocks rejected on receive (integrity layer on).
    pub corrupt_blocks_rejected: u64,
    /// Total corrupted blocks accepted into working sets (integrity layer
    /// off — how far tampering propagates undefended).
    pub corrupt_blocks_accepted: u64,
    /// Total peers quarantined for misbehavior.
    pub quarantines: u64,
    /// Steady-state goodput credited only to receivers whose working set
    /// accepted zero tampered blocks, Kbps (`steady_useful_kbps` scaled by
    /// the clean-receiver fraction — one accepted forgery poisons that
    /// receiver's reconstructed stream). Equals `steady_useful_kbps` when
    /// every working set stayed clean; the defense-on/off comparison in
    /// the adversary figure is a ratio of these.
    pub clean_goodput_kbps: f64,
    /// Total control messages shed at bounded inboxes (overload layer on;
    /// zero otherwise).
    pub inbox_sheds: u64,
    /// Total join requests answered with a deferral instead of an
    /// immediate accept/reject (overload layer on).
    pub joins_deferred: u64,
    /// Total deferred joins later admitted after their backoff.
    pub joins_admitted_after_defer: u64,
    /// Deepest per-node inbox backlog observed within any one-second
    /// window, across the overlay (populated whether or not the overload
    /// layer bounds it).
    pub peak_inbox_depth: u64,
    /// Total working-set blocks evicted by the memory budget.
    pub working_set_evictions: u64,
    /// Total receivers demoted for sustained slowness.
    pub slow_demotions: u64,
    /// Messages shed at simulated ingress queues (the netsim
    /// `NodeResources` model; zero when no resource model is installed).
    pub ingress_sheds: u64,
    /// Deepest simulated ingress backlog observed across resourced nodes.
    pub ingress_peak_depth: u64,
    /// Simulator events dispatched over the run (deterministic; always
    /// populated, telemetry on or off).
    pub sim_events: u64,
    /// Peak event-queue depth observed (zero unless self-profiling was
    /// enabled for the run; deterministic when populated).
    pub peak_queue_depth: u64,
    /// Mean event-queue depth over all dispatches (zero unless
    /// self-profiling was enabled; deterministic when populated).
    pub mean_queue_depth: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_uses_the_tail() {
        let mut s = BandwidthSeries::new("test");
        for i in 0..100 {
            // Ramp from 0 to 990, then read the last 10%.
            s.push(i as f64, (i * 10) as f64);
        }
        let tail = s.steady_state_kbps(0.1);
        assert!(tail > 900.0, "tail mean {tail}");
        assert_eq!(s.peak_kbps(), 990.0);
    }

    #[test]
    fn steady_state_of_empty_series_is_zero() {
        assert_eq!(BandwidthSeries::new("x").steady_state_kbps(0.2), 0.0);
    }

    #[test]
    fn cdf_fractions_and_quantiles() {
        let cdf = Cdf::from_samples(vec![500.0, 100.0, 300.0, 400.0, 200.0]);
        assert_eq!(cdf.fraction_at_or_below(250.0), 0.4);
        assert_eq!(cdf.fraction_at_or_below(500.0), 1.0);
        assert_eq!(cdf.fraction_at_or_below(50.0), 0.0);
        assert_eq!(cdf.quantile(0.0), 100.0);
        assert_eq!(cdf.quantile(1.0), 500.0);
        assert_eq!(cdf.quantile(0.5), 300.0);
        let points: Vec<_> = cdf.points().collect();
        assert_eq!(points.len(), 5);
        assert_eq!(points[0], (100.0, 0.2));
    }

    #[test]
    fn cdf_of_nothing_is_degenerate() {
        let cdf = Cdf::from_samples(Vec::new());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 0.0);
    }

    #[test]
    fn ratio_guards_zero_denominators() {
        assert_eq!(ratio_or_zero(5.0, 0.0), 0.0);
        assert_eq!(ratio_or_zero(0.0, 0.0), 0.0);
        assert_eq!(ratio_or_zero(3.0, 4.0), 0.75);
    }

    #[test]
    fn median_of_source_only_run_is_zero_not_nan() {
        // A run whose only participant is the source produces no per-node
        // fractions at all; the median must fold to 0, never NaN.
        let median = median_or_zero(Vec::new());
        assert_eq!(median, 0.0);
        assert!(!median.is_nan());
    }

    #[test]
    fn median_uses_the_historical_len_over_two_pick() {
        assert_eq!(median_or_zero(vec![3.0, 1.0, 2.0]), 2.0);
        // Even length picks the upper-middle element, like the harness
        // always has.
        assert_eq!(median_or_zero(vec![4.0, 1.0, 3.0, 2.0]), 3.0);
    }

    #[test]
    fn mean_secs_with_zero_completions_is_zero() {
        assert_eq!(mean_secs_from_us(5_000_000, 0), 0.0);
        assert_eq!(mean_secs_from_us(3_000_000, 2), 1.5);
    }
}
