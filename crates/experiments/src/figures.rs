//! Per-figure experiment definitions.
//!
//! One function per table/figure of the paper's evaluation (§4). Each builds
//! the topology and trees the paper describes, runs the systems under
//! comparison, and returns a [`FigureResult`] containing the same curves the
//! figure plots plus the scalar numbers quoted in the surrounding text. The
//! bench harnesses in `crates/bench` print these results; EXPERIMENTS.md
//! records paper-versus-measured for each.
//!
//! # The run grid
//!
//! Internally every figure is a **plan**: a grid of independent run tasks
//! (configuration × seed) plus an assembly step that turns the ordered run
//! results into the figure. Plans execute on the scoped-thread
//! [`RunPool`](crate::pool::RunPool) (`BULLET_THREADS`, default all cores),
//! and [`crate::suite::figure_suite`] flattens the plans of *every* figure
//! into one grid so the whole evaluation saturates the machine. Because
//! results are collected in task order and each run owns all of its mutable
//! state (the expensive immutable setup — generated topology, bandwidth
//! assignment, ALT landmark tables — is shared read-only via `Arc`, see
//! [`crate::env::PreparedTopology`]), figure output is bit-identical at any
//! thread count. `BULLET_SEEDS` widens each configuration to a multi-seed
//! sweep; seed index 0 reproduces the historical single-seed output byte
//! for byte, extra seeds append `[seed k]` series and a per-configuration
//! spread note.

use std::sync::Arc;

use bullet_baselines::{AntiEntropyConfig, GossipConfig, StreamConfig, StreamTransport};
use bullet_core::BulletConfig;
use bullet_dynamics::ScenarioScript;
use bullet_netsim::{NetworkSpec, SimDuration, SimTime};
use bullet_overlay::{good_tree, random_tree, worst_tree};
use bullet_topology::{BandwidthProfile, BuiltTopology, LossProfile};

use crate::env::{constrained_source_topology, prepare_topology, PreparedSpec, TreeKind};
use crate::metrics::{BandwidthSeries, Cdf, RunSummary};
use crate::pool::{seed_label, RunPool, Sweep, Task};
use crate::protocols::{
    antientropy_run_on, bullet_run, bullet_run_on, bullet_run_scenario_on, gossip_run_on,
    streaming_run_on,
};
use crate::runner::{RunResult, RunSpec};
use crate::scale::Scale;

/// The result of reproducing one figure: the plotted curves plus the scalar
/// numbers the paper quotes around it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FigureResult {
    /// Identifier, e.g. "fig07".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The curves of the figure.
    pub series: Vec<BandwidthSeries>,
    /// Scalar summaries per run.
    pub summaries: Vec<(String, RunSummary)>,
    /// Free-form observations (crossover points, ratios, ...).
    pub notes: Vec<String>,
    /// Named scalar outcomes derived across runs (e.g. the overload
    /// figure's steady-member goodput per arm) that benches and CI gates
    /// read without re-deriving per-node data. Empty for most figures.
    pub scalars: Vec<(String, f64)>,
}

impl FigureResult {
    pub(crate) fn new(id: &str, title: &str) -> Self {
        FigureResult {
            id: id.to_string(),
            title: title.to_string(),
            ..FigureResult::default()
        }
    }

    pub(crate) fn add_run(&mut self, result: &RunResult) {
        self.series.push(result.useful.clone());
        self.summaries
            .push((result.label.clone(), result.summary.clone()));
    }

    /// The steady-state bandwidth of the series whose label contains
    /// `needle`, if any.
    pub fn steady_state_of(&self, needle: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label.contains(needle))
            .map(|s| s.steady_state_kbps(0.25))
    }
}

/// One unit of figure work: a single metered run, executed on a pool worker.
pub(crate) type RunTask = Task<'static, RunResult>;

/// Turns a figure plan's ordered run results into the finished figure(s).
pub(crate) type AssembleFn = Box<dyn FnOnce(Vec<RunResult>) -> Vec<FigureResult> + Send>;

/// A figure as a run grid plus its assembly step (see the module docs).
/// Most plans assemble exactly one figure; the Fig. 7 plan also derives
/// Fig. 8 from its run.
pub(crate) struct FigurePlan {
    tasks: Vec<RunTask>,
    assemble: AssembleFn,
}

impl FigurePlan {
    pub(crate) fn new(
        tasks: Vec<RunTask>,
        assemble: impl FnOnce(Vec<RunResult>) -> Vec<FigureResult> + Send + 'static,
    ) -> Self {
        FigurePlan {
            tasks,
            assemble: Box::new(assemble),
        }
    }

    /// Number of runs in this plan's grid.
    pub(crate) fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Splits the plan for suite-level flattening.
    pub(crate) fn into_parts(self) -> (Vec<RunTask>, AssembleFn) {
        (self.tasks, self.assemble)
    }

    /// Executes the grid on `pool` and assembles the figure(s).
    pub(crate) fn run(self, pool: &RunPool) -> Vec<FigureResult> {
        let results = pool.run(self.tasks);
        (self.assemble)(results)
    }
}

/// Runs a single-figure plan and unwraps its figure.
fn run_single(plan: FigurePlan, sweep: &Sweep) -> FigureResult {
    let mut figures = plan.run(sweep.pool());
    debug_assert_eq!(figures.len(), 1);
    figures.remove(0)
}

/// Splits grid results into per-configuration chunks of `seeds` runs each.
/// This is the one home of the grid-layout contract — configuration-major,
/// seed-minor — shared by every figure and scenario assembly.
pub(crate) fn chunked(results: Vec<RunResult>, seeds: usize) -> Vec<Vec<RunResult>> {
    let mut chunks = Vec::new();
    let mut iter = results.into_iter();
    loop {
        let chunk: Vec<RunResult> = iter.by_ref().take(seeds.max(1)).collect();
        if chunk.is_empty() {
            return chunks;
        }
        chunks.push(chunk);
    }
}

/// Appends one steady-state spread note per multi-seed configuration.
pub(crate) fn push_seed_spread_notes(figure: &mut FigureResult, chunks: &[Vec<RunResult>]) {
    for chunk in chunks {
        if chunk.len() < 2 {
            continue;
        }
        let rates: Vec<f64> = chunk.iter().map(|r| r.steady_state_kbps()).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        figure.notes.push(format!(
            "{}: across {} seeds, steady useful mean {mean:.0} Kbps (min {min:.0}, max {max:.0})",
            chunk[0].label,
            chunk.len(),
        ));
    }
}

/// Shared experiment parameters derived from the scale.
pub(crate) struct Params {
    pub(crate) participants: usize,
    pub(crate) duration: SimDuration,
    pub(crate) sample: SimDuration,
    pub(crate) stream_start: SimTime,
    pub(crate) seed: u64,
}

impl Params {
    pub(crate) fn new(scale: Scale, seed: u64) -> Self {
        Params {
            participants: scale.participants(),
            duration: SimDuration::from_secs(scale.duration_secs()),
            sample: SimDuration::from_secs(scale.sample_secs()),
            stream_start: SimTime::from_secs(scale.stream_start_secs()),
            seed,
        }
    }

    pub(crate) fn run_spec(&self, label: &str) -> RunSpec {
        RunSpec {
            label: label.into(),
            source: 0,
            duration: self.duration,
            sample_interval: self.sample,
            failure: None,
        }
    }

    pub(crate) fn bullet_config(&self, rate_bps: f64) -> BulletConfig {
        let config = BulletConfig {
            stream_rate_bps: rate_bps,
            stream_start: self.stream_start,
            ..BulletConfig::default()
        };
        let config = if crate::env::integrity_enabled() {
            // `BULLET_INTEGRITY=1`: every figure's Bullet runs verify
            // blocks, score peer health and quarantine misbehavers.
            config.integrity()
        } else {
            config
        };
        if crate::env::overload_enabled() {
            // `BULLET_OVERLOAD=1`: every figure's Bullet runs additionally
            // bound their inboxes and working sets, defer joins under
            // pressure and demote persistently slow receivers (the layer
            // implies the integrity profile).
            config.overload()
        } else {
            config
        }
    }

    pub(crate) fn stream_config(&self, rate_bps: f64) -> StreamConfig {
        StreamConfig {
            stream_rate_bps: rate_bps,
            stream_start: self.stream_start,
            transport: StreamTransport::Tfrc,
            ..StreamConfig::default()
        }
    }
}

const PAPER_RATE_BPS: f64 = 600_000.0;
const EPIDEMIC_RATE_BPS: f64 = 900_000.0;
const PLANETLAB_RATE_BPS: f64 = 1_500_000.0;

/// Table 1: the bandwidth ranges per link class and profile, as `(profile,
/// class, low Kbps, high Kbps)` rows.
pub fn table1_rows() -> Vec<(String, String, u32, u32)> {
    use bullet_topology::LinkClass;
    let mut rows = Vec::new();
    for profile in BandwidthProfile::ALL {
        for class in LinkClass::ALL {
            let range = profile.range(class);
            rows.push((
                profile.name().to_string(),
                class.name().to_string(),
                range.low,
                range.high,
            ));
        }
    }
    rows
}

/// Figure 6: TFRC streaming over the offline bottleneck tree versus a random
/// tree (medium bandwidth, 600 Kbps target).
pub fn fig06(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    run_single(fig06_plan(scale, &sweep), &sweep)
}

pub(crate) fn fig06_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 6);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let stream = p.stream_config(PAPER_RATE_BPS);
    let bottleneck = Arc::new(topo.tree(TreeKind::Bottleneck, 0, p.seed));
    let random = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));

    let mut tasks: Vec<RunTask> = Vec::new();
    let seeds = sweep.run_seeds(p.seed);
    for (tree, label) in [
        (bottleneck, "Bottleneck bandwidth tree"),
        (random, "Random tree"),
    ] {
        for (k, &seed) in seeds.iter().enumerate() {
            let topo = topo.clone();
            let tree = tree.clone();
            let stream = stream.clone();
            let run = p.run_spec(&seed_label(label, k));
            tasks.push(Box::new(move || {
                streaming_run_on(topo.network(), &tree, &stream, &run, seed)
            }));
        }
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "fig06",
            "Achieved bandwidth over time for TFRC streaming over the bottleneck bandwidth tree and a random tree",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for result in chunk {
                figure.add_run(result);
            }
        }
        let bottleneck_kbps = figure.steady_state_of("Bottleneck").unwrap_or(0.0);
        let random_kbps = figure.steady_state_of("Random").unwrap_or(0.0);
        figure.notes.push(format!(
            "bottleneck tree {:.0} Kbps vs random tree {:.0} Kbps (paper: ~400 vs <100)",
            bottleneck_kbps, random_kbps
        ));
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Figure 7: Bullet over a random tree — raw total, useful total, and
/// from-parent bandwidth over time, plus the §4.2 scalars (control overhead,
/// duplicate ratio, link stress).
pub fn fig07(scale: Scale) -> (FigureResult, RunResult) {
    let sweep = Sweep::from_env();
    let (tasks, seeds) = fig07_grid(scale, &sweep);
    let results = sweep.pool().run(tasks);
    fig07_assemble(results, seeds)
}

/// The Fig. 7 run grid: one Bullet-over-random-tree configuration × seeds.
fn fig07_grid(scale: Scale, sweep: &Sweep) -> (Vec<RunTask>, usize) {
    let p = Params::new(scale, 7);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let config = p.bullet_config(PAPER_RATE_BPS);
    let seeds = sweep.run_seeds(p.seed);
    let tasks: Vec<RunTask> = seeds
        .iter()
        .enumerate()
        .map(|(k, &seed)| {
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label("Bullet (random tree)", k));
            Box::new(move || bullet_run_on(topo.network(), &tree, &config, &run, seed)) as RunTask
        })
        .collect();
    (tasks, seeds.len())
}

fn fig07_assemble(results: Vec<RunResult>, seeds: usize) -> (FigureResult, RunResult) {
    let mut chunks = chunked(results, seeds);
    let runs = chunks.remove(0);
    let mut figure = FigureResult::new(
        "fig07",
        "Achieved bandwidth over time for Bullet over a random tree",
    );
    for result in &runs {
        figure.series.push(result.raw.clone());
        figure.series.push(result.useful.clone());
        figure.series.push(result.from_parent.clone());
        figure
            .summaries
            .push((result.label.clone(), result.summary.clone()));
    }
    let result = &runs[0];
    figure.notes.push(format!(
        "useful {:.0} Kbps, raw {:.0} Kbps, duplicates {:.1}% ({:.0}% of them parent relays), control {:.1} Kbps/node, link stress mean {:.2} max {}",
        result.summary.steady_useful_kbps,
        result.summary.steady_raw_kbps,
        result.summary.duplicate_fraction * 100.0,
        result.summary.parent_relay_duplicate_share * 100.0,
        result.summary.control_overhead_kbps,
        result.summary.link_stress_mean,
        result.summary.link_stress_max,
    ));
    push_seed_spread_notes(&mut figure, std::slice::from_ref(&runs));
    let mut runs = runs;
    (figure, runs.remove(0))
}

/// The suite plan covering Figs. 7 and 8 with a single grid (Fig. 8 is a
/// CDF over the Fig. 7 run).
pub(crate) fn fig07and08_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let (tasks, seeds) = fig07_grid(scale, sweep);
    FigurePlan::new(tasks, move |results| {
        let (fig7, run) = fig07_assemble(results, seeds);
        let (fig8, _) = fig08_from(&run);
        vec![fig7, fig8]
    })
}

/// Figure 8: CDF of instantaneous per-node bandwidth near the end of the
/// Fig. 7 run.
pub fn fig08(scale: Scale) -> (FigureResult, Cdf) {
    let (_, run) = fig07(scale);
    fig08_from(&run)
}

/// Figure 8 computed from an existing Fig. 7 run (avoids re-running it).
pub fn fig08_from(run: &RunResult) -> (FigureResult, Cdf) {
    let at = run.times.last().copied().unwrap_or(0.0) * 0.9;
    let cdf = run.instantaneous_cdf(at);
    let mut figure = FigureResult::new(
        "fig08",
        "CDF of instantaneous achieved bandwidth across nodes late in the Bullet run",
    );
    figure.notes.push(format!(
        "median {:.0} Kbps, 10th percentile {:.0} Kbps, 90th percentile {:.0} Kbps at t={:.0}s",
        cdf.quantile(0.5),
        cdf.quantile(0.1),
        cdf.quantile(0.9),
        at
    ));
    (figure, cdf)
}

/// Figure 9: Bullet versus the bottleneck tree across the low, medium and
/// high bandwidth profiles of Table 1.
pub fn fig09(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    run_single(fig09_plan(scale, &sweep), &sweep)
}

pub(crate) fn fig09_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    bandwidth_sweep_plan(scale, sweep, LossProfile::None, "fig09",
        "Achieved bandwidth for Bullet and the bottleneck tree across low/medium/high bandwidth topologies")
}

/// Figure 12: the same sweep over lossy topologies (§4.5).
pub fn fig12(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    run_single(fig12_plan(scale, &sweep), &sweep)
}

pub(crate) fn fig12_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    bandwidth_sweep_plan(
        scale,
        sweep,
        LossProfile::paper_lossy(),
        "fig12",
        "Achieved bandwidth for Bullet and the bottleneck tree over lossy network topologies",
    )
}

fn bandwidth_sweep_plan(
    scale: Scale,
    sweep: &Sweep,
    loss: LossProfile,
    id: &str,
    title: &str,
) -> FigurePlan {
    let mut tasks: Vec<RunTask> = Vec::new();
    let mut profile_names = Vec::new();
    for (profile, name) in [
        (BandwidthProfile::High, "High Bandwidth"),
        (BandwidthProfile::Medium, "Medium Bandwidth"),
        (BandwidthProfile::Low, "Low Bandwidth"),
    ] {
        let p = Params::new(scale, 9 + profile as u64);
        let topo = prepare_topology(scale, p.participants, profile, loss, p.seed);
        let random = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
        let bottleneck = Arc::new(topo.tree(TreeKind::Bottleneck, 0, p.seed));
        let bullet_cfg = p.bullet_config(PAPER_RATE_BPS);
        let stream_cfg = p.stream_config(PAPER_RATE_BPS);
        let seeds = sweep.run_seeds(p.seed);
        for (k, &seed) in seeds.iter().enumerate() {
            let topo = topo.clone();
            let tree = random.clone();
            let config = bullet_cfg.clone();
            let run = p.run_spec(&seed_label(&format!("Bullet - {name}"), k));
            tasks.push(Box::new(move || {
                bullet_run_on(topo.network(), &tree, &config, &run, seed)
            }));
        }
        for (k, &seed) in seeds.iter().enumerate() {
            let topo = topo.clone();
            let tree = bottleneck.clone();
            let config = stream_cfg.clone();
            let run = p.run_spec(&seed_label(&format!("Bottleneck tree - {name}"), k));
            tasks.push(Box::new(move || {
                streaming_run_on(topo.network(), &tree, &config, &run, seed)
            }));
        }
        profile_names.push(name);
    }
    let seeds = sweep.seeds();
    let (id, title) = (id.to_string(), title.to_string());
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(&id, &title);
        let chunks = chunked(results, seeds);
        for (i, name) in profile_names.iter().enumerate() {
            let bullet_runs = &chunks[2 * i];
            let tree_runs = &chunks[2 * i + 1];
            for run in bullet_runs {
                figure.add_run(run);
            }
            for run in tree_runs {
                figure.add_run(run);
            }
            let bullet = &bullet_runs[0];
            let tree = &tree_runs[0];
            let ratio = bullet.steady_state_kbps() / tree.steady_state_kbps().max(1.0);
            figure.notes.push(format!(
                "{name}: Bullet {:.0} Kbps vs bottleneck tree {:.0} Kbps (x{:.2})",
                bullet.steady_state_kbps(),
                tree.steady_state_kbps(),
                ratio
            ));
        }
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Figure 10: the non-disjoint transmission strategy (every parent tries to
/// send everything to every child).
pub fn fig10(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    run_single(fig10_plan(scale, &sweep), &sweep)
}

pub(crate) fn fig10_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 10);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let mut config = p.bullet_config(PAPER_RATE_BPS);
    config.disjoint_send = false;

    let seeds = sweep.run_seeds(p.seed);
    let tasks: Vec<RunTask> = seeds
        .iter()
        .enumerate()
        .map(|(k, &seed)| {
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label("Bullet (non-disjoint strategy)", k));
            Box::new(move || bullet_run_on(topo.network(), &tree, &config, &run, seed)) as RunTask
        })
        .collect();

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let runs = chunked(results, seeds).remove(0);
        let mut figure = FigureResult::new(
            "fig10",
            "Achieved bandwidth over time using non-disjoint data transmission",
        );
        for result in &runs {
            figure.series.push(result.raw.clone());
            figure.series.push(result.useful.clone());
            figure.series.push(result.from_parent.clone());
            figure
                .summaries
                .push((result.label.clone(), result.summary.clone()));
        }
        figure.notes.push(format!(
            "useful {:.0} Kbps with the disjoint strategy disabled (paper: ~25% below Fig. 7)",
            runs[0].summary.steady_useful_kbps
        ));
        push_seed_spread_notes(&mut figure, std::slice::from_ref(&runs));
        vec![figure]
    })
}

/// Figure 11: Bullet versus push gossip and streaming with anti-entropy
/// recovery (900 Kbps target, loss-free topology, full membership for the
/// epidemics).
pub fn fig11(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    run_single(fig11_plan(scale, &sweep), &sweep)
}

pub(crate) fn fig11_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let mut p = Params::new(scale, 11);
    p.participants = scale.epidemic_participants();
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let random = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let bottleneck = Arc::new(topo.tree(TreeKind::Bottleneck, 0, p.seed));
    let bullet_cfg = p.bullet_config(EPIDEMIC_RATE_BPS);
    let gossip_cfg = GossipConfig {
        stream_rate_bps: EPIDEMIC_RATE_BPS,
        stream_start: p.stream_start,
        ..GossipConfig::default()
    };
    let ae_cfg = AntiEntropyConfig {
        stream_rate_bps: EPIDEMIC_RATE_BPS,
        stream_start: p.stream_start,
        ..AntiEntropyConfig::default()
    };

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let tree = random.clone();
        let config = bullet_cfg.clone();
        let run = p.run_spec(&seed_label("Bullet", k));
        tasks.push(Box::new(move || {
            bullet_run_on(topo.network(), &tree, &config, &run, seed)
        }));
    }
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let config = gossip_cfg.clone();
        let run = p.run_spec(&seed_label("Push gossiping", k));
        tasks.push(Box::new(move || {
            gossip_run_on(topo.network(), 0, &config, &run, seed)
        }));
    }
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let tree = bottleneck.clone();
        let config = ae_cfg.clone();
        let run = p.run_spec(&seed_label("Streaming w/AE", k));
        tasks.push(Box::new(move || {
            antientropy_run_on(topo.network(), &tree, &config, &run, seed)
        }));
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "fig11",
            "Achieved bandwidth over time for Bullet and epidemic approaches",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for result in chunk {
                figure.series.push(result.raw.clone());
                figure.add_run(result);
            }
        }
        let (bullet, gossip, ae) = (&chunks[0][0], &chunks[1][0], &chunks[2][0]);
        figure.notes.push(format!(
            "useful: Bullet {:.0} Kbps, push gossip {:.0} Kbps, streaming w/AE {:.0} Kbps (paper: Bullet ~60% above both)",
            bullet.steady_state_kbps(),
            gossip.steady_state_kbps(),
            ae.steady_state_kbps()
        ));
        figure.notes.push(format!(
            "duplicate fractions: Bullet {:.1}%, gossip {:.1}%, AE {:.1}%",
            bullet.summary.duplicate_fraction * 100.0,
            gossip.summary.duplicate_fraction * 100.0,
            ae.summary.duplicate_fraction * 100.0
        ));
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Figures 13 and 14: bandwidth over time when one of the root's children
/// (the one with the most descendants) fails mid-run, without (Fig. 13) and
/// with (Fig. 14) RanSub epoch-timeout failure detection.
pub fn failure_figure(scale: Scale, ransub_failure_detection: bool) -> FigureResult {
    let sweep = Sweep::from_env();
    run_single(
        failure_figure_plan(scale, &sweep, ransub_failure_detection),
        &sweep,
    )
}

pub(crate) fn failure_figure_plan(
    scale: Scale,
    sweep: &Sweep,
    ransub_failure_detection: bool,
) -> FigurePlan {
    let p = Params::new(scale, 13);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    // Fail the root child with the largest subtree, as in the paper's
    // worst-case single failure.
    let victim = tree
        .children(0)
        .iter()
        .copied()
        .max_by_key(|&c| tree.subtree_size(c))
        .expect("root has children");
    let descendants = tree.subtree_size(victim) - 1;
    let failure_time = SimTime::from_secs((p.duration.as_secs_f64() * 0.6) as u64);

    let mut config = p.bullet_config(PAPER_RATE_BPS);
    config.ransub_failure_detection = ransub_failure_detection;
    let label = if ransub_failure_detection {
        "Bullet, worst-case failure, RanSub recovery enabled"
    } else {
        "Bullet, worst-case failure, no RanSub recovery"
    };
    // The failure is a one-event scenario script. The driver pre-schedules
    // crashes through the simulator's event queue exactly like the legacy
    // `RunSpec::failure` injection, so the figure's numbers are unchanged
    // (asserted by `fig13_through_the_scenario_engine_matches_the_legacy_path`
    // in tests/end_to_end.rs).
    let script = Arc::new(ScenarioScript::single_crash(failure_time, victim));

    let seeds = sweep.run_seeds(p.seed);
    let tasks: Vec<RunTask> = seeds
        .iter()
        .enumerate()
        .map(|(k, &seed)| {
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let script = script.clone();
            let run = p.run_spec(&seed_label(label, k));
            Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }) as RunTask
        })
        .collect();

    let seeds = seeds.len();
    let stream_start_secs = p.stream_start.as_secs_f64();
    FigurePlan::new(tasks, move |results| {
        let runs = chunked(results, seeds).remove(0);
        let (id, title) = if ransub_failure_detection {
            (
                "fig14",
                "Bandwidth over time with a worst-case node failure and RanSub recovery enabled",
            )
        } else {
            (
                "fig13",
                "Bandwidth over time with a worst-case node failure and no RanSub recovery",
            )
        };
        let mut figure = FigureResult::new(id, title);
        for result in &runs {
            figure.series.push(result.raw.clone());
            figure.series.push(result.useful.clone());
            figure.series.push(result.from_parent.clone());
            figure
                .summaries
                .push((result.label.clone(), result.summary.clone()));
        }

        // Quantify the drop: average useful bandwidth before vs after failure.
        let result = &runs[0];
        let before: Vec<f64> = result
            .times
            .iter()
            .zip(&result.useful.kbps)
            .filter(|(t, _)| **t > stream_start_secs + 20.0 && **t < failure_time.as_secs_f64())
            .map(|(_, k)| *k)
            .collect();
        let after: Vec<f64> = result
            .times
            .iter()
            .zip(&result.useful.kbps)
            .filter(|(t, _)| **t > failure_time.as_secs_f64() + 10.0)
            .map(|(_, k)| *k)
            .collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        figure.notes.push(format!(
            "failed node {victim} ({descendants} descendants) at t={:.0}s; useful bandwidth {:.0} Kbps before vs {:.0} Kbps after",
            failure_time.as_secs_f64(),
            mean(&before),
            mean(&after)
        ));
        push_seed_spread_notes(&mut figure, std::slice::from_ref(&runs));
        vec![figure]
    })
}

/// Figure 13 (no RanSub failure detection).
pub fn fig13(scale: Scale) -> FigureResult {
    failure_figure(scale, false)
}

/// Figure 14 (RanSub failure detection enabled).
pub fn fig14(scale: Scale) -> FigureResult {
    failure_figure(scale, true)
}

/// Figure 15: the constrained-source experiment standing in for the
/// PlanetLab deployment — Bullet over a random tree versus streaming over
/// hand-crafted good and worst trees at a 1.5 Mbps target.
pub fn fig15(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    run_single(fig15_plan(scale, &sweep), &sweep)
}

pub(crate) fn fig15_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 15);
    let (regional, remote) = match scale {
        Scale::Small => (5, 15),
        Scale::Default => (10, 36),
        Scale::Paper => (10, 36),
    };
    let constrained = constrained_source_topology(regional, remote, true, p.seed);
    let source = constrained.source;
    let participants = constrained.spec.participants();
    let access_bps = constrained.access_bps.clone();
    let net = PreparedSpec::new(constrained.spec);

    let bullet_tree = Arc::new({
        let mut rng = bullet_netsim::SimRng::new(p.seed ^ 0x7EE);
        random_tree(participants, source, 10, &mut rng)
    });
    let good = Arc::new(good_tree(source, &access_bps, 3));
    let worst = Arc::new(worst_tree(source, &access_bps, 3));

    // Follow-up run: a well-provisioned source; both Bullet and a good tree
    // should reach (close to) the full 1.5 Mbps rate.
    let open = constrained_source_topology(regional, remote, false, p.seed);
    let open_source = open.source;
    let open_participants = open.spec.participants();
    let open_access = open.access_bps.clone();
    let open_net = PreparedSpec::new(open.spec);
    let open_tree = Arc::new({
        let mut rng = bullet_netsim::SimRng::new(p.seed ^ 0x7EE);
        random_tree(open_participants, open_source, 10, &mut rng)
    });
    let open_good = Arc::new(good_tree(open_source, &open_access, 3));

    let bullet_cfg = p.bullet_config(PLANETLAB_RATE_BPS);
    let stream_cfg = p.stream_config(PLANETLAB_RATE_BPS);
    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (k, &seed) in seeds.iter().enumerate() {
        let net = net.clone();
        let tree = bullet_tree.clone();
        let config = bullet_cfg.clone();
        let run = p.run_spec(&seed_label("Bullet", k));
        tasks.push(Box::new(move || {
            bullet_run_on(net.network(), &tree, &config, &run, seed)
        }));
    }
    for (tree, label) in [(good, "Good Tree"), (worst, "Worst Tree")] {
        for (k, &seed) in seeds.iter().enumerate() {
            let net = net.clone();
            let tree = tree.clone();
            let config = stream_cfg.clone();
            let run = p.run_spec(&seed_label(label, k));
            tasks.push(Box::new(move || {
                streaming_run_on(net.network(), &tree, &config, &run, seed)
            }));
        }
    }
    for (k, &seed) in seeds.iter().enumerate() {
        let net = open_net.clone();
        let tree = open_tree.clone();
        let config = bullet_cfg.clone();
        let run = p.run_spec(&seed_label("Bullet (unconstrained source)", k));
        tasks.push(Box::new(move || {
            bullet_run_on(net.network(), &tree, &config, &run, seed)
        }));
    }
    for (k, &seed) in seeds.iter().enumerate() {
        let net = open_net.clone();
        let tree = open_good.clone();
        let config = stream_cfg.clone();
        let run = p.run_spec(&seed_label("Good Tree (unconstrained source)", k));
        tasks.push(Box::new(move || {
            streaming_run_on(net.network(), &tree, &config, &run, seed)
        }));
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "fig15",
            "Achieved bandwidth over time for Bullet and TFRC streaming over hand-crafted trees with a constrained source",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks[0..3] {
            for result in chunk {
                figure.add_run(result);
            }
        }
        figure.notes.push(format!(
            "constrained source: Bullet {:.0} Kbps vs good tree {:.0} Kbps vs worst tree {:.0} Kbps (paper: Bullet well above both, good tree ~300 Kbps)",
            chunks[0][0].steady_state_kbps(),
            chunks[1][0].steady_state_kbps(),
            chunks[2][0].steady_state_kbps()
        ));
        figure.notes.push(format!(
            "unconstrained source: Bullet {:.0} Kbps vs good tree {:.0} Kbps (paper: both ~1.5 Mbps)",
            chunks[3][0].steady_state_kbps(),
            chunks[4][0].steady_state_kbps()
        ));
        for chunk in &chunks[3..5] {
            for result in chunk {
                figure.add_run(result);
            }
        }
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Ablations of Bullet's design choices (not a paper figure): disjoint send
/// on/off, resemblance-guided peering vs random peering.
pub fn ablations(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    run_single(ablations_plan(scale, &sweep), &sweep)
}

pub(crate) fn ablations_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 20);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));

    let full = p.bullet_config(PAPER_RATE_BPS);
    let mut no_disjoint = full.clone();
    no_disjoint.disjoint_send = false;
    let mut random_peers = full.clone();
    random_peers.resemblance_peering = false;
    let variants: Vec<(&'static str, BulletConfig)> = vec![
        ("Bullet (full)", full),
        ("No disjoint send", no_disjoint),
        ("Random peer choice", random_peers),
    ];

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (label, config) in &variants {
        for (k, &seed) in seeds.iter().enumerate() {
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label(label, k));
            tasks.push(Box::new(move || {
                bullet_run_on(topo.network(), &tree, &config, &run, seed)
            }));
        }
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "ablations",
            "Bullet design ablations: disjoint send and resemblance-guided peering",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            let result = &chunk[0];
            figure.notes.push(format!(
                "{}: useful {:.0} Kbps, duplicates {:.1}%",
                result.label,
                result.summary.steady_useful_kbps,
                result.summary.duplicate_fraction * 100.0
            ));
            for result in chunk {
                figure.add_run(result);
            }
        }
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Convenience used by tests and the quickstart example: a single small
/// Bullet run over a generated topology.
pub fn quick_bullet_demo(participants: usize, seconds: u64, seed: u64) -> RunResult {
    let topo = crate::env::build_topology(
        Scale::Small,
        participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        seed,
    );
    let tree = crate::env::build_tree(&topo, TreeKind::Random { max_children: 6 }, 0, seed);
    let config = BulletConfig {
        stream_start: SimTime::from_secs(5),
        ..BulletConfig::default()
    };
    bullet_run(
        &topo.spec,
        &tree,
        &config,
        &RunSpec {
            label: "Bullet demo".into(),
            source: 0,
            duration: SimDuration::from_secs(seconds),
            sample_interval: SimDuration::from_secs(2),
            failure: None,
        },
        seed,
    )
}

/// Exposes the underlying network spec of a built topology (used by
/// examples that want to drive the simulator directly).
pub fn spec_of(topo: &BuiltTopology) -> &NetworkSpec {
    &topo.spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twelve_rows_matching_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().any(|(p, c, lo, hi)| p == "Low bandwidth"
            && c == "Client-Stub"
            && *lo == 300
            && *hi == 600));
        assert!(rows.iter().any(|(p, c, lo, hi)| p == "High bandwidth"
            && c == "Transit-Transit"
            && *lo == 10_000
            && *hi == 20_000));
    }

    #[test]
    fn quick_demo_delivers_data() {
        let result = quick_bullet_demo(15, 40, 1);
        assert!(result.steady_state_kbps() > 150.0);
        assert!(result.summary.median_delivery_fraction > 0.5);
    }

    #[test]
    fn figure_result_lookup_by_label() {
        let mut figure = FigureResult::new("x", "t");
        let mut series = BandwidthSeries::new("Bullet - Medium");
        series.push(1.0, 100.0);
        figure.series.push(series);
        assert!(figure.steady_state_of("Medium").is_some());
        assert!(figure.steady_state_of("High").is_none());
    }

    #[test]
    fn chunking_is_configuration_major() {
        let run = |label: &str| RunResult {
            label: label.into(),
            times: Vec::new(),
            useful: BandwidthSeries::new(label),
            raw: BandwidthSeries::new(label),
            from_parent: BandwidthSeries::new(label),
            per_node_useful_bytes: Vec::new(),
            per_node_fresh_bytes: Vec::new(),
            source: 0,
            summary: RunSummary::default(),
            routing: bullet_netsim::RoutingStats {
                mode: bullet_netsim::RoutingMode::EagerPerSource,
                route_queries: 0,
                batched_queries: 0,
                trees_built: 0,
                lazy_searches: 0,
                routers_settled: 0,
                landmarks: 0,
            },
            telemetry: None,
        };
        let results = vec![run("a0"), run("a1"), run("b0"), run("b1")];
        let chunks = chunked(results, 2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0][1].label, "a1");
        assert_eq!(chunks[1][0].label, "b0");
    }
}
