//! Per-figure experiment definitions.
//!
//! One function per table/figure of the paper's evaluation (§4). Each builds
//! the topology and trees the paper describes, runs the systems under
//! comparison, and returns a [`FigureResult`] containing the same curves the
//! figure plots plus the scalar numbers quoted in the surrounding text. The
//! bench harnesses in `crates/bench` print these results; EXPERIMENTS.md
//! records paper-versus-measured for each.

use bullet_baselines::{AntiEntropyConfig, GossipConfig, StreamConfig, StreamTransport};
use bullet_core::BulletConfig;
use bullet_dynamics::ScenarioScript;
use bullet_netsim::{NetworkSpec, SimDuration, SimTime};
use bullet_overlay::{good_tree, random_tree, worst_tree};
use bullet_topology::{BandwidthProfile, BuiltTopology, LossProfile};

use crate::env::{build_topology, build_tree, constrained_source_topology, TreeKind};
use crate::metrics::{BandwidthSeries, Cdf, RunSummary};
use crate::protocols::{
    antientropy_run, bullet_run, bullet_run_scenario, gossip_run, streaming_run,
};
use crate::runner::{RunResult, RunSpec};
use crate::scale::Scale;

/// The result of reproducing one figure: the plotted curves plus the scalar
/// numbers the paper quotes around it.
#[derive(Clone, Debug, Default)]
pub struct FigureResult {
    /// Identifier, e.g. "fig07".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The curves of the figure.
    pub series: Vec<BandwidthSeries>,
    /// Scalar summaries per run.
    pub summaries: Vec<(String, RunSummary)>,
    /// Free-form observations (crossover points, ratios, ...).
    pub notes: Vec<String>,
}

impl FigureResult {
    pub(crate) fn new(id: &str, title: &str) -> Self {
        FigureResult {
            id: id.to_string(),
            title: title.to_string(),
            ..FigureResult::default()
        }
    }

    pub(crate) fn add_run(&mut self, result: &RunResult) {
        self.series.push(result.useful.clone());
        self.summaries
            .push((result.label.clone(), result.summary.clone()));
    }

    /// The steady-state bandwidth of the series whose label contains
    /// `needle`, if any.
    pub fn steady_state_of(&self, needle: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label.contains(needle))
            .map(|s| s.steady_state_kbps(0.25))
    }
}

/// Shared experiment parameters derived from the scale.
pub(crate) struct Params {
    pub(crate) participants: usize,
    pub(crate) duration: SimDuration,
    pub(crate) sample: SimDuration,
    pub(crate) stream_start: SimTime,
    pub(crate) seed: u64,
}

impl Params {
    pub(crate) fn new(scale: Scale, seed: u64) -> Self {
        Params {
            participants: scale.participants(),
            duration: SimDuration::from_secs(scale.duration_secs()),
            sample: SimDuration::from_secs(scale.sample_secs()),
            stream_start: SimTime::from_secs(scale.stream_start_secs()),
            seed,
        }
    }

    pub(crate) fn run_spec(&self, label: &str) -> RunSpec {
        RunSpec {
            label: label.into(),
            source: 0,
            duration: self.duration,
            sample_interval: self.sample,
            failure: None,
        }
    }

    pub(crate) fn bullet_config(&self, rate_bps: f64) -> BulletConfig {
        BulletConfig {
            stream_rate_bps: rate_bps,
            stream_start: self.stream_start,
            ..BulletConfig::default()
        }
    }

    pub(crate) fn stream_config(&self, rate_bps: f64) -> StreamConfig {
        StreamConfig {
            stream_rate_bps: rate_bps,
            stream_start: self.stream_start,
            transport: StreamTransport::Tfrc,
            ..StreamConfig::default()
        }
    }
}

const PAPER_RATE_BPS: f64 = 600_000.0;
const EPIDEMIC_RATE_BPS: f64 = 900_000.0;
const PLANETLAB_RATE_BPS: f64 = 1_500_000.0;

/// Table 1: the bandwidth ranges per link class and profile, as `(profile,
/// class, low Kbps, high Kbps)` rows.
pub fn table1_rows() -> Vec<(String, String, u32, u32)> {
    use bullet_topology::LinkClass;
    let mut rows = Vec::new();
    for profile in BandwidthProfile::ALL {
        for class in LinkClass::ALL {
            let range = profile.range(class);
            rows.push((
                profile.name().to_string(),
                class.name().to_string(),
                range.low,
                range.high,
            ));
        }
    }
    rows
}

/// Figure 6: TFRC streaming over the offline bottleneck tree versus a random
/// tree (medium bandwidth, 600 Kbps target).
pub fn fig06(scale: Scale) -> FigureResult {
    let p = Params::new(scale, 6);
    let topo = build_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let mut figure = FigureResult::new(
        "fig06",
        "Achieved bandwidth over time for TFRC streaming over the bottleneck bandwidth tree and a random tree",
    );
    let stream = p.stream_config(PAPER_RATE_BPS);

    let bottleneck = build_tree(&topo, TreeKind::Bottleneck, 0, p.seed);
    let result = streaming_run(
        &topo.spec,
        &bottleneck,
        &stream,
        &p.run_spec("Bottleneck bandwidth tree"),
        p.seed,
    );
    figure.add_run(&result);

    let random = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, p.seed);
    let result = streaming_run(
        &topo.spec,
        &random,
        &stream,
        &p.run_spec("Random tree"),
        p.seed,
    );
    figure.add_run(&result);

    let bottleneck_kbps = figure.steady_state_of("Bottleneck").unwrap_or(0.0);
    let random_kbps = figure.steady_state_of("Random").unwrap_or(0.0);
    figure.notes.push(format!(
        "bottleneck tree {:.0} Kbps vs random tree {:.0} Kbps (paper: ~400 vs <100)",
        bottleneck_kbps, random_kbps
    ));
    figure
}

/// Figure 7: Bullet over a random tree — raw total, useful total, and
/// from-parent bandwidth over time, plus the §4.2 scalars (control overhead,
/// duplicate ratio, link stress).
pub fn fig07(scale: Scale) -> (FigureResult, RunResult) {
    let p = Params::new(scale, 7);
    let topo = build_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, p.seed);
    let config = p.bullet_config(PAPER_RATE_BPS);
    let result = bullet_run(
        &topo.spec,
        &tree,
        &config,
        &p.run_spec("Bullet (random tree)"),
        p.seed,
    );

    let mut figure = FigureResult::new(
        "fig07",
        "Achieved bandwidth over time for Bullet over a random tree",
    );
    figure.series.push(result.raw.clone());
    figure.series.push(result.useful.clone());
    figure.series.push(result.from_parent.clone());
    figure
        .summaries
        .push((result.label.clone(), result.summary.clone()));
    figure.notes.push(format!(
        "useful {:.0} Kbps, raw {:.0} Kbps, duplicates {:.1}% ({:.0}% of them parent relays), control {:.1} Kbps/node, link stress mean {:.2} max {}",
        result.summary.steady_useful_kbps,
        result.summary.steady_raw_kbps,
        result.summary.duplicate_fraction * 100.0,
        result.summary.parent_relay_duplicate_share * 100.0,
        result.summary.control_overhead_kbps,
        result.summary.link_stress_mean,
        result.summary.link_stress_max,
    ));
    (figure, result)
}

/// Figure 8: CDF of instantaneous per-node bandwidth near the end of the
/// Fig. 7 run.
pub fn fig08(scale: Scale) -> (FigureResult, Cdf) {
    let (_, run) = fig07(scale);
    fig08_from(&run)
}

/// Figure 8 computed from an existing Fig. 7 run (avoids re-running it).
pub fn fig08_from(run: &RunResult) -> (FigureResult, Cdf) {
    let at = run.times.last().copied().unwrap_or(0.0) * 0.9;
    let cdf = run.instantaneous_cdf(at);
    let mut figure = FigureResult::new(
        "fig08",
        "CDF of instantaneous achieved bandwidth across nodes late in the Bullet run",
    );
    figure.notes.push(format!(
        "median {:.0} Kbps, 10th percentile {:.0} Kbps, 90th percentile {:.0} Kbps at t={:.0}s",
        cdf.quantile(0.5),
        cdf.quantile(0.1),
        cdf.quantile(0.9),
        at
    ));
    (figure, cdf)
}

/// Figure 9: Bullet versus the bottleneck tree across the low, medium and
/// high bandwidth profiles of Table 1.
pub fn fig09(scale: Scale) -> FigureResult {
    bandwidth_sweep(scale, LossProfile::None, "fig09",
        "Achieved bandwidth for Bullet and the bottleneck tree across low/medium/high bandwidth topologies")
}

/// Figure 12: the same sweep over lossy topologies (§4.5).
pub fn fig12(scale: Scale) -> FigureResult {
    bandwidth_sweep(
        scale,
        LossProfile::paper_lossy(),
        "fig12",
        "Achieved bandwidth for Bullet and the bottleneck tree over lossy network topologies",
    )
}

fn bandwidth_sweep(scale: Scale, loss: LossProfile, id: &str, title: &str) -> FigureResult {
    let mut figure = FigureResult::new(id, title);
    for (profile, name) in [
        (BandwidthProfile::High, "High Bandwidth"),
        (BandwidthProfile::Medium, "Medium Bandwidth"),
        (BandwidthProfile::Low, "Low Bandwidth"),
    ] {
        let p = Params::new(scale, 9 + profile as u64);
        let topo = build_topology(scale, p.participants, profile, loss, p.seed);
        let random = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, p.seed);
        let bullet = bullet_run(
            &topo.spec,
            &random,
            &p.bullet_config(PAPER_RATE_BPS),
            &p.run_spec(&format!("Bullet - {name}")),
            p.seed,
        );
        figure.add_run(&bullet);
        let bottleneck = build_tree(&topo, TreeKind::Bottleneck, 0, p.seed);
        let tree = streaming_run(
            &topo.spec,
            &bottleneck,
            &p.stream_config(PAPER_RATE_BPS),
            &p.run_spec(&format!("Bottleneck tree - {name}")),
            p.seed,
        );
        figure.add_run(&tree);
        let ratio = bullet.steady_state_kbps() / tree.steady_state_kbps().max(1.0);
        figure.notes.push(format!(
            "{name}: Bullet {:.0} Kbps vs bottleneck tree {:.0} Kbps (x{:.2})",
            bullet.steady_state_kbps(),
            tree.steady_state_kbps(),
            ratio
        ));
    }
    figure
}

/// Figure 10: the non-disjoint transmission strategy (every parent tries to
/// send everything to every child).
pub fn fig10(scale: Scale) -> FigureResult {
    let p = Params::new(scale, 10);
    let topo = build_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, p.seed);
    let mut config = p.bullet_config(PAPER_RATE_BPS);
    config.disjoint_send = false;
    let result = bullet_run(
        &topo.spec,
        &tree,
        &config,
        &p.run_spec("Bullet (non-disjoint strategy)"),
        p.seed,
    );
    let mut figure = FigureResult::new(
        "fig10",
        "Achieved bandwidth over time using non-disjoint data transmission",
    );
    figure.series.push(result.raw.clone());
    figure.series.push(result.useful.clone());
    figure.series.push(result.from_parent.clone());
    figure
        .summaries
        .push((result.label.clone(), result.summary.clone()));
    figure.notes.push(format!(
        "useful {:.0} Kbps with the disjoint strategy disabled (paper: ~25% below Fig. 7)",
        result.summary.steady_useful_kbps
    ));
    figure
}

/// Figure 11: Bullet versus push gossip and streaming with anti-entropy
/// recovery (900 Kbps target, loss-free topology, full membership for the
/// epidemics).
pub fn fig11(scale: Scale) -> FigureResult {
    let mut p = Params::new(scale, 11);
    p.participants = scale.epidemic_participants();
    let topo = build_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let mut figure = FigureResult::new(
        "fig11",
        "Achieved bandwidth over time for Bullet and epidemic approaches",
    );

    let random = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, p.seed);
    let bullet = bullet_run(
        &topo.spec,
        &random,
        &p.bullet_config(EPIDEMIC_RATE_BPS),
        &p.run_spec("Bullet"),
        p.seed,
    );
    figure.series.push(bullet.raw.clone());
    figure.add_run(&bullet);

    let gossip_cfg = GossipConfig {
        stream_rate_bps: EPIDEMIC_RATE_BPS,
        stream_start: p.stream_start,
        ..GossipConfig::default()
    };
    let gossip = gossip_run(
        &topo.spec,
        0,
        &gossip_cfg,
        &p.run_spec("Push gossiping"),
        p.seed,
    );
    figure.series.push(gossip.raw.clone());
    figure.add_run(&gossip);

    let bottleneck = build_tree(&topo, TreeKind::Bottleneck, 0, p.seed);
    let ae_cfg = AntiEntropyConfig {
        stream_rate_bps: EPIDEMIC_RATE_BPS,
        stream_start: p.stream_start,
        ..AntiEntropyConfig::default()
    };
    let ae = antientropy_run(
        &topo.spec,
        &bottleneck,
        &ae_cfg,
        &p.run_spec("Streaming w/AE"),
        p.seed,
    );
    figure.series.push(ae.raw.clone());
    figure.add_run(&ae);

    figure.notes.push(format!(
        "useful: Bullet {:.0} Kbps, push gossip {:.0} Kbps, streaming w/AE {:.0} Kbps (paper: Bullet ~60% above both)",
        bullet.steady_state_kbps(),
        gossip.steady_state_kbps(),
        ae.steady_state_kbps()
    ));
    figure.notes.push(format!(
        "duplicate fractions: Bullet {:.1}%, gossip {:.1}%, AE {:.1}%",
        bullet.summary.duplicate_fraction * 100.0,
        gossip.summary.duplicate_fraction * 100.0,
        ae.summary.duplicate_fraction * 100.0
    ));
    figure
}

/// Figures 13 and 14: bandwidth over time when one of the root's children
/// (the one with the most descendants) fails mid-run, without (Fig. 13) and
/// with (Fig. 14) RanSub epoch-timeout failure detection.
pub fn failure_figure(scale: Scale, ransub_failure_detection: bool) -> FigureResult {
    let p = Params::new(scale, 13);
    let topo = build_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, p.seed);
    // Fail the root child with the largest subtree, as in the paper's
    // worst-case single failure.
    let victim = tree
        .children(0)
        .iter()
        .copied()
        .max_by_key(|&c| tree.subtree_size(c))
        .expect("root has children");
    let failure_time = SimTime::from_secs((p.duration.as_secs_f64() * 0.6) as u64);

    let mut config = p.bullet_config(PAPER_RATE_BPS);
    config.ransub_failure_detection = ransub_failure_detection;
    let run = p.run_spec(if ransub_failure_detection {
        "Bullet, worst-case failure, RanSub recovery enabled"
    } else {
        "Bullet, worst-case failure, no RanSub recovery"
    });
    // The failure is a one-event scenario script. The driver pre-schedules
    // crashes through the simulator's event queue exactly like the legacy
    // `RunSpec::failure` injection, so the figure's numbers are unchanged
    // (asserted by `fig13_through_the_scenario_engine_matches_the_legacy_path`
    // in tests/end_to_end.rs).
    let script = ScenarioScript::single_crash(failure_time, victim);
    let result = bullet_run_scenario(&topo.spec, &tree, &config, &run, &script, p.seed);

    let (id, title) = if ransub_failure_detection {
        (
            "fig14",
            "Bandwidth over time with a worst-case node failure and RanSub recovery enabled",
        )
    } else {
        (
            "fig13",
            "Bandwidth over time with a worst-case node failure and no RanSub recovery",
        )
    };
    let mut figure = FigureResult::new(id, title);
    figure.series.push(result.raw.clone());
    figure.series.push(result.useful.clone());
    figure.series.push(result.from_parent.clone());
    figure
        .summaries
        .push((result.label.clone(), result.summary.clone()));

    // Quantify the drop: average useful bandwidth before vs after failure.
    let before: Vec<f64> = result
        .times
        .iter()
        .zip(&result.useful.kbps)
        .filter(|(t, _)| {
            **t > p.stream_start.as_secs_f64() + 20.0 && **t < failure_time.as_secs_f64()
        })
        .map(|(_, k)| *k)
        .collect();
    let after: Vec<f64> = result
        .times
        .iter()
        .zip(&result.useful.kbps)
        .filter(|(t, _)| **t > failure_time.as_secs_f64() + 10.0)
        .map(|(_, k)| *k)
        .collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    figure.notes.push(format!(
        "failed node {victim} ({} descendants) at t={:.0}s; useful bandwidth {:.0} Kbps before vs {:.0} Kbps after",
        tree.subtree_size(victim) - 1,
        failure_time.as_secs_f64(),
        mean(&before),
        mean(&after)
    ));
    figure
}

/// Figure 13 (no RanSub failure detection).
pub fn fig13(scale: Scale) -> FigureResult {
    failure_figure(scale, false)
}

/// Figure 14 (RanSub failure detection enabled).
pub fn fig14(scale: Scale) -> FigureResult {
    failure_figure(scale, true)
}

/// Figure 15: the constrained-source experiment standing in for the
/// PlanetLab deployment — Bullet over a random tree versus streaming over
/// hand-crafted good and worst trees at a 1.5 Mbps target.
pub fn fig15(scale: Scale) -> FigureResult {
    let p = Params::new(scale, 15);
    let (regional, remote) = match scale {
        Scale::Small => (5, 15),
        Scale::Default => (10, 36),
        Scale::Paper => (10, 36),
    };
    let topo = constrained_source_topology(regional, remote, true, p.seed);
    let participants = topo.spec.participants();
    let mut figure = FigureResult::new(
        "fig15",
        "Achieved bandwidth over time for Bullet and TFRC streaming over hand-crafted trees with a constrained source",
    );

    let bullet_tree = {
        let mut rng = bullet_netsim::SimRng::new(p.seed ^ 0x7EE);
        random_tree(participants, topo.source, 10, &mut rng)
    };
    let bullet = bullet_run(
        &topo.spec,
        &bullet_tree,
        &p.bullet_config(PLANETLAB_RATE_BPS),
        &p.run_spec("Bullet"),
        p.seed,
    );
    figure.add_run(&bullet);

    let good = good_tree(topo.source, &topo.access_bps, 3);
    let good_run = streaming_run(
        &topo.spec,
        &good,
        &p.stream_config(PLANETLAB_RATE_BPS),
        &p.run_spec("Good Tree"),
        p.seed,
    );
    figure.add_run(&good_run);

    let worst = worst_tree(topo.source, &topo.access_bps, 3);
    let worst_run = streaming_run(
        &topo.spec,
        &worst,
        &p.stream_config(PLANETLAB_RATE_BPS),
        &p.run_spec("Worst Tree"),
        p.seed,
    );
    figure.add_run(&worst_run);

    figure.notes.push(format!(
        "constrained source: Bullet {:.0} Kbps vs good tree {:.0} Kbps vs worst tree {:.0} Kbps (paper: Bullet well above both, good tree ~300 Kbps)",
        bullet.steady_state_kbps(),
        good_run.steady_state_kbps(),
        worst_run.steady_state_kbps()
    ));

    // Follow-up run: a well-provisioned source; both Bullet and a good tree
    // should reach (close to) the full 1.5 Mbps rate.
    let open = constrained_source_topology(regional, remote, false, p.seed);
    let open_tree = {
        let mut rng = bullet_netsim::SimRng::new(p.seed ^ 0x7EE);
        random_tree(open.spec.participants(), open.source, 10, &mut rng)
    };
    let open_bullet = bullet_run(
        &open.spec,
        &open_tree,
        &p.bullet_config(PLANETLAB_RATE_BPS),
        &p.run_spec("Bullet (unconstrained source)"),
        p.seed,
    );
    let open_good = good_tree(open.source, &open.access_bps, 3);
    let open_good_run = streaming_run(
        &open.spec,
        &open_good,
        &p.stream_config(PLANETLAB_RATE_BPS),
        &p.run_spec("Good Tree (unconstrained source)"),
        p.seed,
    );
    figure.notes.push(format!(
        "unconstrained source: Bullet {:.0} Kbps vs good tree {:.0} Kbps (paper: both ~1.5 Mbps)",
        open_bullet.steady_state_kbps(),
        open_good_run.steady_state_kbps()
    ));
    figure.add_run(&open_bullet);
    figure.add_run(&open_good_run);
    figure
}

/// Ablations of Bullet's design choices (not a paper figure): disjoint send
/// on/off, resemblance-guided peering vs random peering.
pub fn ablations(scale: Scale) -> FigureResult {
    let p = Params::new(scale, 20);
    let topo = build_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, p.seed);
    let mut figure = FigureResult::new(
        "ablations",
        "Bullet design ablations: disjoint send and resemblance-guided peering",
    );
    type ConfigTweak = Box<dyn Fn(&mut BulletConfig)>;
    let variants: Vec<(&str, ConfigTweak)> = vec![
        ("Bullet (full)", Box::new(|_c: &mut BulletConfig| {})),
        (
            "No disjoint send",
            Box::new(|c: &mut BulletConfig| c.disjoint_send = false),
        ),
        (
            "Random peer choice",
            Box::new(|c: &mut BulletConfig| c.resemblance_peering = false),
        ),
    ];
    for (label, tweak) in variants {
        let mut config = p.bullet_config(PAPER_RATE_BPS);
        tweak(&mut config);
        let result = bullet_run(&topo.spec, &tree, &config, &p.run_spec(label), p.seed);
        figure.notes.push(format!(
            "{label}: useful {:.0} Kbps, duplicates {:.1}%",
            result.summary.steady_useful_kbps,
            result.summary.duplicate_fraction * 100.0
        ));
        figure.add_run(&result);
    }
    figure
}

/// Convenience used by tests and the quickstart example: a single small
/// Bullet run over a generated topology.
pub fn quick_bullet_demo(participants: usize, seconds: u64, seed: u64) -> RunResult {
    let topo = build_topology(
        Scale::Small,
        participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        seed,
    );
    let tree = build_tree(&topo, TreeKind::Random { max_children: 6 }, 0, seed);
    let config = BulletConfig {
        stream_start: SimTime::from_secs(5),
        ..BulletConfig::default()
    };
    bullet_run(
        &topo.spec,
        &tree,
        &config,
        &RunSpec {
            label: "Bullet demo".into(),
            source: 0,
            duration: SimDuration::from_secs(seconds),
            sample_interval: SimDuration::from_secs(2),
            failure: None,
        },
        seed,
    )
}

/// Exposes the underlying network spec of a built topology (used by
/// examples that want to drive the simulator directly).
pub fn spec_of(topo: &BuiltTopology) -> &NetworkSpec {
    &topo.spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twelve_rows_matching_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().any(|(p, c, lo, hi)| p == "Low bandwidth"
            && c == "Client-Stub"
            && *lo == 300
            && *hi == 600));
        assert!(rows.iter().any(|(p, c, lo, hi)| p == "High bandwidth"
            && c == "Transit-Transit"
            && *lo == 10_000
            && *hi == 20_000));
    }

    #[test]
    fn quick_demo_delivers_data() {
        let result = quick_bullet_demo(15, 40, 1);
        assert!(result.steady_state_kbps() > 150.0);
        assert!(result.summary.median_delivery_fraction > 0.5);
    }

    #[test]
    fn figure_result_lookup_by_label() {
        let mut figure = FigureResult::new("x", "t");
        let mut series = BandwidthSeries::new("Bullet - Medium");
        series.push(1.0, 100.0);
        figure.series.push(series);
        assert!(figure.steady_state_of("Medium").is_some());
        assert!(figure.steady_state_of("High").is_none());
    }
}
