//! Thin wrappers that assemble a simulator for each protocol under test and
//! hand it to the generic metered runner.

use bullet_baselines::{
    AntiEntropyConfig, AntiEntropyNode, GossipConfig, GossipNode, StreamConfig, StreamingNode,
};
use bullet_core::{BulletConfig, BulletNode};
use bullet_dynamics::ScenarioScript;
use bullet_netsim::{Network, NetworkSpec, NodeResources, OverlayId, Sim};
use bullet_overlay::Tree;

use crate::runner::{run_metered, run_metered_dynamic, RunResult, RunSpec};

/// Runs Bullet over `tree` on an already-constructed network — the
/// parallel-harness entry point, where the network is a cheap per-run view
/// over a shared setup (see [`crate::env::PreparedTopology`]).
pub fn bullet_run_on(
    network: Network,
    tree: &Tree,
    config: &BulletConfig,
    run: &RunSpec,
    seed: u64,
) -> RunResult {
    let agents: Vec<BulletNode> = (0..network.participants())
        .map(|i| BulletNode::new(i, tree, config.clone()))
        .collect();
    let sim = Sim::with_network(network, agents, seed);
    run_metered(sim, run)
}

/// Runs Bullet over `tree` on the given physical network.
pub fn bullet_run(
    spec: &NetworkSpec,
    tree: &Tree,
    config: &BulletConfig,
    run: &RunSpec,
    seed: u64,
) -> RunResult {
    bullet_run_on(Network::new(spec), tree, config, run, seed)
}

/// [`bullet_run_scenario`] on an already-constructed network.
pub fn bullet_run_scenario_on(
    network: Network,
    tree: &Tree,
    config: &BulletConfig,
    run: &RunSpec,
    script: &ScenarioScript,
    seed: u64,
) -> RunResult {
    let agents: Vec<BulletNode> = (0..network.participants())
        .map(|i| BulletNode::new(i, tree, config.clone()))
        .collect();
    let sim = Sim::with_network(network, agents, seed);
    run_metered_dynamic(sim, run, script)
}

/// [`bullet_run_scenario_on`] with a deterministic per-node resource model
/// installed before the run: each `(node, model)` pair bounds that node's
/// simulated ingress queue (see [`bullet_netsim::NodeResources`]). The
/// overload figure gives *both* of its arms the same finite per-node
/// capacity this way, so an unbounded application-level queue discipline
/// has a measurable cost instead of free infinite buffering.
pub fn bullet_run_scenario_resourced_on(
    network: Network,
    tree: &Tree,
    config: &BulletConfig,
    run: &RunSpec,
    script: &ScenarioScript,
    resources: &[(OverlayId, NodeResources)],
    seed: u64,
) -> RunResult {
    let agents: Vec<BulletNode> = (0..network.participants())
        .map(|i| BulletNode::new(i, tree, config.clone()))
        .collect();
    let mut sim = Sim::with_network(network, agents, seed);
    for &(node, model) in resources {
        sim.set_node_resources(node, model);
    }
    run_metered_dynamic(sim, run, script)
}

/// Runs Bullet over `tree` under a scenario script (churn, flash crowds,
/// link dynamics). Identical to [`bullet_run`] when the script is empty.
pub fn bullet_run_scenario(
    spec: &NetworkSpec,
    tree: &Tree,
    config: &BulletConfig,
    run: &RunSpec,
    script: &ScenarioScript,
    seed: u64,
) -> RunResult {
    bullet_run_scenario_on(Network::new(spec), tree, config, run, script, seed)
}

/// [`streaming_run_scenario`] on an already-constructed network.
pub fn streaming_run_scenario_on(
    network: Network,
    tree: &Tree,
    config: &StreamConfig,
    run: &RunSpec,
    script: &ScenarioScript,
    seed: u64,
) -> RunResult {
    let agents: Vec<StreamingNode> = (0..network.participants())
        .map(|i| StreamingNode::new(i, tree, config.clone()))
        .collect();
    let sim = Sim::with_network(network, agents, seed);
    run_metered_dynamic(sim, run, script)
}

/// Runs tree streaming over `tree` under a scenario script (the baselines
/// use the default no-op lifecycle hooks; link dynamics apply in full).
pub fn streaming_run_scenario(
    spec: &NetworkSpec,
    tree: &Tree,
    config: &StreamConfig,
    run: &RunSpec,
    script: &ScenarioScript,
    seed: u64,
) -> RunResult {
    streaming_run_scenario_on(Network::new(spec), tree, config, run, script, seed)
}

/// [`streaming_run`] on an already-constructed network.
pub fn streaming_run_on(
    network: Network,
    tree: &Tree,
    config: &StreamConfig,
    run: &RunSpec,
    seed: u64,
) -> RunResult {
    let agents: Vec<StreamingNode> = (0..network.participants())
        .map(|i| StreamingNode::new(i, tree, config.clone()))
        .collect();
    let sim = Sim::with_network(network, agents, seed);
    run_metered(sim, run)
}

/// Runs tree streaming over `tree`.
pub fn streaming_run(
    spec: &NetworkSpec,
    tree: &Tree,
    config: &StreamConfig,
    run: &RunSpec,
    seed: u64,
) -> RunResult {
    streaming_run_on(Network::new(spec), tree, config, run, seed)
}

/// [`gossip_run`] on an already-constructed network.
pub fn gossip_run_on(
    network: Network,
    source: OverlayId,
    config: &GossipConfig,
    run: &RunSpec,
    seed: u64,
) -> RunResult {
    let n = network.participants();
    let agents: Vec<GossipNode> = (0..n)
        .map(|i| GossipNode::new(i, source, n, config.clone()))
        .collect();
    let sim = Sim::with_network(network, agents, seed);
    run_metered(sim, run)
}

/// Runs push gossip with full membership and the given source.
pub fn gossip_run(
    spec: &NetworkSpec,
    source: OverlayId,
    config: &GossipConfig,
    run: &RunSpec,
    seed: u64,
) -> RunResult {
    gossip_run_on(Network::new(spec), source, config, run, seed)
}

/// [`antientropy_run`] on an already-constructed network.
pub fn antientropy_run_on(
    network: Network,
    tree: &Tree,
    config: &AntiEntropyConfig,
    run: &RunSpec,
    seed: u64,
) -> RunResult {
    let n = network.participants();
    let agents: Vec<AntiEntropyNode> = (0..n)
        .map(|i| AntiEntropyNode::new(i, tree, n, config.clone()))
        .collect();
    let sim = Sim::with_network(network, agents, seed);
    run_metered(sim, run)
}

/// Runs tree streaming with anti-entropy recovery over `tree`.
pub fn antientropy_run(
    spec: &NetworkSpec,
    tree: &Tree,
    config: &AntiEntropyConfig,
    run: &RunSpec,
    seed: u64,
) -> RunResult {
    antientropy_run_on(Network::new(spec), tree, config, run, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::{LinkSpec, SimDuration, SimRng, SimTime};
    use bullet_overlay::random_tree;

    fn hub(n: usize, access_bps: f64) -> NetworkSpec {
        let mut spec = NetworkSpec::new(n + 1);
        for i in 0..n {
            spec.add_link(LinkSpec::new(
                n,
                i,
                access_bps,
                SimDuration::from_millis(10),
            ));
            spec.attach(i);
        }
        spec
    }

    fn quick_spec(label: &str, secs: u64) -> RunSpec {
        RunSpec {
            label: label.into(),
            source: 0,
            duration: SimDuration::from_secs(secs),
            sample_interval: SimDuration::from_secs(2),
            failure: None,
        }
    }

    #[test]
    fn all_protocol_wrappers_produce_results() {
        let spec = hub(10, 2_000_000.0);
        let mut rng = SimRng::new(1);
        let tree = random_tree(10, 0, 3, &mut rng);
        let run = quick_spec("wrapper", 30);

        let bullet_cfg = BulletConfig {
            stream_rate_bps: 300_000.0,
            stream_start: SimTime::from_secs(2),
            ransub_epoch: SimDuration::from_secs(2),
            ..BulletConfig::default()
        };
        let bullet = bullet_run(&spec, &tree, &bullet_cfg, &run, 1);
        assert!(bullet.steady_state_kbps() > 100.0);

        let stream_cfg = StreamConfig {
            stream_rate_bps: 300_000.0,
            stream_start: SimTime::from_secs(2),
            ..StreamConfig::default()
        };
        let streaming = streaming_run(&spec, &tree, &stream_cfg, &run, 1);
        assert!(streaming.steady_state_kbps() > 100.0);

        let gossip_cfg = GossipConfig {
            stream_rate_bps: 300_000.0,
            stream_start: SimTime::from_secs(2),
            ..GossipConfig::default()
        };
        let gossip = gossip_run(&spec, 0, &gossip_cfg, &run, 1);
        assert!(gossip.summary.steady_raw_kbps > 50.0);

        let ae_cfg = AntiEntropyConfig {
            stream_rate_bps: 300_000.0,
            stream_start: SimTime::from_secs(2),
            epoch: SimDuration::from_secs(5),
            ..AntiEntropyConfig::default()
        };
        let ae = antientropy_run(&spec, &tree, &ae_cfg, &run, 1);
        assert!(ae.steady_state_kbps() > 100.0);
    }
}
