//! Experiment environments: topologies and trees.
//!
//! Small helpers that turn a [`Scale`] plus the paper's per-figure settings
//! (bandwidth profile, loss profile, participant count) into a generated
//! topology, and the overlay trees each figure needs (random, offline
//! bottleneck, Overcast-like, hand-crafted good/worst).

use std::sync::Arc;

use bullet_netsim::{LinkSpec, Network, NetworkSetup, NetworkSpec, OverlayId, SimDuration, SimRng};
use bullet_overlay::{
    bottleneck_tree, good_tree, overcast_tree, random_tree, worst_tree, OmbtConfig, OracleStrategy,
    OvercastConfig, ThroughputOracle, Tree,
};
use bullet_topology::{generate, BandwidthProfile, BuiltTopology, LossProfile, TopologyConfig};

use crate::scale::Scale;

/// A network spec bundled with its shared immutable routing setup
/// ([`NetworkSetup`]: adjacency + ALT landmark tables).
///
/// This is the unit of setup sharing in the parallel harness: the expensive
/// pieces are built **once per topology class** when the spec is prepared,
/// and every run — on any worker thread — gets its own cheap mutable
/// [`Network`] view over them through [`PreparedSpec::network`]. The view's
/// link queues, route arena, caches and participant route memo are private
/// per run; routes are bit-identical to constructing `Network::new(spec)`
/// from scratch (gated in `bullet_netsim` and by the figure thread-
/// invariance tests).
#[derive(Clone)]
pub struct PreparedSpec {
    spec: Arc<NetworkSpec>,
    setup: Arc<NetworkSetup>,
}

impl PreparedSpec {
    /// Prepares `spec`, building the shared routing setup (the routing mode
    /// resolves from the topology size exactly like `Sim::new`).
    pub fn new(spec: NetworkSpec) -> Self {
        let setup = Arc::new(NetworkSetup::new(&spec));
        PreparedSpec {
            spec: Arc::new(spec),
            setup,
        }
    }

    /// The underlying network spec.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Number of overlay participants.
    pub fn participants(&self) -> usize {
        self.spec.participants()
    }

    /// A fresh per-run network view over the shared setup.
    pub fn network(&self) -> Network {
        Network::with_setup(&self.spec, &self.setup)
    }
}

/// A generated [`BuiltTopology`] bundled with its shared routing setup;
/// the topology-class analogue of [`PreparedSpec`] (see there for the
/// sharing model). Cloning is two `Arc` bumps, so figure grids move clones
/// into their run tasks.
#[derive(Clone)]
pub struct PreparedTopology {
    built: Arc<BuiltTopology>,
    setup: Arc<NetworkSetup>,
}

impl PreparedTopology {
    /// Prepares an already-generated topology.
    pub fn from_built(built: BuiltTopology) -> Self {
        let setup = Arc::new(NetworkSetup::new(&built.spec));
        PreparedTopology {
            built: Arc::new(built),
            setup,
        }
    }

    /// The generated topology.
    pub fn built(&self) -> &BuiltTopology {
        &self.built
    }

    /// The underlying network spec.
    pub fn spec(&self) -> &NetworkSpec {
        &self.built.spec
    }

    /// Number of overlay participants.
    pub fn participants(&self) -> usize {
        self.built.participants()
    }

    /// A fresh per-run network view over the shared setup.
    pub fn network(&self) -> Network {
        Network::with_setup(&self.built.spec, &self.setup)
    }

    /// Builds an overlay tree like [`build_tree`], with the oracle-backed
    /// kinds (bottleneck, Overcast, good/worst) running over a shared-setup
    /// network view instead of a from-scratch network — at paper scale that
    /// skips a second landmark construction per figure. Trees are identical
    /// to [`build_tree`]'s (routes are canonical either way).
    pub fn tree(&self, kind: TreeKind, root: OverlayId, seed: u64) -> Tree {
        build_tree_on(&self.built, || self.network(), kind, root, seed)
    }
}

/// Generates and prepares the topology for one experiment: the topology
/// *and* its routing setup are built once here and shared (via `Arc`)
/// across every run of the figure's grid.
pub fn prepare_topology(
    scale: Scale,
    participants: usize,
    bandwidth: BandwidthProfile,
    loss: LossProfile,
    seed: u64,
) -> PreparedTopology {
    PreparedTopology::from_built(build_topology(scale, participants, bandwidth, loss, seed))
}

/// Builds the transit-stub topology for one experiment.
pub fn build_topology(
    scale: Scale,
    participants: usize,
    bandwidth: BandwidthProfile,
    loss: LossProfile,
    seed: u64,
) -> BuiltTopology {
    let mut config = match scale {
        Scale::Small => TopologyConfig::small(participants, seed),
        Scale::Default => TopologyConfig::emulation(participants, seed),
        Scale::Paper => TopologyConfig::paper_scale(participants, seed),
    };
    config.bandwidth = bandwidth;
    config.loss = loss;
    generate(&config)
}

/// The overlay tree constructions used across the figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeKind {
    /// Degree-constrained random tree (Bullet's usual substrate).
    Random {
        /// Maximum children per node.
        max_children: usize,
    },
    /// The offline greedy bottleneck-bandwidth tree of §4.1.
    Bottleneck,
    /// The Overcast-like online bandwidth-optimized tree.
    Overcast,
    /// Hand-crafted "good" tree: fastest nodes (per oracle bandwidth from the
    /// source) closest to the root (§4.7).
    Good,
    /// Hand-crafted "worst" tree: slowest nodes closest to the root (§4.7).
    Worst,
}

/// Builds the requested tree over the participants of `topo`.
pub fn build_tree(topo: &BuiltTopology, kind: TreeKind, root: OverlayId, seed: u64) -> Tree {
    build_tree_on(topo, || Network::new(&topo.spec), kind, root, seed)
}

/// [`build_tree`] with an explicit network factory, so callers holding a
/// [`PreparedTopology`] reuse its shared routing setup for the oracle-backed
/// tree kinds.
fn build_tree_on(
    topo: &BuiltTopology,
    make_network: impl Fn() -> Network,
    kind: TreeKind,
    root: OverlayId,
    seed: u64,
) -> Tree {
    let participants = topo.participants();
    match kind {
        TreeKind::Random { max_children } => {
            let mut rng = SimRng::new(seed ^ 0x7EE);
            random_tree(participants, root, max_children, &mut rng)
        }
        TreeKind::Bottleneck => {
            let mut net = make_network();
            bottleneck_tree(&mut net, participants, root, &OmbtConfig::default())
        }
        TreeKind::Overcast => {
            let mut net = make_network();
            overcast_tree(&mut net, participants, root, &OvercastConfig::default())
        }
        TreeKind::Good => {
            let metric = bandwidth_metric_on(make_network(), participants, root);
            good_tree(root, &metric, 3)
        }
        TreeKind::Worst => {
            let metric = bandwidth_metric_on(make_network(), participants, root);
            worst_tree(root, &metric, 3)
        }
    }
}

/// Per-node available-bandwidth metric from the source, standing in for the
/// paper's pathload measurements when hand-crafting trees.
///
/// The forward routes (root → everyone) are batch-computed with one
/// one-to-many search up front; the reverse pairs stay point queries, since
/// each `node → root` route is needed exactly once and a full row fill per
/// node would overshoot a single-target need.
pub fn bandwidth_metric_from_source(topo: &BuiltTopology, root: OverlayId) -> Vec<f64> {
    bandwidth_metric_on(Network::new(&topo.spec), topo.participants(), root)
}

/// [`bandwidth_metric_from_source`] over an already-constructed network.
fn bandwidth_metric_on(mut net: Network, participants: usize, root: OverlayId) -> Vec<f64> {
    let mut oracle = ThroughputOracle::with_strategy(&mut net, 1_500, OracleStrategy::Pairwise);
    oracle.prefetch_from(root);
    (0..participants)
        .map(|node| {
            if node == root {
                f64::MAX
            } else {
                oracle.estimate_bps(root, node).unwrap_or(0.0)
            }
        })
        .collect()
}

/// The constrained-source environment standing in for the PlanetLab
/// deployment of §4.7 (see DESIGN.md for the substitution rationale).
#[derive(Clone, Debug)]
pub struct ConstrainedSourceTopology {
    /// Simulator network spec.
    pub spec: NetworkSpec,
    /// Per-participant access bandwidth, bits per second.
    pub access_bps: Vec<f64>,
    /// The source participant (attached behind the constrained uplink).
    pub source: OverlayId,
}

/// Builds the constrained-source topology: the source and `regional` other
/// nodes sit behind modest access links in one region, `remote` nodes sit in
/// a well-provisioned region, and the two regions are joined by a wide
/// transit link. When `constrain_source` is false every node (including the
/// source) gets a fast access link, reproducing the paper's follow-up run
/// where Bullet and a good tree both reach the full streaming rate.
pub fn constrained_source_topology(
    regional: usize,
    remote: usize,
    constrain_source: bool,
    seed: u64,
) -> ConstrainedSourceTopology {
    let mut rng = SimRng::new(seed ^ 0xF1615);
    // Routers: 0 = regional hub, 1 = remote hub.
    let participants = 1 + regional + remote;
    let mut spec = NetworkSpec::new(2 + participants);
    spec.add_link(LinkSpec::new(0, 1, 200e6, SimDuration::from_millis(40)));
    let mut access_bps = Vec::with_capacity(participants);
    for node in 0..participants {
        let router = 2 + node;
        let (hub, bps) = if node == 0 {
            // The source.
            let bps = if constrain_source {
                2_500_000.0
            } else {
                15_000_000.0
            };
            (0, bps)
        } else if node <= regional {
            (0, rng.range_f64(2_000_000.0, 4_000_000.0))
        } else {
            (1, rng.range_f64(10_000_000.0, 20_000_000.0))
        };
        spec.add_link(LinkSpec::new(hub, router, bps, SimDuration::from_millis(5)));
        spec.attach(router);
        access_bps.push(bps);
    }
    ConstrainedSourceTopology {
        spec,
        access_bps,
        source: 0,
    }
}

/// Whether `BULLET_INTEGRITY` asks the figure harness to enable the
/// data-plane integrity layer (block verification, health scoring,
/// quarantine) with its default parameters on every Bullet run. Accepts
/// `1`/`true`/`on`; anything else — including unset — leaves the layer
/// off, so historical figure output stays byte-identical.
pub fn integrity_enabled() -> bool {
    matches!(
        std::env::var("BULLET_INTEGRITY").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Whether `BULLET_OVERLOAD` asks the figure harness to enable the
/// overload-resilience layer (bounded prioritized inboxes, join admission
/// control, working-set memory budget, slow-receiver demotion) on every
/// Bullet run. The layer rides on the integrity profile, so enabling it
/// also enables block verification and the §4.6 recovery subsystem.
/// Accepts `1`/`true`/`on`; anything else — including unset — leaves the
/// layer off, so historical figure output stays byte-identical.
pub fn overload_enabled() -> bool {
    matches!(
        std::env::var("BULLET_OVERLOAD").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Whether `BULLET_PROFILE` asks metered runs to enable simulator
/// self-profiling (event-queue depth tracking, pool occupancy, wall-clock
/// throughput). Accepts `1`/`true`/`on`; anything else — including unset —
/// keeps profiling off and the run loop untouched.
pub fn profile_enabled() -> bool {
    matches!(
        std::env::var("BULLET_PROFILE").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_scales_with_scale() {
        let small = build_topology(
            Scale::Small,
            20,
            BandwidthProfile::Medium,
            LossProfile::None,
            1,
        );
        let default = build_topology(
            Scale::Default,
            20,
            BandwidthProfile::Medium,
            LossProfile::None,
            1,
        );
        assert!(default.spec.routers > small.spec.routers);
        assert_eq!(small.participants(), 20);
    }

    #[test]
    fn all_tree_kinds_build_valid_trees() {
        let topo = build_topology(
            Scale::Small,
            15,
            BandwidthProfile::Medium,
            LossProfile::None,
            3,
        );
        for kind in [
            TreeKind::Random { max_children: 4 },
            TreeKind::Bottleneck,
            TreeKind::Overcast,
            TreeKind::Good,
            TreeKind::Worst,
        ] {
            let tree = build_tree(&topo, kind, 0, 3);
            assert_eq!(tree.len(), 15, "{kind:?}");
            assert_eq!(tree.root(), 0, "{kind:?}");
            assert_eq!(tree.subtree_size(0), 15, "{kind:?}");
        }
    }

    #[test]
    fn good_and_worst_trees_differ() {
        let topo = build_topology(
            Scale::Small,
            20,
            BandwidthProfile::Low,
            LossProfile::None,
            5,
        );
        let good = build_tree(&topo, TreeKind::Good, 0, 5);
        let worst = build_tree(&topo, TreeKind::Worst, 0, 5);
        assert_ne!(good.parents(), worst.parents());
    }

    #[test]
    fn constrained_source_topology_shape() {
        let topo = constrained_source_topology(10, 36, true, 7);
        assert_eq!(topo.access_bps.len(), 47);
        assert_eq!(topo.spec.participants(), 47);
        assert!(
            topo.access_bps[0] < 3_000_000.0,
            "source must be constrained"
        );
        // Remote nodes are fast.
        assert!(topo.access_bps[20] >= 10_000_000.0);
        let unconstrained = constrained_source_topology(10, 36, false, 7);
        assert!(unconstrained.access_bps[0] > 10_000_000.0);
    }

    #[test]
    fn prepared_topology_builds_identical_trees_and_networks() {
        let topo = build_topology(
            Scale::Small,
            15,
            BandwidthProfile::Medium,
            LossProfile::None,
            3,
        );
        let prepared = prepare_topology(
            Scale::Small,
            15,
            BandwidthProfile::Medium,
            LossProfile::None,
            3,
        );
        for kind in [
            TreeKind::Random { max_children: 4 },
            TreeKind::Bottleneck,
            TreeKind::Overcast,
            TreeKind::Good,
            TreeKind::Worst,
        ] {
            assert_eq!(
                build_tree(&topo, kind, 0, 3).parents(),
                prepared.tree(kind, 0, 3).parents(),
                "{kind:?}: shared-setup tree diverged"
            );
        }
        // Two per-run views (and a from-scratch network) route identically.
        let mut fresh = Network::new(&topo.spec);
        let mut view_a = prepared.network();
        let mut view_b = prepared.network();
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(fresh.path(a, b), view_a.path(a, b), "{a}->{b}");
                assert_eq!(fresh.path(a, b), view_b.path(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn prepared_spec_views_match_fresh_networks() {
        let raw = constrained_source_topology(4, 6, true, 7);
        let prepared = PreparedSpec::new(raw.spec.clone());
        assert_eq!(prepared.participants(), raw.spec.participants());
        let mut fresh = Network::new(&raw.spec);
        let mut view = prepared.network();
        for a in 0..prepared.participants() {
            assert_eq!(fresh.path(a, 0), view.path(a, 0), "{a}->0");
            assert_eq!(fresh.path(0, a), view.path(0, a), "0->{a}");
        }
    }

    #[test]
    fn metric_ranks_the_source_highest() {
        let topo = build_topology(
            Scale::Small,
            10,
            BandwidthProfile::Medium,
            LossProfile::None,
            9,
        );
        let metric = bandwidth_metric_from_source(&topo, 0);
        assert_eq!(metric.len(), 10);
        assert!(metric[0] > metric[1]);
        assert!(metric.iter().skip(1).all(|&m| m > 0.0));
    }
}
