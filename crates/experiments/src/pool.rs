//! Scoped-thread worker pool for the experiment grid.
//!
//! Every figure of the paper's evaluation is a grid of *independent* runs
//! (protocols × bandwidth profiles × link classes × scenarios × seeds):
//! each run owns its simulator, its RNG stream and its metering state, so
//! the grid parallelizes perfectly. [`RunPool`] executes a batch of such
//! run tasks on `std::thread::scope` workers and collects the results into
//! their **submission order**, which is what makes the harness
//! deterministic: a figure assembled from the ordered results is
//! bit-identical no matter how many threads executed the grid, or how the
//! OS interleaved them. `tests/parallel.rs` holds that gate.
//!
//! Thread count comes from `BULLET_THREADS` (default: all available
//! cores); `BULLET_SEEDS` widens every figure's grid to a multi-seed sweep
//! (default: the single per-figure seed, which reproduces the historical
//! single-seed output byte for byte).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of grid work: built by a figure, executed by a worker.
pub type Task<'scope, R> = Box<dyn FnOnce() -> R + Send + 'scope>;

/// A fixed-width scoped-thread worker pool (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunPool {
    threads: usize,
}

impl RunPool {
    /// A pool of exactly `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        RunPool {
            threads: threads.max(1),
        }
    }

    /// Reads the worker count from `BULLET_THREADS`, defaulting to the
    /// machine's available parallelism.
    ///
    /// # Panics
    ///
    /// Panics on a non-numeric or zero `BULLET_THREADS` — silently falling
    /// back would attribute benchmark numbers to the wrong configuration.
    pub fn from_env() -> Self {
        Self::new(env_count("BULLET_THREADS", || {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }))
    }

    /// The number of worker threads this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every task and returns the results **in task order**,
    /// regardless of which worker ran what when.
    ///
    /// With one worker (or one task) this degenerates to a plain serial
    /// map on the calling thread — the reference execution every other
    /// thread count must reproduce. A panicking task propagates out of the
    /// scope and fails the harness, exactly like serial execution.
    pub fn run<'scope, R: Send>(&self, tasks: Vec<Task<'scope, R>>) -> Vec<R> {
        let n = tasks.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        // Tasks are claimed through a shared cursor (cheap work stealing:
        // long and short runs pack onto workers greedily); each result
        // lands in the slot of its task index, restoring serial order.
        let task_slots: Vec<Mutex<Option<Task<'scope, R>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let task = task_slots[index]
                        .lock()
                        .expect("task slot poisoned")
                        .take()
                        .expect("each task index is claimed exactly once");
                    let result = task();
                    *result_slots[index].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        result_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("scope joined every worker, so every task completed")
            })
            .collect()
    }
}

/// Reads a positive count from the environment variable `name`, calling
/// `default` when it is unset or empty and panicking on anything that is
/// not a positive integer (silent fallback would attribute benchmark
/// numbers to the wrong configuration).
fn env_count(name: &str, default: impl FnOnce() -> usize) -> usize {
    parse_count(name, std::env::var(name).ok().as_deref(), default)
}

/// The parsing half of [`env_count`], split out for tests.
fn parse_count(name: &str, value: Option<&str>, default: impl FnOnce() -> usize) -> usize {
    match value {
        None | Some("") => default(),
        Some(text) => match text.parse::<usize>() {
            Ok(count) if count >= 1 => count,
            _ => panic!("unrecognized {name} value {text:?}: expected a positive count"),
        },
    }
}

/// Grid-widening parameters of one harness invocation: how many workers
/// execute the run grid and how many seeds each figure configuration sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sweep {
    pool: RunPool,
    seeds: usize,
}

impl Sweep {
    /// An explicit sweep: `threads` workers, `seeds` seeds per figure
    /// configuration (both clamped to at least one).
    pub fn new(threads: usize, seeds: usize) -> Self {
        Sweep {
            pool: RunPool::new(threads),
            seeds: seeds.max(1),
        }
    }

    /// The serial single-seed sweep: the reference configuration that
    /// reproduces the historical figure output byte for byte.
    pub fn serial() -> Self {
        Self::new(1, 1)
    }

    /// Reads `BULLET_THREADS` and `BULLET_SEEDS` (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics on non-numeric or zero values, like [`RunPool::from_env`].
    pub fn from_env() -> Self {
        Sweep {
            pool: RunPool::from_env(),
            seeds: env_count("BULLET_SEEDS", || 1),
        }
    }

    /// The worker pool runs execute on.
    pub fn pool(&self) -> &RunPool {
        &self.pool
    }

    /// Seeds per figure configuration.
    pub fn seeds(&self) -> usize {
        self.seeds
    }

    /// The per-run seeds derived from a figure's base seed: seed index 0 is
    /// the base seed itself (preserving the single-seed goldens), later
    /// indices decorrelate with a splitmix-style odd multiplier.
    pub fn run_seeds(&self, base: u64) -> Vec<u64> {
        (0..self.seeds)
            .map(|k| match k {
                0 => base,
                k => base ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            })
            .collect()
    }
}

/// The display label of seed `k` of a configuration: index 0 keeps the bare
/// label (single-seed output is byte-identical to the historical harness).
pub(crate) fn seed_label(base: &str, k: usize) -> String {
    if k == 0 {
        base.to_string()
    } else {
        format!("{base} [seed {k}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order_at_any_thread_count() {
        for threads in [1, 2, 8, 32] {
            let pool = RunPool::new(threads);
            let tasks: Vec<Task<'_, usize>> = (0..57)
                .map(|i| {
                    // Reverse-skewed busy work so late tasks finish first
                    // under real parallelism.
                    Box::new(move || {
                        let mut acc: usize = i;
                        for _ in 0..(57 - i) * 1_000 {
                            acc = acc.wrapping_mul(31).wrapping_add(1) % 1_000_003;
                        }
                        std::hint::black_box(acc);
                        i
                    }) as Task<'_, usize>
                })
                .collect();
            let results = pool.run(tasks);
            assert_eq!(results, (0..57).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn tasks_may_borrow_from_the_caller() {
        let shared = vec![1u64, 2, 3];
        let pool = RunPool::new(4);
        let tasks: Vec<Task<'_, u64>> = (0..8)
            .map(|i| {
                let shared = &shared;
                Box::new(move || shared.iter().sum::<u64>() + i) as Task<'_, u64>
            })
            .collect();
        assert_eq!(pool.run(tasks), (0..8).map(|i| 6 + i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_parsing() {
        assert_eq!(parse_count("BULLET_THREADS", Some("4"), || 1), 4);
        assert_eq!(parse_count("BULLET_THREADS", Some("1"), || 1), 1);
        assert_eq!(parse_count("BULLET_THREADS", None, || 6), 6);
        assert_eq!(parse_count("BULLET_SEEDS", Some(""), || 6), 6);
    }

    #[test]
    #[should_panic(expected = "BULLET_THREADS")]
    fn invalid_thread_count_panics() {
        parse_count("BULLET_THREADS", Some("many"), || 1);
    }

    #[test]
    fn sweep_seeds_start_at_the_base_seed() {
        let sweep = Sweep::new(1, 3);
        let seeds = sweep.run_seeds(7);
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0], 7, "seed 0 must preserve the historical run");
        assert_eq!(
            seeds.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
        assert_eq!(Sweep::serial().run_seeds(7), vec![7]);
    }

    #[test]
    fn seed_labels_keep_the_bare_label_for_seed_zero() {
        assert_eq!(seed_label("Bullet", 0), "Bullet");
        assert_eq!(seed_label("Bullet", 2), "Bullet [seed 2]");
    }
}
