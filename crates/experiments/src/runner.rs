//! Generic experiment runner.
//!
//! Every protocol under evaluation (Bullet, tree streaming, gossip,
//! anti-entropy) exposes the same cumulative delivery counters through
//! [`MeteredAgent`]; the runner samples them on a fixed interval while the
//! simulation advances and turns them into the bandwidth-over-time series,
//! CDFs and scalar summaries the paper's figures are built from.
//!
//! Sampling goes through the [`MetricsHub`]: each delivery counter is a
//! registered rate channel, differenced and folded by the hub with the
//! same arithmetic (and the same `f64` accumulation order) the harness
//! has always used, so the series are byte-identical to the pre-hub
//! output. When a run is configured with a [`TelemetryConfig`], the
//! result additionally carries a [`RunTelemetry`]: the flight-recorder
//! trace, the hub series, per-block journey spans and the simulator's
//! self-profile.

use bullet_baselines::{AntiEntropyNode, GossipNode, StreamingNode};
use bullet_core::BulletNode;
use bullet_dynamics::{ScenarioAgent, ScenarioDriver, ScenarioScript};
use bullet_netsim::telemetry::{
    block_journeys, journeys_to_jsonl, ChannelId, MetricsHub, SelfProfile, TraceSpec,
};
use bullet_netsim::{Agent, OverlayId, RoutingStats, Sim, SimDuration, SimTime};

use crate::metrics::{
    mean_secs_from_us, median_or_zero, ratio_or_zero, BandwidthSeries, Cdf, RunSummary,
};

/// A snapshot of one node's cumulative delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Delivery {
    /// Bytes received for the first time.
    pub useful_bytes: u64,
    /// First-delivery bytes that also arrived within the protocol's
    /// playout freshness deadline of their generation (timely goodput;
    /// equals `useful_bytes` for protocols that do not track block age).
    pub fresh_bytes: u64,
    /// Bytes received in total (including duplicates).
    pub raw_bytes: u64,
    /// Bytes received from the tree parent.
    pub from_parent_bytes: u64,
    /// Duplicate packets received.
    pub duplicate_packets: u64,
    /// Duplicates that arrived from the tree parent.
    pub duplicate_from_parent: u64,
    /// Total data packets received.
    pub total_packets: u64,
    /// Distinct sequence numbers received.
    pub useful_packets: u64,
    /// Packets generated (source only).
    pub packets_generated: u64,
    /// Orphan detections (§4.6 recovery; zero for baselines).
    pub orphan_detections: u64,
    /// Completed orphan re-attaches.
    pub reattaches: u64,
    /// Cumulative microseconds between orphan detection and re-attach.
    pub reattach_wait_us: u64,
    /// Useful packets received from the mesh while orphaned.
    pub orphan_window_packets: u64,
    /// Control RPCs re-sent after a timeout.
    pub control_retries: u64,
    /// Silence-evicted peers later heard from again.
    pub false_positive_evictions: u64,
    /// Data packets whose carried digest was checked (zero for baselines).
    pub blocks_verified: u64,
    /// Corrupted blocks rejected on receive (integrity layer on).
    pub corrupt_blocks_rejected: u64,
    /// Corrupted blocks accepted into the working set (integrity layer off).
    pub corrupt_blocks_accepted: u64,
    /// Peers quarantined for misbehavior.
    pub quarantines: u64,
    /// Control messages shed at the bounded inbox (overload layer on).
    pub inbox_sheds: u64,
    /// Join requests answered with a deferral (overload layer on).
    pub joins_deferred: u64,
    /// Deferred joins later admitted after backoff.
    pub joins_admitted_after_defer: u64,
    /// Deepest one-second inbox backlog observed at this node.
    pub peak_inbox_depth: u64,
    /// Working-set blocks evicted by the memory budget.
    pub working_set_evictions: u64,
    /// Receivers demoted for sustained slowness.
    pub slow_demotions: u64,
}

/// A protocol agent whose delivery progress the runner can observe.
pub trait MeteredAgent: Agent {
    /// Returns the node's cumulative delivery counters.
    fn delivery(&self) -> Delivery;
}

impl MeteredAgent for BulletNode {
    fn delivery(&self) -> Delivery {
        let m = &self.metrics;
        let d = &m.delivery;
        Delivery {
            useful_bytes: d.useful_bytes,
            fresh_bytes: d.fresh_bytes,
            raw_bytes: d.raw_bytes,
            from_parent_bytes: d.from_parent_bytes,
            duplicate_packets: d.duplicate_packets,
            duplicate_from_parent: d.duplicate_from_parent,
            total_packets: d.total_packets,
            useful_packets: d.useful_packets,
            packets_generated: d.packets_generated,
            orphan_detections: m.orphan_detections,
            reattaches: m.reattaches,
            reattach_wait_us: m.reattach_wait_us,
            orphan_window_packets: m.orphan_window_packets,
            control_retries: m.control_retries,
            false_positive_evictions: m.false_positive_evictions,
            blocks_verified: m.blocks_verified,
            corrupt_blocks_rejected: m.corrupt_blocks_rejected,
            corrupt_blocks_accepted: m.corrupt_blocks_accepted,
            quarantines: m.quarantines,
            inbox_sheds: m.inbox_sheds,
            joins_deferred: m.joins_deferred,
            joins_admitted_after_defer: m.joins_admitted_after_defer,
            peak_inbox_depth: m.peak_inbox_depth,
            working_set_evictions: m.working_set_evictions,
            slow_demotions: m.slow_demotions,
        }
    }
}

macro_rules! impl_metered_for_baseline {
    ($ty:ty) => {
        impl MeteredAgent for $ty {
            fn delivery(&self) -> Delivery {
                let m = &self.metrics;
                Delivery {
                    useful_bytes: m.useful_bytes,
                    fresh_bytes: m.fresh_bytes,
                    raw_bytes: m.raw_bytes,
                    from_parent_bytes: m.from_parent_bytes,
                    duplicate_packets: m.duplicate_packets,
                    // The shared counters now track parent duplicates for
                    // the baselines too, but the historical harness never
                    // surfaced them; keep reporting zero so baseline
                    // summaries stay byte-identical.
                    duplicate_from_parent: 0,
                    total_packets: m.total_packets,
                    useful_packets: m.useful_packets,
                    packets_generated: m.packets_generated,
                    ..Delivery::default()
                }
            }
        }
    };
}

impl_metered_for_baseline!(StreamingNode);
impl_metered_for_baseline!(GossipNode);
impl_metered_for_baseline!(AntiEntropyNode);

/// Telemetry switches for one metered run. The default is everything off,
/// which keeps the run byte-identical to (and as fast as) the pre-telemetry
/// harness: no recorder is installed and the sim's hot path only checks one
/// `Option`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Install a flight recorder with this spec before the run.
    pub trace: Option<TraceSpec>,
    /// Enable simulator self-profiling (queue-depth tracking).
    pub profile: bool,
}

impl TelemetryConfig {
    /// Everything off — the zero-cost default.
    pub fn disabled() -> Self {
        TelemetryConfig::default()
    }

    /// Resolves the switches from the environment: `BULLET_TRACE` (see
    /// [`TraceSpec::from_env`]) and `BULLET_PROFILE` (`1`/`true`/`on`).
    pub fn from_env() -> Self {
        TelemetryConfig {
            trace: TraceSpec::from_env(),
            profile: crate::env::profile_enabled(),
        }
    }

    /// Whether the run should skip telemetry collection entirely.
    pub fn is_off(&self) -> bool {
        self.trace.is_none() && !self.profile
    }
}

/// Telemetry captured by one run; present on [`RunResult::telemetry`] only
/// when the run was configured with tracing or profiling.
///
/// Every field except the wall-clock half of the profile is a pure function
/// of the simulation, so two runs of the same configuration compare equal
/// across thread counts and hosts ([`SelfProfile`]'s `PartialEq` ignores
/// its wall-clock fields).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTelemetry {
    /// Flight-recorder events as JSONL (empty when tracing was off).
    pub trace_jsonl: String,
    /// Metrics-hub series as JSONL (one line per windowed point).
    pub series_jsonl: String,
    /// Per-block journey spans as JSONL (empty when tracing was off).
    pub journeys_jsonl: String,
    /// Simulator self-profile (`None` unless profiling was enabled).
    pub profile: Option<SelfProfile>,
}

/// The full outcome of one run: per-curve series plus scalar summary.
///
/// `PartialEq` compares every sampled value bit for bit — the
/// thread-invariance gates assert whole `RunResult`s equal across
/// `BULLET_THREADS` settings. Telemetry participates in the comparison
/// (traces are deterministic); only the profile's wall-clock fields are
/// exempt.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Curve label.
    pub label: String,
    /// Sample times in seconds.
    pub times: Vec<f64>,
    /// Average per-node useful bandwidth over time.
    pub useful: BandwidthSeries,
    /// Average per-node raw bandwidth over time.
    pub raw: BandwidthSeries,
    /// Average per-node bandwidth received from the tree parent over time.
    pub from_parent: BandwidthSeries,
    /// Per-sample, per-node cumulative useful bytes (`[sample][node]`),
    /// source included; used to derive CDFs at arbitrary instants.
    pub per_node_useful_bytes: Vec<Vec<u64>>,
    /// Per-sample, per-node cumulative *timely* useful bytes — first
    /// deliveries within the protocol's playout freshness deadline of
    /// their generation (`[sample][node]`, source included). Equal to
    /// `per_node_useful_bytes` for protocols without block-age tracking.
    pub per_node_fresh_bytes: Vec<Vec<u64>>,
    /// The source node (excluded from per-node averages).
    pub source: OverlayId,
    /// Scalar summary of the run.
    pub summary: RunSummary,
    /// Routing work the underlying network performed. At `BULLET_SCALE=paper`
    /// this is how harnesses verify that no per-source shortest-path tree
    /// was ever materialized (`trees_built == 0`).
    pub routing: RoutingStats,
    /// Captured telemetry; `None` for runs configured with
    /// [`TelemetryConfig::disabled`] (the default).
    pub telemetry: Option<RunTelemetry>,
}

impl RunResult {
    /// CDF of per-node instantaneous useful bandwidth (Kbps) over the sample
    /// interval ending closest to `at_secs` (Fig. 8).
    pub fn instantaneous_cdf(&self, at_secs: f64) -> Cdf {
        if self.per_node_useful_bytes.len() < 2 {
            return Cdf::from_samples(Vec::new());
        }
        let idx = self
            .times
            .iter()
            .position(|&t| t >= at_secs)
            .unwrap_or(self.times.len() - 1)
            .max(1);
        let dt = (self.times[idx] - self.times[idx - 1]).max(1e-9);
        let now = &self.per_node_useful_bytes[idx];
        let before = &self.per_node_useful_bytes[idx - 1];
        let samples: Vec<f64> = now
            .iter()
            .zip(before)
            .enumerate()
            .filter(|(node, _)| *node != self.source)
            .map(|(_, (&a, &b))| (a.saturating_sub(b)) as f64 * 8.0 / dt / 1_000.0)
            .collect();
        Cdf::from_samples(samples)
    }

    /// Mean useful bandwidth over the last quarter of the run, in Kbps.
    pub fn steady_state_kbps(&self) -> f64 {
        self.useful.steady_state_kbps(0.25)
    }
}

/// Parameters of one metered run.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Curve label used in reports.
    pub label: String,
    /// The source node.
    pub source: OverlayId,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Sampling interval.
    pub sample_interval: SimDuration,
    /// Optional crash failure to inject: `(time, node)`.
    pub failure: Option<(SimTime, OverlayId)>,
}

/// The sampling state of one metered run, shared between the static
/// ([`run_metered`]) and scenario-driven ([`run_metered_dynamic`]) drivers.
struct Meter {
    n: usize,
    times: Vec<f64>,
    per_node_useful: Vec<Vec<u64>>,
    per_node_fresh: Vec<Vec<u64>>,
    hub: MetricsHub,
    ch_useful: ChannelId,
    ch_raw: ChannelId,
    ch_parent: ChannelId,
    ch_control: ChannelId,
    useful: BandwidthSeries,
    raw: BandwidthSeries,
    from_parent: BandwidthSeries,
}

impl Meter {
    fn new(n: usize, spec: &RunSpec) -> Self {
        let mut hub = MetricsHub::new(n, Some(spec.source));
        let ch_useful = hub.counter_rate("useful_kbps");
        let ch_raw = hub.counter_rate("raw_kbps");
        let ch_parent = hub.counter_rate("from_parent_kbps");
        let ch_control = hub.counter_rate("control_in_kbps");
        Meter {
            n,
            times: Vec::new(),
            per_node_useful: Vec::new(),
            per_node_fresh: Vec::new(),
            hub,
            ch_useful,
            ch_raw,
            ch_parent,
            ch_control,
            useful: BandwidthSeries::new(spec.label.clone()),
            raw: BandwidthSeries::new(format!("{} (raw)", spec.label)),
            from_parent: BandwidthSeries::new(format!("{} (from parent)", spec.label)),
        }
    }

    fn sample<A: MeteredAgent>(&mut self, now: SimTime, sim: &Sim<A>) {
        let t = now.as_secs_f64();
        self.hub.begin_window(t);
        let mut row = Vec::with_capacity(self.n);
        let mut fresh_row = Vec::with_capacity(self.n);
        for node in 0..self.n {
            let d = sim.agent(node).delivery();
            row.push(d.useful_bytes);
            fresh_row.push(d.fresh_bytes);
            self.hub.observe_node(self.ch_useful, node, d.useful_bytes);
            self.hub.observe_node(self.ch_raw, node, d.raw_bytes);
            self.hub
                .observe_node(self.ch_parent, node, d.from_parent_bytes);
            self.hub
                .observe_node(self.ch_control, node, sim.traffic(node).control_bytes_in);
        }
        self.hub.end_window();
        let latest = |ch: ChannelId| self.hub.points(ch).last().expect("rate point").value;
        self.useful.push(t, latest(self.ch_useful));
        self.raw.push(t, latest(self.ch_raw));
        self.from_parent.push(t, latest(self.ch_parent));
        self.times.push(t);
        self.per_node_useful.push(row);
        self.per_node_fresh.push(fresh_row);
    }

    fn finish<A: MeteredAgent>(
        self,
        sim: &mut Sim<A>,
        spec: &RunSpec,
        telemetry: &TelemetryConfig,
        wall_secs: f64,
        repair_wall_secs: f64,
    ) -> RunResult {
        let n = self.n;

        // Fill the profile's wall-clock half before the deterministic
        // pieces are read; `SelfProfile::eq` ignores these fields.
        let mut profile = sim.profile();
        if let Some(p) = &mut profile {
            p.wall_secs = wall_secs;
            p.events_per_sec = ratio_or_zero(p.events as f64, wall_secs);
            p.repair_wall_secs = repair_wall_secs;
        }
        let captured = if telemetry.is_off() {
            None
        } else {
            let recorder = sim.take_recorder();
            let receivers = n.saturating_sub(1).max(1);
            let (trace_jsonl, journeys_jsonl) = match &recorder {
                Some(rec) => (
                    rec.to_jsonl(),
                    journeys_to_jsonl(&block_journeys(rec.events()), receivers),
                ),
                None => (String::new(), String::new()),
            };
            Some(RunTelemetry {
                trace_jsonl,
                series_jsonl: self.hub.to_jsonl(),
                journeys_jsonl,
                profile,
            })
        };

        let mut total_dups = 0u64;
        let mut total_parent_dups = 0u64;
        let mut total_packets = 0u64;
        let mut delivery_fractions: Vec<f64> = Vec::new();
        let generated = sim.agent(spec.source).delivery().packets_generated;
        let mut control_bytes = 0u64;
        let mut recovery = Delivery::default();
        let mut node_reattach_secs: Vec<f64> = Vec::new();
        let mut receivers = 0u64;
        let mut poisoned_receivers = 0u64;
        for node in 0..n {
            let d = sim.agent(node).delivery();
            if d.reattaches > 0 {
                node_reattach_secs.push(mean_secs_from_us(d.reattach_wait_us, d.reattaches));
            }
            total_dups += d.duplicate_packets;
            total_parent_dups += d.duplicate_from_parent;
            total_packets += d.total_packets;
            control_bytes += sim.traffic(node).control_bytes_in;
            recovery.orphan_detections += d.orphan_detections;
            recovery.reattaches += d.reattaches;
            recovery.reattach_wait_us += d.reattach_wait_us;
            recovery.orphan_window_packets += d.orphan_window_packets;
            recovery.control_retries += d.control_retries;
            recovery.false_positive_evictions += d.false_positive_evictions;
            recovery.blocks_verified += d.blocks_verified;
            recovery.corrupt_blocks_rejected += d.corrupt_blocks_rejected;
            recovery.corrupt_blocks_accepted += d.corrupt_blocks_accepted;
            recovery.quarantines += d.quarantines;
            recovery.inbox_sheds += d.inbox_sheds;
            recovery.joins_deferred += d.joins_deferred;
            recovery.joins_admitted_after_defer += d.joins_admitted_after_defer;
            recovery.peak_inbox_depth = recovery.peak_inbox_depth.max(d.peak_inbox_depth);
            recovery.working_set_evictions += d.working_set_evictions;
            recovery.slow_demotions += d.slow_demotions;
            if node != spec.source {
                receivers += 1;
                if d.corrupt_blocks_accepted > 0 {
                    poisoned_receivers += 1;
                }
                if generated > 0 {
                    delivery_fractions.push(d.useful_packets as f64 / generated as f64);
                }
            }
        }
        let stress = sim.network().stress_stats();
        let repair = sim.network().repair_stats();
        let ingress = sim.overload_stats();
        let duration_secs = spec.duration.as_secs_f64().max(1e-9);
        let summary = RunSummary {
            steady_useful_kbps: self.useful.steady_state_kbps(0.25),
            steady_raw_kbps: self.raw.steady_state_kbps(0.25),
            duplicate_fraction: ratio_or_zero(total_dups as f64, total_packets as f64),
            parent_relay_duplicate_share: ratio_or_zero(
                total_parent_dups as f64,
                total_dups as f64,
            ),
            control_overhead_kbps: control_bytes as f64 * 8.0 / duration_secs / 1_000.0 / n as f64,
            link_stress_mean: stress.mean,
            link_stress_max: stress.max,
            median_delivery_fraction: median_or_zero(delivery_fractions),
            orphan_detections: recovery.orphan_detections,
            reattaches: recovery.reattaches,
            mean_reattach_secs: mean_secs_from_us(recovery.reattach_wait_us, recovery.reattaches),
            median_reattach_secs: median_or_zero(node_reattach_secs),
            orphan_window_packets: recovery.orphan_window_packets,
            control_retries: recovery.control_retries,
            false_positive_evictions: recovery.false_positive_evictions,
            route_mutations: repair.route_mutations,
            routes_invalidated: repair.routes_invalidated,
            landmark_repairs: repair.landmark_repairs,
            blocks_verified: recovery.blocks_verified,
            corrupt_blocks_rejected: recovery.corrupt_blocks_rejected,
            corrupt_blocks_accepted: recovery.corrupt_blocks_accepted,
            quarantines: recovery.quarantines,
            inbox_sheds: recovery.inbox_sheds,
            joins_deferred: recovery.joins_deferred,
            joins_admitted_after_defer: recovery.joins_admitted_after_defer,
            peak_inbox_depth: recovery.peak_inbox_depth,
            working_set_evictions: recovery.working_set_evictions,
            slow_demotions: recovery.slow_demotions,
            ingress_sheds: ingress.dropped,
            ingress_peak_depth: ingress.peak_depth as u64,
            clean_goodput_kbps: {
                // Goodput credited only to *clean* receivers. Blocks feed
                // the downstream decoder, so a receiver whose working set
                // accepted even one tampered block reconstructs a poisoned
                // stream — its goodput is worthless, not merely diluted.
                // With the defense off this is most of the overlay; with
                // it on, verification keeps every working set clean.
                let clean_fraction = if receivers == 0 {
                    1.0
                } else {
                    (receivers - poisoned_receivers) as f64 / receivers as f64
                };
                self.useful.steady_state_kbps(0.25) * clean_fraction
            },
            sim_events: sim.counters().events,
            peak_queue_depth: profile.map_or(0, |p| p.peak_queue_depth),
            mean_queue_depth: profile.map_or(0.0, |p| p.mean_queue_depth),
        };

        RunResult {
            label: spec.label.clone(),
            times: self.times,
            useful: self.useful,
            raw: self.raw,
            from_parent: self.from_parent,
            per_node_useful_bytes: self.per_node_useful,
            per_node_fresh_bytes: self.per_node_fresh,
            source: spec.source,
            summary,
            routing: sim.network().routing_stats(),
            telemetry: captured,
        }
    }
}

/// Runs the simulation to completion while sampling every agent's delivery
/// counters, producing the standard [`RunResult`]. Telemetry switches
/// resolve from the environment (`BULLET_TRACE`, `BULLET_PROFILE`) — both
/// unset, the historical default, collects nothing.
pub fn run_metered<A: MeteredAgent>(sim: Sim<A>, spec: &RunSpec) -> RunResult {
    run_metered_with(sim, spec, &TelemetryConfig::from_env())
}

/// [`run_metered`] with explicit telemetry switches (the environment is
/// not consulted — tests use this to avoid racy env mutation).
pub fn run_metered_with<A: MeteredAgent>(
    mut sim: Sim<A>,
    spec: &RunSpec,
    telemetry: &TelemetryConfig,
) -> RunResult {
    if let Some(trace) = &telemetry.trace {
        sim.install_recorder(trace);
    }
    if telemetry.profile {
        sim.enable_profiling();
    }
    if let Some((at, node)) = spec.failure {
        sim.schedule_failure(at, node);
    }
    let mut meter = Meter::new(sim.agents().len(), spec);
    let end = SimTime::ZERO + spec.duration;
    let started = std::time::Instant::now();
    sim.run_sampled(end, spec.sample_interval, |now, sim| meter.sample(now, sim));
    let wall_secs = started.elapsed().as_secs_f64();
    meter.finish(&mut sim, spec, telemetry, wall_secs, 0.0)
}

/// Runs the simulation under a [`ScenarioScript`], sampling exactly like
/// [`run_metered`].
///
/// Crashes in the script pre-schedule through the simulator's event queue
/// before anything else — the same ordering as `RunSpec::failure` — so a
/// one-crash script reproduces the legacy failure injection event for
/// event. Lifecycle and link events apply between event-loop steps at
/// their scripted instants.
pub fn run_metered_dynamic<A>(sim: Sim<A>, spec: &RunSpec, script: &ScenarioScript) -> RunResult
where
    A: MeteredAgent + ScenarioAgent,
{
    run_metered_dynamic_with(sim, spec, script, &TelemetryConfig::from_env())
}

/// [`run_metered_dynamic`] with explicit telemetry switches.
pub fn run_metered_dynamic_with<A>(
    mut sim: Sim<A>,
    spec: &RunSpec,
    script: &ScenarioScript,
    telemetry: &TelemetryConfig,
) -> RunResult
where
    A: MeteredAgent + ScenarioAgent,
{
    if let Some(trace) = &telemetry.trace {
        sim.install_recorder(trace);
    }
    if telemetry.profile {
        sim.enable_profiling();
    }
    let mut driver = ScenarioDriver::new(script);
    driver.install(&mut sim);
    if let Some((at, node)) = spec.failure {
        sim.schedule_failure(at, node);
    }
    let mut meter = Meter::new(sim.agents().len(), spec);
    let end = SimTime::ZERO + spec.duration;
    let started = std::time::Instant::now();
    driver.run_sampled(&mut sim, end, spec.sample_interval, |now, sim| {
        meter.sample(now, sim)
    });
    let wall_secs = started.elapsed().as_secs_f64();
    meter.finish(
        &mut sim,
        spec,
        telemetry,
        wall_secs,
        driver.repair_wall_secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_baselines::{StreamConfig, StreamTransport};
    use bullet_netsim::{LinkSpec, NetworkSpec, SimRng};
    use bullet_overlay::random_tree;

    fn hub(n: usize, access_bps: f64) -> NetworkSpec {
        let mut spec = NetworkSpec::new(n + 1);
        for i in 0..n {
            spec.add_link(LinkSpec::new(
                n,
                i,
                access_bps,
                SimDuration::from_millis(10),
            ));
            spec.attach(i);
        }
        spec
    }

    fn streaming_sim(n: usize) -> Sim<StreamingNode> {
        let spec = hub(n, 2_000_000.0);
        let mut rng = SimRng::new(1);
        let tree = random_tree(n, 0, 3, &mut rng);
        let config = StreamConfig {
            stream_rate_bps: 400_000.0,
            stream_start: SimTime::from_secs(2),
            transport: StreamTransport::Tfrc,
            ..StreamConfig::default()
        };
        let agents = (0..n)
            .map(|i| StreamingNode::new(i, &tree, config.clone()))
            .collect();
        Sim::new(&spec, agents, 1)
    }

    fn streaming_spec(secs: u64) -> RunSpec {
        RunSpec {
            label: "streaming".into(),
            source: 0,
            duration: SimDuration::from_secs(secs),
            sample_interval: SimDuration::from_secs(2),
            failure: None,
        }
    }

    fn streaming_run(n: usize, secs: u64) -> RunResult {
        run_metered_with(
            streaming_sim(n),
            &streaming_spec(secs),
            &TelemetryConfig::disabled(),
        )
    }

    #[test]
    fn series_have_one_point_per_sample() {
        let result = streaming_run(8, 20);
        assert_eq!(result.times.len(), 10);
        assert_eq!(result.useful.kbps.len(), 10);
        assert_eq!(result.per_node_useful_bytes.len(), 10);
        assert_eq!(result.per_node_useful_bytes[0].len(), 8);
    }

    #[test]
    fn bandwidth_approaches_the_stream_rate() {
        let result = streaming_run(8, 40);
        let steady = result.steady_state_kbps();
        assert!(
            (250.0..=450.0).contains(&steady),
            "steady state {steady} Kbps for a 400 Kbps stream"
        );
        assert!(result.summary.median_delivery_fraction > 0.8);
    }

    #[test]
    fn cdf_reflects_per_node_rates() {
        let result = streaming_run(8, 40);
        let cdf = result.instantaneous_cdf(38.0);
        assert_eq!(cdf.values.len(), 7, "one sample per non-source node");
        assert!(cdf.quantile(0.5) > 200.0);
    }

    #[test]
    fn failure_injection_stops_a_node() {
        let spec = hub(6, 2_000_000.0);
        let mut rng = SimRng::new(2);
        let tree = random_tree(6, 0, 2, &mut rng);
        let config = StreamConfig {
            stream_rate_bps: 400_000.0,
            stream_start: SimTime::from_secs(2),
            ..StreamConfig::default()
        };
        let agents = (0..6)
            .map(|i| StreamingNode::new(i, &tree, config.clone()))
            .collect();
        let sim = Sim::new(&spec, agents, 2);
        let victim = tree.children(0)[0];
        let result = run_metered(
            sim,
            &RunSpec {
                label: "failure".into(),
                source: 0,
                duration: SimDuration::from_secs(30),
                sample_interval: SimDuration::from_secs(2),
                failure: Some((SimTime::from_secs(10), victim)),
            },
        );
        // The victim's cumulative useful bytes freeze after the failure.
        let idx_at_12 = result.times.iter().position(|&t| t >= 12.0).unwrap();
        let last = result.per_node_useful_bytes.last().unwrap()[victim];
        let at_12 = result.per_node_useful_bytes[idx_at_12][victim];
        assert_eq!(last, at_12, "failed node kept receiving data");
    }

    #[test]
    fn telemetry_off_run_carries_no_telemetry() {
        let result = streaming_run(6, 10);
        assert!(result.telemetry.is_none());
        assert!(result.summary.sim_events > 0, "sim_events always populated");
        assert_eq!(result.summary.peak_queue_depth, 0);
        assert_eq!(result.summary.mean_queue_depth, 0.0);
    }

    #[test]
    fn telemetry_observes_without_changing_the_run() {
        let plain = streaming_run(8, 20);
        let config = TelemetryConfig {
            trace: Some(TraceSpec::parse("all").unwrap()),
            profile: true,
        };
        let traced = run_metered_with(streaming_sim(8), &streaming_spec(20), &config);

        // Telemetry must be read-only: every sampled value matches.
        assert_eq!(traced.times, plain.times);
        assert_eq!(traced.useful, plain.useful);
        assert_eq!(traced.raw, plain.raw);
        assert_eq!(traced.from_parent, plain.from_parent);
        assert_eq!(traced.per_node_useful_bytes, plain.per_node_useful_bytes);
        assert_eq!(
            traced.summary.steady_useful_kbps,
            plain.summary.steady_useful_kbps
        );
        assert_eq!(traced.summary.sim_events, plain.summary.sim_events);

        let telemetry = traced.telemetry.expect("telemetry captured");
        assert!(!telemetry.trace_jsonl.is_empty());
        assert!(telemetry
            .series_jsonl
            .contains("\"series\":\"useful_kbps\""));
        let profile = telemetry.profile.expect("profile captured");
        assert_eq!(profile.events, traced.summary.sim_events);
        assert!(profile.peak_queue_depth > 0);
        assert_eq!(traced.summary.peak_queue_depth, profile.peak_queue_depth);
    }
}
