//! Generic experiment runner.
//!
//! Every protocol under evaluation (Bullet, tree streaming, gossip,
//! anti-entropy) exposes the same cumulative delivery counters through
//! [`MeteredAgent`]; the runner samples them on a fixed interval while the
//! simulation advances and turns them into the bandwidth-over-time series,
//! CDFs and scalar summaries the paper's figures are built from.

use bullet_baselines::{AntiEntropyNode, GossipNode, StreamingNode};
use bullet_core::BulletNode;
use bullet_dynamics::{ScenarioAgent, ScenarioDriver, ScenarioScript};
use bullet_netsim::{Agent, OverlayId, RoutingStats, Sim, SimDuration, SimTime};

use crate::metrics::{BandwidthSeries, Cdf, RunSummary};

/// A snapshot of one node's cumulative delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Delivery {
    /// Bytes received for the first time.
    pub useful_bytes: u64,
    /// Bytes received in total (including duplicates).
    pub raw_bytes: u64,
    /// Bytes received from the tree parent.
    pub from_parent_bytes: u64,
    /// Duplicate packets received.
    pub duplicate_packets: u64,
    /// Duplicates that arrived from the tree parent.
    pub duplicate_from_parent: u64,
    /// Total data packets received.
    pub total_packets: u64,
    /// Distinct sequence numbers received.
    pub useful_packets: u64,
    /// Packets generated (source only).
    pub packets_generated: u64,
    /// Orphan detections (§4.6 recovery; zero for baselines).
    pub orphan_detections: u64,
    /// Completed orphan re-attaches.
    pub reattaches: u64,
    /// Cumulative microseconds between orphan detection and re-attach.
    pub reattach_wait_us: u64,
    /// Useful packets received from the mesh while orphaned.
    pub orphan_window_packets: u64,
    /// Control RPCs re-sent after a timeout.
    pub control_retries: u64,
    /// Silence-evicted peers later heard from again.
    pub false_positive_evictions: u64,
    /// Data packets whose carried digest was checked (zero for baselines).
    pub blocks_verified: u64,
    /// Corrupted blocks rejected on receive (integrity layer on).
    pub corrupt_blocks_rejected: u64,
    /// Corrupted blocks accepted into the working set (integrity layer off).
    pub corrupt_blocks_accepted: u64,
    /// Peers quarantined for misbehavior.
    pub quarantines: u64,
}

/// A protocol agent whose delivery progress the runner can observe.
pub trait MeteredAgent: Agent {
    /// Returns the node's cumulative delivery counters.
    fn delivery(&self) -> Delivery;
}

impl MeteredAgent for BulletNode {
    fn delivery(&self) -> Delivery {
        let m = &self.metrics;
        Delivery {
            useful_bytes: m.useful_bytes,
            raw_bytes: m.raw_bytes,
            from_parent_bytes: m.from_parent_bytes,
            duplicate_packets: m.duplicate_packets,
            duplicate_from_parent: m.duplicate_from_parent,
            total_packets: m.total_packets,
            useful_packets: m.useful_packets,
            packets_generated: m.packets_generated,
            orphan_detections: m.orphan_detections,
            reattaches: m.reattaches,
            reattach_wait_us: m.reattach_wait_us,
            orphan_window_packets: m.orphan_window_packets,
            control_retries: m.control_retries,
            false_positive_evictions: m.false_positive_evictions,
            blocks_verified: m.blocks_verified,
            corrupt_blocks_rejected: m.corrupt_blocks_rejected,
            corrupt_blocks_accepted: m.corrupt_blocks_accepted,
            quarantines: m.quarantines,
        }
    }
}

macro_rules! impl_metered_for_baseline {
    ($ty:ty) => {
        impl MeteredAgent for $ty {
            fn delivery(&self) -> Delivery {
                let m = &self.metrics;
                Delivery {
                    useful_bytes: m.useful_bytes,
                    raw_bytes: m.raw_bytes,
                    from_parent_bytes: m.from_parent_bytes,
                    duplicate_packets: m.duplicate_packets,
                    duplicate_from_parent: 0,
                    total_packets: m.total_packets,
                    useful_packets: m.useful_packets,
                    packets_generated: m.packets_generated,
                    ..Delivery::default()
                }
            }
        }
    };
}

impl_metered_for_baseline!(StreamingNode);
impl_metered_for_baseline!(GossipNode);
impl_metered_for_baseline!(AntiEntropyNode);

/// The full outcome of one run: per-curve series plus scalar summary.
///
/// `PartialEq` compares every sampled value bit for bit — the
/// thread-invariance gates assert whole `RunResult`s equal across
/// `BULLET_THREADS` settings.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Curve label.
    pub label: String,
    /// Sample times in seconds.
    pub times: Vec<f64>,
    /// Average per-node useful bandwidth over time.
    pub useful: BandwidthSeries,
    /// Average per-node raw bandwidth over time.
    pub raw: BandwidthSeries,
    /// Average per-node bandwidth received from the tree parent over time.
    pub from_parent: BandwidthSeries,
    /// Per-sample, per-node cumulative useful bytes (`[sample][node]`),
    /// source included; used to derive CDFs at arbitrary instants.
    pub per_node_useful_bytes: Vec<Vec<u64>>,
    /// The source node (excluded from per-node averages).
    pub source: OverlayId,
    /// Scalar summary of the run.
    pub summary: RunSummary,
    /// Routing work the underlying network performed. At `BULLET_SCALE=paper`
    /// this is how harnesses verify that no per-source shortest-path tree
    /// was ever materialized (`trees_built == 0`).
    pub routing: RoutingStats,
}

impl RunResult {
    /// CDF of per-node instantaneous useful bandwidth (Kbps) over the sample
    /// interval ending closest to `at_secs` (Fig. 8).
    pub fn instantaneous_cdf(&self, at_secs: f64) -> Cdf {
        if self.per_node_useful_bytes.len() < 2 {
            return Cdf::from_samples(Vec::new());
        }
        let idx = self
            .times
            .iter()
            .position(|&t| t >= at_secs)
            .unwrap_or(self.times.len() - 1)
            .max(1);
        let dt = (self.times[idx] - self.times[idx - 1]).max(1e-9);
        let now = &self.per_node_useful_bytes[idx];
        let before = &self.per_node_useful_bytes[idx - 1];
        let samples: Vec<f64> = now
            .iter()
            .zip(before)
            .enumerate()
            .filter(|(node, _)| *node != self.source)
            .map(|(_, (&a, &b))| (a.saturating_sub(b)) as f64 * 8.0 / dt / 1_000.0)
            .collect();
        Cdf::from_samples(samples)
    }

    /// Mean useful bandwidth over the last quarter of the run, in Kbps.
    pub fn steady_state_kbps(&self) -> f64 {
        self.useful.steady_state_kbps(0.25)
    }
}

/// Parameters of one metered run.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Curve label used in reports.
    pub label: String,
    /// The source node.
    pub source: OverlayId,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Sampling interval.
    pub sample_interval: SimDuration,
    /// Optional crash failure to inject: `(time, node)`.
    pub failure: Option<(SimTime, OverlayId)>,
}

/// The sampling state of one metered run, shared between the static
/// ([`run_metered`]) and scenario-driven ([`run_metered_dynamic`]) drivers.
struct Meter {
    n: usize,
    source: OverlayId,
    times: Vec<f64>,
    per_node_useful: Vec<Vec<u64>>,
    per_node_raw_prev: Vec<u64>,
    per_node_useful_prev: Vec<u64>,
    per_node_parent_prev: Vec<u64>,
    useful: BandwidthSeries,
    raw: BandwidthSeries,
    from_parent: BandwidthSeries,
    last_t: f64,
}

impl Meter {
    fn new(n: usize, spec: &RunSpec) -> Self {
        Meter {
            n,
            source: spec.source,
            times: Vec::new(),
            per_node_useful: Vec::new(),
            per_node_raw_prev: vec![0; n],
            per_node_useful_prev: vec![0; n],
            per_node_parent_prev: vec![0; n],
            useful: BandwidthSeries::new(spec.label.clone()),
            raw: BandwidthSeries::new(format!("{} (raw)", spec.label)),
            from_parent: BandwidthSeries::new(format!("{} (from parent)", spec.label)),
            last_t: 0.0,
        }
    }

    fn sample<A: MeteredAgent>(&mut self, now: SimTime, sim: &Sim<A>) {
        let t = now.as_secs_f64();
        let dt = (t - self.last_t).max(1e-9);
        self.last_t = t;
        let mut useful_sum = 0.0;
        let mut raw_sum = 0.0;
        let mut parent_sum = 0.0;
        let mut row = Vec::with_capacity(self.n);
        for node in 0..self.n {
            let d = sim.agent(node).delivery();
            row.push(d.useful_bytes);
            if node != self.source {
                useful_sum += (d.useful_bytes - self.per_node_useful_prev[node]) as f64;
                raw_sum += (d.raw_bytes - self.per_node_raw_prev[node]) as f64;
                parent_sum += (d.from_parent_bytes - self.per_node_parent_prev[node]) as f64;
            }
            self.per_node_useful_prev[node] = d.useful_bytes;
            self.per_node_raw_prev[node] = d.raw_bytes;
            self.per_node_parent_prev[node] = d.from_parent_bytes;
        }
        let receivers = (self.n.saturating_sub(1)).max(1) as f64;
        self.useful
            .push(t, useful_sum * 8.0 / dt / 1_000.0 / receivers);
        self.raw.push(t, raw_sum * 8.0 / dt / 1_000.0 / receivers);
        self.from_parent
            .push(t, parent_sum * 8.0 / dt / 1_000.0 / receivers);
        self.times.push(t);
        self.per_node_useful.push(row);
    }

    fn finish<A: MeteredAgent>(self, sim: &Sim<A>, spec: &RunSpec) -> RunResult {
        let n = self.n;
        let mut total_dups = 0u64;
        let mut total_parent_dups = 0u64;
        let mut total_packets = 0u64;
        let mut delivery_fractions: Vec<f64> = Vec::new();
        let generated = sim.agent(spec.source).delivery().packets_generated;
        let mut control_bytes = 0u64;
        let mut recovery = Delivery::default();
        let mut node_reattach_secs: Vec<f64> = Vec::new();
        let mut receivers = 0u64;
        let mut poisoned_receivers = 0u64;
        for node in 0..n {
            let d = sim.agent(node).delivery();
            if d.reattaches > 0 {
                node_reattach_secs.push(d.reattach_wait_us as f64 / 1e6 / d.reattaches as f64);
            }
            total_dups += d.duplicate_packets;
            total_parent_dups += d.duplicate_from_parent;
            total_packets += d.total_packets;
            control_bytes += sim.traffic(node).control_bytes_in;
            recovery.orphan_detections += d.orphan_detections;
            recovery.reattaches += d.reattaches;
            recovery.reattach_wait_us += d.reattach_wait_us;
            recovery.orphan_window_packets += d.orphan_window_packets;
            recovery.control_retries += d.control_retries;
            recovery.false_positive_evictions += d.false_positive_evictions;
            recovery.blocks_verified += d.blocks_verified;
            recovery.corrupt_blocks_rejected += d.corrupt_blocks_rejected;
            recovery.corrupt_blocks_accepted += d.corrupt_blocks_accepted;
            recovery.quarantines += d.quarantines;
            if node != spec.source {
                receivers += 1;
                if d.corrupt_blocks_accepted > 0 {
                    poisoned_receivers += 1;
                }
                if generated > 0 {
                    delivery_fractions.push(d.useful_packets as f64 / generated as f64);
                }
            }
        }
        delivery_fractions.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let stress = sim.network().stress_stats();
        let repair = sim.network().repair_stats();
        let duration_secs = spec.duration.as_secs_f64().max(1e-9);
        let summary = RunSummary {
            steady_useful_kbps: self.useful.steady_state_kbps(0.25),
            steady_raw_kbps: self.raw.steady_state_kbps(0.25),
            duplicate_fraction: if total_packets == 0 {
                0.0
            } else {
                total_dups as f64 / total_packets as f64
            },
            parent_relay_duplicate_share: if total_dups == 0 {
                0.0
            } else {
                total_parent_dups as f64 / total_dups as f64
            },
            control_overhead_kbps: control_bytes as f64 * 8.0 / duration_secs / 1_000.0 / n as f64,
            link_stress_mean: stress.mean,
            link_stress_max: stress.max,
            median_delivery_fraction: delivery_fractions
                .get(delivery_fractions.len() / 2)
                .copied()
                .unwrap_or(0.0),
            orphan_detections: recovery.orphan_detections,
            reattaches: recovery.reattaches,
            mean_reattach_secs: if recovery.reattaches == 0 {
                0.0
            } else {
                recovery.reattach_wait_us as f64 / 1e6 / recovery.reattaches as f64
            },
            median_reattach_secs: {
                node_reattach_secs
                    .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                node_reattach_secs
                    .get(node_reattach_secs.len() / 2)
                    .copied()
                    .unwrap_or(0.0)
            },
            orphan_window_packets: recovery.orphan_window_packets,
            control_retries: recovery.control_retries,
            false_positive_evictions: recovery.false_positive_evictions,
            route_mutations: repair.route_mutations,
            routes_invalidated: repair.routes_invalidated,
            landmark_repairs: repair.landmark_repairs,
            blocks_verified: recovery.blocks_verified,
            corrupt_blocks_rejected: recovery.corrupt_blocks_rejected,
            corrupt_blocks_accepted: recovery.corrupt_blocks_accepted,
            quarantines: recovery.quarantines,
            clean_goodput_kbps: {
                // Goodput credited only to *clean* receivers. Blocks feed
                // the downstream decoder, so a receiver whose working set
                // accepted even one tampered block reconstructs a poisoned
                // stream — its goodput is worthless, not merely diluted.
                // With the defense off this is most of the overlay; with
                // it on, verification keeps every working set clean.
                let clean_fraction = if receivers == 0 {
                    1.0
                } else {
                    (receivers - poisoned_receivers) as f64 / receivers as f64
                };
                self.useful.steady_state_kbps(0.25) * clean_fraction
            },
        };

        RunResult {
            label: spec.label.clone(),
            times: self.times,
            useful: self.useful,
            raw: self.raw,
            from_parent: self.from_parent,
            per_node_useful_bytes: self.per_node_useful,
            source: spec.source,
            summary,
            routing: sim.network().routing_stats(),
        }
    }
}

/// Runs the simulation to completion while sampling every agent's delivery
/// counters, producing the standard [`RunResult`].
pub fn run_metered<A: MeteredAgent>(mut sim: Sim<A>, spec: &RunSpec) -> RunResult {
    if let Some((at, node)) = spec.failure {
        sim.schedule_failure(at, node);
    }
    let mut meter = Meter::new(sim.agents().len(), spec);
    let end = SimTime::ZERO + spec.duration;
    sim.run_sampled(end, spec.sample_interval, |now, sim| meter.sample(now, sim));
    meter.finish(&sim, spec)
}

/// Runs the simulation under a [`ScenarioScript`], sampling exactly like
/// [`run_metered`].
///
/// Crashes in the script pre-schedule through the simulator's event queue
/// before anything else — the same ordering as `RunSpec::failure` — so a
/// one-crash script reproduces the legacy failure injection event for
/// event. Lifecycle and link events apply between event-loop steps at
/// their scripted instants.
pub fn run_metered_dynamic<A>(mut sim: Sim<A>, spec: &RunSpec, script: &ScenarioScript) -> RunResult
where
    A: MeteredAgent + ScenarioAgent,
{
    let mut driver = ScenarioDriver::new(script);
    driver.install(&mut sim);
    if let Some((at, node)) = spec.failure {
        sim.schedule_failure(at, node);
    }
    let mut meter = Meter::new(sim.agents().len(), spec);
    let end = SimTime::ZERO + spec.duration;
    driver.run_sampled(&mut sim, end, spec.sample_interval, |now, sim| {
        meter.sample(now, sim)
    });
    meter.finish(&sim, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_baselines::{StreamConfig, StreamTransport};
    use bullet_netsim::{LinkSpec, NetworkSpec, SimRng};
    use bullet_overlay::random_tree;

    fn hub(n: usize, access_bps: f64) -> NetworkSpec {
        let mut spec = NetworkSpec::new(n + 1);
        for i in 0..n {
            spec.add_link(LinkSpec::new(
                n,
                i,
                access_bps,
                SimDuration::from_millis(10),
            ));
            spec.attach(i);
        }
        spec
    }

    fn streaming_run(n: usize, secs: u64) -> RunResult {
        let spec = hub(n, 2_000_000.0);
        let mut rng = SimRng::new(1);
        let tree = random_tree(n, 0, 3, &mut rng);
        let config = StreamConfig {
            stream_rate_bps: 400_000.0,
            stream_start: SimTime::from_secs(2),
            transport: StreamTransport::Tfrc,
            ..StreamConfig::default()
        };
        let agents = (0..n)
            .map(|i| StreamingNode::new(i, &tree, config.clone()))
            .collect();
        let sim = Sim::new(&spec, agents, 1);
        run_metered(
            sim,
            &RunSpec {
                label: "streaming".into(),
                source: 0,
                duration: SimDuration::from_secs(secs),
                sample_interval: SimDuration::from_secs(2),
                failure: None,
            },
        )
    }

    #[test]
    fn series_have_one_point_per_sample() {
        let result = streaming_run(8, 20);
        assert_eq!(result.times.len(), 10);
        assert_eq!(result.useful.kbps.len(), 10);
        assert_eq!(result.per_node_useful_bytes.len(), 10);
        assert_eq!(result.per_node_useful_bytes[0].len(), 8);
    }

    #[test]
    fn bandwidth_approaches_the_stream_rate() {
        let result = streaming_run(8, 40);
        let steady = result.steady_state_kbps();
        assert!(
            (250.0..=450.0).contains(&steady),
            "steady state {steady} Kbps for a 400 Kbps stream"
        );
        assert!(result.summary.median_delivery_fraction > 0.8);
    }

    #[test]
    fn cdf_reflects_per_node_rates() {
        let result = streaming_run(8, 40);
        let cdf = result.instantaneous_cdf(38.0);
        assert_eq!(cdf.values.len(), 7, "one sample per non-source node");
        assert!(cdf.quantile(0.5) > 200.0);
    }

    #[test]
    fn failure_injection_stops_a_node() {
        let spec = hub(6, 2_000_000.0);
        let mut rng = SimRng::new(2);
        let tree = random_tree(6, 0, 2, &mut rng);
        let config = StreamConfig {
            stream_rate_bps: 400_000.0,
            stream_start: SimTime::from_secs(2),
            ..StreamConfig::default()
        };
        let agents = (0..6)
            .map(|i| StreamingNode::new(i, &tree, config.clone()))
            .collect();
        let sim = Sim::new(&spec, agents, 2);
        let victim = tree.children(0)[0];
        let result = run_metered(
            sim,
            &RunSpec {
                label: "failure".into(),
                source: 0,
                duration: SimDuration::from_secs(30),
                sample_interval: SimDuration::from_secs(2),
                failure: Some((SimTime::from_secs(10), victim)),
            },
        );
        // The victim's cumulative useful bytes freeze after the failure.
        let idx_at_12 = result.times.iter().position(|&t| t >= 12.0).unwrap();
        let last = result.per_node_useful_bytes.last().unwrap()[victim];
        let at_12 = result.per_node_useful_bytes[idx_at_12][victim];
        assert_eq!(last, at_12, "failed node kept receiving data");
    }
}
