//! Experiment scale selection.
//!
//! The paper's ModelNet runs use 20,000-router topologies with 1,000 overlay
//! participants and 400–500 second runs — feasible on a 50-machine cluster,
//! slow on one laptop. Every figure harness therefore supports three scales;
//! the default keeps a full `cargo bench` run in the minutes range while
//! preserving the qualitative shape of every result. Set `BULLET_SCALE=paper`
//! to reproduce the paper-sized runs.

use bullet_netsim::RoutingMode;

/// How large an experiment to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs used by integration tests (tens of nodes, ~90 s).
    Small,
    /// Default benchmarking scale (≈60 participants, ~200 s).
    Default,
    /// The paper's scale (≈1,000 participants on a ≈20,000-router topology).
    Paper,
}

impl Scale {
    /// Reads the scale from the `BULLET_SCALE` environment variable
    /// (`small`, `default`, or `paper`); unknown or missing values map to
    /// [`Scale::Default`].
    pub fn from_env() -> Scale {
        match std::env::var("BULLET_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("paper") | Ok("full") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Number of overlay participants at this scale (the paper's headline
    /// experiments use 1,000).
    pub fn participants(self) -> usize {
        match self {
            Scale::Small => 30,
            Scale::Default => 60,
            Scale::Paper => 1_000,
        }
    }

    /// Participants for the epidemic comparison (the paper's Fig. 11 uses
    /// 100 participants on a 5,000-node topology).
    pub fn epidemic_participants(self) -> usize {
        match self {
            Scale::Small => 25,
            Scale::Default => 50,
            Scale::Paper => 100,
        }
    }

    /// Duration of one run, in seconds (the paper streams for 300–500 s).
    pub fn duration_secs(self) -> u64 {
        match self {
            Scale::Small => 90,
            Scale::Default => 200,
            Scale::Paper => 400,
        }
    }

    /// Time at which the source starts streaming (the paper waits 50–100 s
    /// for the overlay to settle).
    pub fn stream_start_secs(self) -> u64 {
        match self {
            Scale::Small => 10,
            Scale::Default => 20,
            Scale::Paper => 100,
        }
    }

    /// Sampling interval for bandwidth-over-time series, in seconds.
    pub fn sample_secs(self) -> u64 {
        match self {
            Scale::Small => 2,
            Scale::Default => 5,
            Scale::Paper => 5,
        }
    }

    /// The routing strategy appropriate for this scale's topologies. Small
    /// and default topologies keep the eager per-source Dijkstra trees; the
    /// paper's 20,000-router topologies use lazy landmark-guided
    /// bidirectional search, so no figure ever precomputes 20k shortest-path
    /// trees. `Sim::new` resolves the same choice automatically from the
    /// router count ([`RoutingMode::auto`]); this accessor exists for
    /// harnesses that construct networks explicitly. Paths are identical
    /// across modes.
    pub fn routing_mode(self) -> RoutingMode {
        match self {
            Scale::Small | Scale::Default => RoutingMode::EagerPerSource,
            Scale::Paper => RoutingMode::LazyAlt {
                landmarks: RoutingMode::DEFAULT_LANDMARKS,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper_parameters() {
        assert_eq!(Scale::Paper.participants(), 1_000);
        assert_eq!(Scale::Paper.epidemic_participants(), 100);
        assert!(Scale::Paper.duration_secs() >= 400);
        assert_eq!(Scale::Paper.stream_start_secs(), 100);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.participants() < Scale::Default.participants());
        assert!(Scale::Default.participants() < Scale::Paper.participants());
        assert!(Scale::Small.duration_secs() < Scale::Paper.duration_secs());
    }

    #[test]
    fn stream_start_is_before_the_end_of_the_run() {
        for scale in [Scale::Small, Scale::Default, Scale::Paper] {
            assert!(scale.stream_start_secs() < scale.duration_secs());
        }
    }

    #[test]
    fn paper_scale_routes_lazily() {
        assert_eq!(Scale::Default.routing_mode(), RoutingMode::EagerPerSource);
        assert!(matches!(
            Scale::Paper.routing_mode(),
            RoutingMode::LazyAlt { landmarks } if landmarks > 0
        ));
    }
}
