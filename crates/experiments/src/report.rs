//! Plain-text rendering of figure results.
//!
//! The bench harnesses print these reports; they contain the same series the
//! paper plots (one column per curve) so they can be diffed against the
//! figures or piped into a plotting tool.

use crate::figures::FigureResult;
use crate::metrics::Cdf;

/// Renders a figure result: title, a time-indexed table with one column per
/// curve, the scalar summaries and the notes.
pub fn render_figure(figure: &FigureResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} — {} ==\n", figure.id, figure.title));
    if !figure.series.is_empty() {
        // Header.
        out.push_str(&format!("{:>8}", "time(s)"));
        for series in &figure.series {
            out.push_str(&format!("  {:>28}", truncate(&series.label, 28)));
        }
        out.push('\n');
        let rows = figure
            .series
            .iter()
            .map(|s| s.times.len())
            .max()
            .unwrap_or(0);
        for row in 0..rows {
            let time = figure
                .series
                .iter()
                .find_map(|s| s.times.get(row))
                .copied()
                .unwrap_or(0.0);
            out.push_str(&format!("{time:>8.1}"));
            for series in &figure.series {
                match series.kbps.get(row) {
                    Some(v) => out.push_str(&format!("  {v:>28.1}")),
                    None => out.push_str(&format!("  {:>28}", "-")),
                }
            }
            out.push('\n');
        }
    }
    if !figure.summaries.is_empty() {
        out.push_str("\nSummary (per run):\n");
        for (label, summary) in &figure.summaries {
            out.push_str(&format!(
                "  {label}: useful {:.0} Kbps, raw {:.0} Kbps, duplicates {:.1}%, control {:.1} Kbps/node, stress mean {:.2} max {}, median delivery {:.0}%\n",
                summary.steady_useful_kbps,
                summary.steady_raw_kbps,
                summary.duplicate_fraction * 100.0,
                summary.control_overhead_kbps,
                summary.link_stress_mean,
                summary.link_stress_max,
                summary.median_delivery_fraction * 100.0,
            ));
        }
    }
    if !figure.notes.is_empty() {
        out.push_str("\nNotes:\n");
        for note in &figure.notes {
            out.push_str(&format!("  - {note}\n"));
        }
    }
    out
}

/// Renders a CDF as `(bandwidth Kbps, fraction of nodes)` rows (Fig. 8).
pub fn render_cdf(title: &str, cdf: &Cdf) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{:>14}  {:>18}\n", "kbps", "fraction of nodes"));
    for (value, fraction) in cdf.points() {
        out.push_str(&format!("{value:>14.1}  {fraction:>18.3}\n"));
    }
    out
}

/// Renders Table 1.
pub fn render_table1(rows: &[(String, String, u32, u32)]) -> String {
    let mut out = String::new();
    out.push_str("== Table 1 — Bandwidth ranges for link types (Kbps) ==\n");
    out.push_str(&format!(
        "{:<18}  {:<16}  {:>8}  {:>8}\n",
        "Profile", "Link class", "low", "high"
    ));
    for (profile, class, low, high) in rows {
        out.push_str(&format!(
            "{profile:<18}  {class:<16}  {low:>8}  {high:>8}\n"
        ));
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let head: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{BandwidthSeries, RunSummary};

    #[test]
    fn renders_series_and_notes() {
        let mut figure = FigureResult {
            id: "figX".into(),
            title: "Test figure".into(),
            ..FigureResult::default()
        };
        let mut a = BandwidthSeries::new("Bullet");
        a.push(0.0, 0.0);
        a.push(5.0, 450.5);
        let mut b = BandwidthSeries::new("Tree");
        b.push(0.0, 0.0);
        b.push(5.0, 210.0);
        figure.series.push(a);
        figure.series.push(b);
        figure
            .summaries
            .push(("Bullet".into(), RunSummary::default()));
        figure.notes.push("Bullet wins".into());
        let text = render_figure(&figure);
        assert!(text.contains("figX"));
        assert!(text.contains("Bullet"));
        assert!(text.contains("450.5"));
        assert!(text.contains("Bullet wins"));
    }

    #[test]
    fn renders_cdf_points() {
        let cdf = Cdf::from_samples(vec![100.0, 200.0]);
        let text = render_cdf("Fig 8", &cdf);
        assert!(text.contains("Fig 8"));
        assert!(text.contains("100.0"));
        assert!(text.contains("1.000"));
    }

    #[test]
    fn renders_table1() {
        let rows = crate::figures::table1_rows();
        let text = render_table1(&rows);
        assert!(text.contains("Client-Stub"));
        assert!(text.contains("20000") || text.contains("20_000") || text.contains("20000"));
    }

    #[test]
    fn long_labels_are_truncated() {
        assert_eq!(truncate("short", 28), "short");
        let long = "a".repeat(60);
        assert!(truncate(&long, 28).chars().count() <= 28);
    }
}
