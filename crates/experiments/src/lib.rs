//! # bullet-experiments
//!
//! Scenario configuration, metric collection and per-figure experiment
//! runners for the Bullet reproduction.
//!
//! Every table and figure of the paper's evaluation (§4) has a function in
//! [`figures`] that builds the topology and trees the paper describes, runs
//! the systems under comparison at a configurable [`Scale`], and returns the
//! same curves and scalar numbers the paper reports. The bench harnesses in
//! `crates/bench` print these via [`report`]; EXPERIMENTS.md records
//! paper-versus-measured for each.

#![warn(missing_docs)]

pub mod env;
pub mod figures;
pub mod metrics;
pub mod pool;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scenarios;
pub mod suite;

pub use env::{
    build_topology, build_tree, constrained_source_topology, integrity_enabled, overload_enabled,
    prepare_topology, profile_enabled, PreparedSpec, PreparedTopology, TreeKind,
};
pub use figures::{quick_bullet_demo, FigureResult};
pub use metrics::{BandwidthSeries, Cdf, RunSummary};
pub use pool::{RunPool, Sweep};
pub use protocols::{
    antientropy_run, antientropy_run_on, bullet_run, bullet_run_on, bullet_run_scenario,
    bullet_run_scenario_on, bullet_run_scenario_resourced_on, gossip_run, gossip_run_on,
    streaming_run, streaming_run_on, streaming_run_scenario, streaming_run_scenario_on,
};
pub use runner::{
    run_metered, run_metered_dynamic, run_metered_dynamic_with, run_metered_with, Delivery,
    MeteredAgent, RunResult, RunSpec, RunTelemetry, TelemetryConfig,
};
pub use scale::Scale;
pub use scenarios::{
    access_link_of, adversary_figure, churn_figure, flash_crowd_figure,
    oscillating_bottleneck_figure, overload_figure, overload_figure_knobs, partition_figure,
    recovery_figure, sustained_crash_script, ADVERSARY_CORRUPT_CHANCE, ADVERSARY_FRACTIONS,
    OVERLOAD_NODE_RESOURCES, OVERLOAD_SLOW_FACTOR, RECOVERY_CRASH_EVERY_SECS,
};
pub use suite::{figure_suite, figure_suite_subset, render_suite, SUITE_PLAN_KEYS};
