//! # bullet-experiments
//!
//! Scenario configuration, metric collection and per-figure experiment
//! runners for the Bullet reproduction.
//!
//! Every table and figure of the paper's evaluation (§4) has a function in
//! [`figures`] that builds the topology and trees the paper describes, runs
//! the systems under comparison at a configurable [`Scale`], and returns the
//! same curves and scalar numbers the paper reports. The bench harnesses in
//! `crates/bench` print these via [`report`]; EXPERIMENTS.md records
//! paper-versus-measured for each.

#![warn(missing_docs)]

pub mod env;
pub mod figures;
pub mod metrics;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod scale;

pub use env::{build_topology, build_tree, constrained_source_topology, TreeKind};
pub use figures::{quick_bullet_demo, FigureResult};
pub use metrics::{BandwidthSeries, Cdf, RunSummary};
pub use protocols::{antientropy_run, bullet_run, gossip_run, streaming_run};
pub use runner::{run_metered, Delivery, MeteredAgent, RunResult, RunSpec};
pub use scale::Scale;
