//! The figure suite: every figure of the evaluation as one flattened,
//! parallel, deterministic run grid.
//!
//! [`figure_suite`] concatenates the run grids of every figure plan
//! (paper figures 6–15, the ablations, and the scenario-dynamics figures)
//! and executes them on a single [`RunPool`](crate::pool::RunPool) — the
//! pool packs long and short runs onto workers greedily, so the whole
//! evaluation saturates the machine instead of each figure draining its
//! own small grid. Results are collected in task order and each figure is
//! assembled from its own ordered slice, so the suite's output — every
//! [`FigureResult`] and every rendered report byte — is identical at any
//! `BULLET_THREADS` setting (`tests/parallel.rs` gates this at 1 vs 8
//! threads).

use crate::figures::{
    ablations_plan, failure_figure_plan, fig06_plan, fig07and08_plan, fig09_plan, fig10_plan,
    fig11_plan, fig12_plan, fig15_plan, FigurePlan, FigureResult,
};
use crate::pool::Sweep;
use crate::report::render_figure;
use crate::scale::Scale;
use crate::scenarios::{
    adversary_plan, churn_plan, flash_crowd_plan, oscillating_bottleneck_plan, overload_plan,
    partition_plan, recovery_plan,
};

/// The plan keys of the full suite, in assembly order. Subset requests
/// ([`figure_suite_subset`]) name plans by these keys; the `fig07` plan
/// also emits `fig08` (the CDF is derived from the Fig. 7 run).
pub const SUITE_PLAN_KEYS: &[&str] = &[
    "fig06",
    "fig07",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablations",
    "churn",
    "flashcrowd",
    "oscillation",
    "recovery",
    "partition",
    "adversary",
    "overload",
];

/// Builds the plans selected by `keys` (see [`SUITE_PLAN_KEYS`]).
///
/// Plan construction is itself grid work — it generates the figure's
/// topology, builds its shared `NetworkSetup`, and runs the oracle tree
/// constructions, which dominate per-figure setup at paper scale — so the
/// plans are built as pool tasks too, one per key, before the flattened
/// run grid starts. Each plan builder is deterministic and independent,
/// and results come back in key order, so this changes nothing about the
/// output.
///
/// # Panics
///
/// Panics on an unknown key — a silently skipped figure would make a
/// "suite is bit-identical" claim vacuous.
fn plans_for(scale: Scale, sweep: &Sweep, keys: &[&str]) -> Vec<FigurePlan> {
    let builders: Vec<crate::pool::Task<'_, FigurePlan>> = keys
        .iter()
        .map(|&key| {
            Box::new(move || match key {
                "fig06" => fig06_plan(scale, sweep),
                "fig07" => fig07and08_plan(scale, sweep),
                "fig09" => fig09_plan(scale, sweep),
                "fig10" => fig10_plan(scale, sweep),
                "fig11" => fig11_plan(scale, sweep),
                "fig12" => fig12_plan(scale, sweep),
                "fig13" => failure_figure_plan(scale, sweep, false),
                "fig14" => failure_figure_plan(scale, sweep, true),
                "fig15" => fig15_plan(scale, sweep),
                "ablations" => ablations_plan(scale, sweep),
                "churn" => churn_plan(scale, sweep),
                "flashcrowd" => flash_crowd_plan(scale, sweep),
                "oscillation" => oscillating_bottleneck_plan(scale, sweep),
                "recovery" => recovery_plan(scale, sweep),
                "partition" => partition_plan(scale, sweep),
                "adversary" => adversary_plan(scale, sweep),
                "overload" => overload_plan(scale, sweep),
                other => panic!("unknown figure plan key {other:?} (see SUITE_PLAN_KEYS)"),
            }) as crate::pool::Task<'_, FigurePlan>
        })
        .collect();
    sweep.pool().run(builders)
}

/// Runs the full figure suite (see the module docs) and returns the
/// assembled figures in [`SUITE_PLAN_KEYS`] order.
pub fn figure_suite(scale: Scale, sweep: &Sweep) -> Vec<FigureResult> {
    figure_suite_subset(scale, SUITE_PLAN_KEYS, sweep)
}

/// Runs the named subset of the suite as one flattened grid (used by the
/// thread-invariance tests and quick benches; keys per [`SUITE_PLAN_KEYS`]).
pub fn figure_suite_subset(scale: Scale, keys: &[&str], sweep: &Sweep) -> Vec<FigureResult> {
    let plans = plans_for(scale, sweep, keys);
    let mut tasks = Vec::new();
    let mut grid_widths = Vec::new();
    let mut assembles = Vec::new();
    for plan in plans {
        grid_widths.push(plan.task_count());
        let (plan_tasks, assemble) = plan.into_parts();
        tasks.extend(plan_tasks);
        assembles.push(assemble);
    }
    let mut results = sweep.pool().run(tasks);
    let mut figures = Vec::new();
    for (width, assemble) in grid_widths.into_iter().zip(assembles) {
        let rest = results.split_off(width);
        let own = std::mem::replace(&mut results, rest);
        figures.extend(assemble(own));
    }
    figures
}

/// Renders a whole suite the way the per-figure benches do, one report
/// after another. Byte-identical across thread counts by construction;
/// the thread-invariance gate compares these strings directly.
pub fn render_suite(figures: &[FigureResult]) -> String {
    let mut out = String::new();
    for figure in figures {
        out.push_str(&render_figure(figure));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "unknown figure plan key")]
    fn unknown_subset_keys_are_rejected() {
        figure_suite_subset(Scale::Small, &["fig99"], &Sweep::serial());
    }

    #[test]
    fn subset_runs_one_flattened_grid() {
        // The cheapest real subset: one figure, one seed, serial — the
        // reference execution. (Thread invariance of the same subset is
        // gated in tests/parallel.rs at the workspace level.)
        let figures = figure_suite_subset(Scale::Small, &["fig06"], &Sweep::serial());
        assert_eq!(figures.len(), 1);
        assert_eq!(figures[0].id, "fig06");
        assert_eq!(figures[0].series.len(), 2);
    }
}
