//! Scenario-dynamics experiment figures (beyond the paper's evaluation).
//!
//! The paper freezes the network for the length of every run and scripts at
//! most one node failure; these figures exercise the regimes fault-
//! resilient streaming overlays are actually judged on — continuous churn,
//! flash crowds and time-varying bottlenecks — using the
//! `bullet-dynamics` scenario engine. Each follows the same
//! [`FigureResult`] conventions as the paper figures (including the
//! parallel run-grid execution and `BULLET_SEEDS` sweeps; see the
//! [`crate::figures`] module docs), so the report printers and bench
//! harnesses consume them unchanged. Extra sweep seeds re-generate the
//! scenario scripts under the per-seed RNG, so a multi-seed churn figure
//! samples genuinely different churn event sequences, not just different
//! protocol RNG draws.

use std::sync::Arc;

use bullet_core::OverloadConfig;
use bullet_dynamics::{ChurnConfig, ScenarioAction, ScenarioScript};
use bullet_netsim::{
    FaultPlan, NetworkSpec, NodeResources, OverlayId, QueueDiscipline, SimDuration, SimTime,
};
use bullet_topology::{BandwidthProfile, LossProfile};

use crate::env::{prepare_topology, TreeKind};
use crate::figures::{chunked, push_seed_spread_notes, FigurePlan, FigureResult, Params, RunTask};
use crate::pool::{seed_label, Sweep};
use crate::protocols::{
    bullet_run_scenario_on, bullet_run_scenario_resourced_on, streaming_run_scenario_on,
};
use crate::runner::RunResult;
use crate::scale::Scale;

/// The target stream rate the scenario figures use (the paper's 600 Kbps).
const SCENARIO_RATE_BPS: f64 = 600_000.0;

/// The physical (spec) link index of `node`'s access link — the first link
/// incident to its attachment router. With the generated topologies'
/// degree-one leaf attachment this is *the* access link, i.e. the node's
/// bottleneck.
pub fn access_link_of(spec: &NetworkSpec, node: OverlayId) -> usize {
    let router = spec.attachments[node];
    spec.links
        .iter()
        .position(|l| l.a == router || l.b == router)
        .expect("participant routers have an access link")
}

/// Exponential session-time churn sweep: Bullet under increasingly rapid
/// crash/rejoin churn of every non-source node, against a churn-free
/// baseline on the same topology and tree.
///
/// Each sweep point runs with mean session times of 1×, 1/2× and 1/4× the
/// post-settling run window (CliqueStream-style session churn); downtime
/// averages a quarter of the session time. The Bullet configuration uses
/// the churn profile (dead senders evicted after two idle evaluation
/// windows) so reconciliation rows are restriped off crashed peers.
pub fn churn_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = churn_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

pub(crate) fn churn_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 31);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let config = p.bullet_config(SCENARIO_RATE_BPS).churn();
    let seeds = sweep.run_seeds(p.seed);

    let mut tasks: Vec<RunTask> = Vec::new();
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let tree = tree.clone();
        let config = config.clone();
        let run = p.run_spec(&seed_label("Bullet - no churn", k));
        tasks.push(Box::new(move || {
            bullet_run_scenario_on(
                topo.network(),
                &tree,
                &config,
                &run,
                &ScenarioScript::new(),
                seed,
            )
        }));
    }
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let mut sweep_points = Vec::new();
    for divisor in [1.0, 2.0, 4.0] {
        let mean_session = window / divisor;
        let label = format!("Bullet - mean session {mean_session:.0}s");
        let mut script_lens = Vec::new();
        for (k, &seed) in seeds.iter().enumerate() {
            // Each sweep seed regenerates the churn script under its own
            // RNG: multi-seed figures sample different event sequences.
            let script = Arc::new(ScenarioScript::exponential_churn(&ChurnConfig {
                nodes: (1..p.participants).collect(),
                start: p.stream_start,
                end: SimTime::from_secs_f64(p.duration.as_secs_f64() * 0.95),
                mean_session_secs: mean_session,
                mean_downtime_secs: mean_session / 4.0,
                graceful_fraction: 0.25,
                seed: seed ^ 0xC0_94,
            }));
            script_lens.push(script.len());
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label(&label, k));
            tasks.push(Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }));
        }
        sweep_points.push((mean_session, script_lens));
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "churn",
            "Achieved bandwidth under exponential session-time churn (crash/rejoin of every non-source node)",
        );
        let chunks = chunked(results, seeds);
        for run in &chunks[0] {
            figure.add_run(run);
        }
        let baseline = &chunks[0][0];
        for ((mean_session, script_lens), chunk) in sweep_points.iter().zip(&chunks[1..]) {
            let result = &chunk[0];
            figure.notes.push(format!(
                "mean session {mean_session:.0}s ({} scripted events): useful {:.0} Kbps vs {:.0} Kbps churn-free, median delivery {:.0}%",
                script_lens[0],
                result.summary.steady_useful_kbps,
                baseline.summary.steady_useful_kbps,
                result.summary.median_delivery_fraction * 100.0,
            ));
            for run in chunk {
                figure.add_run(run);
            }
        }
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Flash crowd: 60% of the overlay starts the run down and joins over a
/// short ramp mid-stream. The figure tracks the bandwidth dip while the
/// crowd bootstraps and its recovery as the mesh absorbs the joiners.
pub fn flash_crowd_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = flash_crowd_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

pub(crate) fn flash_crowd_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 32);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let config = p.bullet_config(SCENARIO_RATE_BPS).churn();

    let crowd_start = p.participants - (p.participants * 6 / 10);
    let crowd: Vec<OverlayId> = (crowd_start.max(1)..p.participants).collect();
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let join_at = SimTime::from_secs_f64(p.stream_start.as_secs_f64() + window * 0.4);
    let ramp = window * 0.1;

    let seeds = sweep.run_seeds(p.seed);
    let tasks: Vec<RunTask> = seeds
        .iter()
        .enumerate()
        .map(|(k, &seed)| {
            let script = Arc::new(ScenarioScript::flash_crowd(
                &crowd,
                join_at,
                ramp,
                seed ^ 0xF1A5,
            ));
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label("Bullet - flash crowd", k));
            Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }) as RunTask
        })
        .collect();

    let seeds = seeds.len();
    let crowd_len = crowd.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "flashcrowd",
            "Achieved bandwidth while a flash crowd (60% of the overlay) joins mid-stream",
        );
        let chunks = chunked(results, seeds);
        let runs = &chunks[0];
        // Useful first (add_run), raw second: `steady_state_of("flash crowd")`
        // finds the first matching label, and gates must read useful bandwidth.
        for result in runs {
            figure.add_run(result);
            figure.series.push(result.raw.clone());
        }
        let result = &runs[0];

        // How long after the last join until per-crowd-member delivery catches
        // up to a healthy rate.
        let catch_up = crowd_catch_up_secs(result, &crowd, join_at.as_secs_f64() + ramp);
        figure.notes.push(format!(
            "{crowd_len} joiners over {ramp:.0}s starting at t={:.0}s; steady useful {:.0} Kbps; crowd reached half the steady rate {} after the ramp",
            join_at.as_secs_f64(),
            result.summary.steady_useful_kbps,
            match catch_up {
                Some(secs) => format!("{secs:.0}s"),
                None => "never".into(),
            },
        ));
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// First sample time at which the crowd's average instantaneous useful
/// bandwidth reaches half the run's steady-state rate, as seconds after
/// `after_secs`.
fn crowd_catch_up_secs(result: &RunResult, crowd: &[OverlayId], after_secs: f64) -> Option<f64> {
    let target = result.summary.steady_useful_kbps / 2.0;
    let mut prev: Option<(f64, &Vec<u64>)> = None;
    for (idx, t) in result.times.iter().copied().enumerate() {
        let row = &result.per_node_useful_bytes[idx];
        if let Some((pt, prow)) = prev {
            let dt = (t - pt).max(1e-9);
            let kbps = crowd
                .iter()
                .map(|&n| (row[n].saturating_sub(prow[n])) as f64 * 8.0 / dt / 1_000.0)
                .sum::<f64>()
                / crowd.len().max(1) as f64;
            if t > after_secs && kbps >= target {
                return Some(t - after_secs);
            }
        }
        prev = Some((t, row));
    }
    None
}

/// Oscillating bottleneck: the access link of the root child with the most
/// descendants — the Fig. 13 worst-case victim, but throttled periodically
/// instead of crashed — square-waves between its provisioned rate and a
/// quarter of the stream rate. Bullet over the tree is compared against
/// TFRC streaming over the *same* tree under the same oscillation: the
/// tree loses the whole subtree during every trough, while the mesh routes
/// recovery traffic around the throttled uplink.
pub fn oscillating_bottleneck_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = oscillating_bottleneck_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

pub(crate) fn oscillating_bottleneck_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 33);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let victim = tree
        .children(0)
        .iter()
        .copied()
        .max_by_key(|&c| tree.subtree_size(c))
        .expect("root has children");
    let descendants = tree.subtree_size(victim) - 1;
    let link = access_link_of(topo.spec(), victim);
    let high_bps = topo.spec().links[link].bandwidth_bps;
    let low_bps = SCENARIO_RATE_BPS / 4.0;
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let script = Arc::new(ScenarioScript::oscillating_link(
        link,
        high_bps,
        low_bps,
        window / 8.0,
        SimTime::from_secs_f64(p.stream_start.as_secs_f64() + window * 0.2),
        SimTime::from_secs_f64(p.duration.as_secs_f64() * 0.95),
    ));

    let bullet_cfg = p.bullet_config(SCENARIO_RATE_BPS);
    let stream_cfg = p.stream_config(SCENARIO_RATE_BPS);
    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let tree = tree.clone();
        let config = bullet_cfg.clone();
        let script = script.clone();
        let run = p.run_spec(&seed_label("Bullet - oscillating bottleneck", k));
        tasks.push(Box::new(move || {
            bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
        }));
    }
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let tree = tree.clone();
        let config = stream_cfg.clone();
        let script = script.clone();
        let run = p.run_spec(&seed_label("Tree streaming - oscillating bottleneck", k));
        tasks.push(Box::new(move || {
            streaming_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
        }));
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "oscillation",
            "Achieved bandwidth while the worst-case root child's access link oscillates between its provisioned rate and a quarter of the stream rate",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let (bullet, streaming) = (&chunks[0][0], &chunks[1][0]);
        figure.notes.push(format!(
            "node {victim} ({descendants} descendants) access link {link} square-waves {:.1} Mbps <-> {:.0} Kbps every {:.0}s: Bullet {:.0} Kbps vs tree streaming {:.0} Kbps steady useful",
            high_bps / 1e6,
            low_bps / 1e3,
            window / 8.0,
            bullet.summary.steady_useful_kbps,
            streaming.summary.steady_useful_kbps,
        ));
        crate::figures::push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Sustained-crash recovery figure (§4.6 evaluation): one node crashes —
/// and stays down — every 10 seconds, interior (largest-subtree) victims
/// first so every crash orphans a subtree. Bullet with the recovery
/// subsystem (orphan re-attach, peer liveness, control retries) is
/// compared against the recovery-off churn profile under the *same* crash
/// script: the delta is the goodput the §4.6 detect-and-re-attach path
/// buys once the tree, not the mesh, is what keeps subtrees fed.
pub fn recovery_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = recovery_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

/// The sustained-crash script shared by the recovery figure and bench:
/// one crash every `RECOVERY_CRASH_EVERY_SECS` from shortly after stream
/// start until 90% of the run, biggest subtrees first.
pub fn sustained_crash_script(
    tree: &bullet_overlay::Tree,
    participants: usize,
    stream_start: SimTime,
    duration_secs: f64,
) -> (ScenarioScript, usize) {
    let mut victims: Vec<OverlayId> = (1..participants)
        .filter(|&n| !tree.children(n).is_empty())
        .collect();
    victims.sort_by_key(|&n| std::cmp::Reverse(tree.subtree_size(n)));
    victims.extend((1..participants).filter(|&n| tree.children(n).is_empty()));
    let mut script = ScenarioScript::new();
    let mut t = stream_start.as_secs_f64() + 10.0;
    let end = duration_secs * 0.9;
    let mut crashed = 0;
    while t < end && crashed < victims.len() {
        script.push(
            SimTime::from_secs_f64(t),
            ScenarioAction::Crash {
                node: victims[crashed],
            },
        );
        crashed += 1;
        t += RECOVERY_CRASH_EVERY_SECS;
    }
    (script, crashed)
}

/// Crash cadence of the sustained-crash recovery scenario (the §4.6
/// acceptance floor: at least one node per 10 s at the default scale).
pub const RECOVERY_CRASH_EVERY_SECS: f64 = 10.0;

pub(crate) fn recovery_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 34);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let recovery_cfg = p.bullet_config(SCENARIO_RATE_BPS).recovery();
    let baseline_cfg = p.bullet_config(SCENARIO_RATE_BPS).churn();
    let (script, crashes) = sustained_crash_script(
        &tree,
        p.participants,
        p.stream_start,
        p.duration.as_secs_f64(),
    );
    let script = Arc::new(script);
    let epoch_secs = recovery_cfg.ransub_epoch.as_secs_f64();

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (label, config) in [
        ("Bullet - recovery on", &recovery_cfg),
        ("Bullet - recovery off", &baseline_cfg),
    ] {
        for (k, &seed) in seeds.iter().enumerate() {
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let script = script.clone();
            let run = p.run_spec(&seed_label(label, k));
            tasks.push(Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }));
        }
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "recovery",
            "Achieved bandwidth under sustained crashes (one interior node per 10 s, never rejoining): §4.6 recovery subsystem on vs off",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let (on, off) = (&chunks[0][0], &chunks[1][0]);
        let s = &on.summary;
        let ratio = s.steady_useful_kbps / off.summary.steady_useful_kbps.max(1e-9);
        figure.notes.push(format!(
            "{crashes} crashes: recovery-on {:.0} Kbps vs recovery-off {:.0} Kbps steady useful ({ratio:.1}x)",
            s.steady_useful_kbps, off.summary.steady_useful_kbps,
        ));
        figure.notes.push(format!(
            "{} orphan detections, {} re-attaches, median re-attach {:.2}s / mean {:.2}s ({:.0}s epochs), {} orphan-window packets, {} control retries, {} false-positive evictions",
            s.orphan_detections,
            s.reattaches,
            s.median_reattach_secs,
            s.mean_reattach_secs,
            epoch_secs,
            s.orphan_window_packets,
            s.control_retries,
            s.false_positive_evictions,
        ));
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Partition figure: a deterministic half of the overlay repeatedly
/// partitions away from the rest (and heals), while a tenth of the nodes
/// drop 20% of their control messages throughout. Recovery-on re-forms a
/// tree inside each side and repairs it after every heal; recovery-off
/// rides out each episode on whatever mesh state survives.
pub fn partition_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = partition_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

pub(crate) fn partition_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 35);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let recovery_cfg = p.bullet_config(SCENARIO_RATE_BPS).recovery();
    let baseline_cfg = p.bullet_config(SCENARIO_RATE_BPS).churn();
    let epoch_secs = recovery_cfg.ransub_epoch.as_secs_f64();

    // The partitioned side: every other non-source node.
    let side: Vec<OverlayId> = (1..p.participants).step_by(2).collect();
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    let mut partition_counts = Vec::new();
    for (label, config) in [
        ("Bullet - recovery on", &recovery_cfg),
        ("Bullet - recovery off", &baseline_cfg),
    ] {
        for (k, &seed) in seeds.iter().enumerate() {
            // Per-seed scripts: each sweep seed samples its own partition
            // episode sequence (like the churn figure's scripts).
            let mut script = ScenarioScript::partition_churn(
                &side,
                SimTime::from_secs_f64(p.stream_start.as_secs_f64() + window * 0.2),
                SimTime::from_secs_f64(p.duration.as_secs_f64() * 0.9),
                window / 4.0,
                (epoch_secs * 3.0).min(window / 6.0),
                seed ^ 0x9A27,
            );
            if label.ends_with("on") {
                partition_counts.push(script.len() / 2);
            }
            for node in (1..p.participants).step_by(10) {
                script.push(
                    p.stream_start,
                    ScenarioAction::Fault {
                        node,
                        plan: FaultPlan {
                            drop_chance: 0.2,
                            ..FaultPlan::default()
                        },
                    },
                );
            }
            let script = Arc::new(script);
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label(label, k));
            tasks.push(Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }));
        }
    }

    let seeds = seeds.len();
    let side_len = side.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "partition",
            "Achieved bandwidth under repeated network partitions of half the overlay plus 20% control-message loss on a tenth of the nodes: §4.6 recovery subsystem on vs off",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let (on, off) = (&chunks[0][0], &chunks[1][0]);
        let s = &on.summary;
        figure.notes.push(format!(
            "{side_len} nodes partition away {} times: recovery-on {:.0} Kbps vs recovery-off {:.0} Kbps steady useful; {} re-attaches (median {:.2}s), {} control retries, {} false-positive evictions",
            partition_counts.first().copied().unwrap_or(0),
            s.steady_useful_kbps,
            off.summary.steady_useful_kbps,
            s.reattaches,
            s.median_reattach_secs,
            s.control_retries,
            s.false_positive_evictions,
        ));
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Misbehaving-peer sweep: a growing fraction of the overlay turns
/// adversarial mid-stream — even picks corrupt every data block they relay,
/// odd picks stall and falsely advertise phantom content — and Bullet with
/// the integrity layer (block verification, health scoring, quarantine) is
/// compared against the same overlay defenseless under the *same*
/// adversary script. The headline number is the clean-goodput ratio at
/// each fraction: without verification, tampered blocks count toward raw
/// delivery but carry nothing usable.
pub fn adversary_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = adversary_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

/// Adversary fractions the sweep runs (fraction of non-source nodes).
pub const ADVERSARY_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// Per-relay corruption probability of the even-pick (corrupter) persona.
pub const ADVERSARY_CORRUPT_CHANCE: f64 = 0.75;

pub(crate) fn adversary_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 36);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    // The off arm clears the integrity layer explicitly so the
    // comparison stays on/off even under `BULLET_INTEGRITY=1`; both arms
    // share the recovery profile, making integrity the only delta.
    let defense_cfg = p.bullet_config(SCENARIO_RATE_BPS).integrity();
    let baseline_cfg = bullet_core::BulletConfig {
        integrity: None,
        ..p.bullet_config(SCENARIO_RATE_BPS).recovery()
    };
    let nodes: Vec<OverlayId> = (1..p.participants).collect();
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let turn_at = SimTime::from_secs_f64(p.stream_start.as_secs_f64() + window * 0.2);

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (arm, config) in [("defense on", &defense_cfg), ("defense off", &baseline_cfg)] {
        for fraction in ADVERSARY_FRACTIONS {
            let label = format!("Bullet - {arm} - {:.0}% adversaries", fraction * 100.0);
            for (k, &seed) in seeds.iter().enumerate() {
                // Per-seed scripts: each sweep seed samples its own
                // adversary placement (same convention as the churn
                // figure). Both arms at the same (fraction, seed) get the
                // identical script.
                let script = Arc::new(ScenarioScript::adversary_fraction(
                    &nodes,
                    fraction,
                    turn_at,
                    ADVERSARY_CORRUPT_CHANCE,
                    seed ^ 0xAD5A,
                ));
                let topo = topo.clone();
                let tree = tree.clone();
                let config = config.clone();
                let run = p.run_spec(&seed_label(&label, k));
                tasks.push(Box::new(move || {
                    bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
                }));
            }
        }
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "adversary",
            "Clean goodput while a growing fraction of the overlay corrupts, stalls or falsely advertises: integrity defense (verification + health scoring + quarantine) on vs off",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let arms = ADVERSARY_FRACTIONS.len();
        for (i, fraction) in ADVERSARY_FRACTIONS.iter().enumerate() {
            let on = &chunks[i][0].summary;
            let off = &chunks[arms + i][0].summary;
            let ratio = if off.clean_goodput_kbps > 0.0 {
                format!("{:.1}x", on.clean_goodput_kbps / off.clean_goodput_kbps)
            } else {
                "every defense-off receiver poisoned".to_string()
            };
            figure.notes.push(format!(
                "{:.0}% adversaries: defense-on clean {:.0} Kbps vs defense-off {:.0} Kbps ({ratio}); on: {} rejected, {} quarantines, {} accepted; off: {} accepted",
                fraction * 100.0,
                on.clean_goodput_kbps,
                off.clean_goodput_kbps,
                on.corrupt_blocks_rejected,
                on.quarantines,
                on.corrupt_blocks_accepted,
                off.corrupt_blocks_accepted,
            ));
        }
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Overload figure: a join storm with the flash crowd's 60% joiner suffix
/// compressed into a tenth of its ramp slams the overlay mid-stream — in
/// repeated crash-and-rejoin waves — while roughly a tenth of the
/// steady-state receivers understate their intake fivefold for the whole
/// run, on nodes with finite processing capacity ([`NodeResources`]).
/// Bullet with the overload layer (bounded prioritized inboxes,
/// deferred-join admission control, working-set budget, slow-receiver
/// demotion; the node's ingress is a drop-tail queue at its budget) is
/// compared against the same overlay with unbounded queues (nothing shed,
/// the backlog and with it every message's queueing delay growing for as
/// long as the storm outpaces the drain) under the identical storm; the
/// headline number is the steady-state members' goodput ratio measured
/// through the storm.
pub fn overload_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = overload_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

/// Intake-understatement factor of the overload figure's slow receivers.
pub const OVERLOAD_SLOW_FACTOR: f64 = 0.2;

/// The playout deadline the overload figure judges timeliness against: a
/// block arriving more than this after its generation slot missed the
/// live playout point, whatever its integrity. Both arms are scored with
/// the same deadline.
pub const OVERLOAD_PLAYOUT_DEADLINE: SimDuration = SimDuration::from_secs(10);

/// The per-node ingress processing capacity both overload-figure arms run
/// under: enough headroom for the stream plus routine control, not enough
/// to absorb a join storm without either shedding (bounded arm) or
/// falling behind (unbounded arm). The drain rate is identical across the
/// arms — the figure compares queue *disciplines* on identical
/// processors: the bounded arm presents a drop-tail queue at this budget
/// (its overload layer sheds before work piles up, so its queueing delay
/// is capped at `queue_budget / drain_per_sec`), while the unbounded arm
/// runs [`QueueDiscipline::Unbounded`] — nothing is ever refused, the
/// backlog grows for as long as the storm outpaces the drain, and every
/// message (data included) is served ever later.
pub const OVERLOAD_NODE_RESOURCES: NodeResources = NodeResources {
    queue_budget: 60,
    drain_per_sec: 60.0,
    discipline: QueueDiscipline::DropTail,
};

/// Fraction of the stream window at which the storm opens.
pub const OVERLOAD_STORM_FROM: f64 = 0.30;

/// Fraction of the stream window at which the last storm cohort lands
/// (and at which the acceptance window closes — the ratio is the members'
/// goodput *under* the assault, not after a calm tail has let the
/// unbounded arm drain its backlog).
pub const OVERLOAD_STORM_TO: f64 = 0.95;

/// The storm suffix is split into this many cohorts on staggered
/// crash-and-rejoin cycles, so some cohort is always mid-join: pressure
/// on the steady-state members is sustained for the whole storm span
/// instead of arriving in synchronized waves with calm gaps the
/// unbounded arm uses to drain its backlog.
pub const OVERLOAD_STORM_COHORTS: usize = 6;

/// Each cohort's crash-and-rejoin cycle length, as a fraction of the
/// stream window.
pub const OVERLOAD_STORM_PERIOD: f64 = 0.10;

/// The tightened overload knobs of the bounded arm (the defaults target
/// paper-scale overlays; at figure scale the storm has to hit the budgets
/// for the mechanisms to fire).
pub fn overload_figure_knobs() -> OverloadConfig {
    OverloadConfig {
        inbox_budget: 10,
        working_set_budget: 450,
        defer_max_exponent: 6,
        ..OverloadConfig::default()
    }
}

pub(crate) fn overload_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 37);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));

    // Both arms share the integrity profile and the same finite ingress
    // resources; the overload layer is the only delta. The off arm clears
    // it explicitly so the comparison stays on/off even under
    // `BULLET_OVERLOAD=1`.
    let knobs = overload_figure_knobs();
    let mut bounded_cfg = p.bullet_config(SCENARIO_RATE_BPS).overload();
    bounded_cfg.overload = Some(knobs);
    bounded_cfg.freshness_deadline = OVERLOAD_PLAYOUT_DEADLINE;
    let unbounded_cfg = bullet_core::BulletConfig {
        overload: None,
        freshness_deadline: OVERLOAD_PLAYOUT_DEADLINE,
        ..p.bullet_config(SCENARIO_RATE_BPS).integrity()
    };

    // The storm: the flash crowd's 60% joiner suffix, arriving over a ramp
    // compressed tenfold (a "10x join storm" relative to the flashcrowd
    // figure's arrival rate).
    let storm_first = p.participants - (p.participants * 6 / 10);
    let storm_count = p.participants - storm_first;
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let ramp = window * 0.01;

    // Slow receivers: every tenth steady-state member understates its
    // intake from stream start on.
    let slow: Vec<OverlayId> = (1..storm_first).step_by(10).collect();
    // The steady-state members the acceptance ratio is measured over: in
    // the overlay before the storm and not scripted slow (the slow ones
    // are *deliberately* degraded — that is the graceful part).
    let members: Vec<OverlayId> = (1..storm_first).filter(|n| !slow.contains(n)).collect();
    // Identical processors, different queue disciplines (see
    // [`OVERLOAD_NODE_RESOURCES`]): the bounded arm's nodes shed at their
    // budget, the unbounded arm's nodes queue everything and fall behind.
    let arm_resources = |discipline: QueueDiscipline| -> Arc<Vec<(OverlayId, NodeResources)>> {
        Arc::new(
            (1..p.participants)
                .map(|n| {
                    (
                        n,
                        NodeResources {
                            discipline,
                            ..OVERLOAD_NODE_RESOURCES
                        },
                    )
                })
                .collect(),
        )
    };

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (label, config, discipline) in [
        (
            "Bullet - bounded queues",
            &bounded_cfg,
            QueueDiscipline::DropTail,
        ),
        (
            "Bullet - unbounded queues",
            &unbounded_cfg,
            QueueDiscipline::Unbounded,
        ),
    ] {
        let resources = arm_resources(discipline);
        for (k, &seed) in seeds.iter().enumerate() {
            let mut script = ScenarioScript::new();
            for &node in &slow {
                script.push(
                    p.stream_start,
                    ScenarioAction::SlowNode {
                        node,
                        factor: OVERLOAD_SLOW_FACTOR,
                    },
                );
            }
            // Rolling cohorts: each sixth of the suffix crashes and
            // re-storms on its own staggered cycle, so a fresh join
            // burst lands every `period / cohorts` seconds for the
            // whole storm span — sustained pressure, no calm gaps.
            let cohort_len = storm_count.div_ceil(OVERLOAD_STORM_COHORTS);
            let storm_open = p.stream_start.as_secs_f64() + window * OVERLOAD_STORM_FROM;
            let storm_close = p.stream_start.as_secs_f64() + window * OVERLOAD_STORM_TO;
            let period = window * OVERLOAD_STORM_PERIOD;
            let stagger = period / OVERLOAD_STORM_COHORTS as f64;
            let mut wave = 0u64;
            for c in 0..OVERLOAD_STORM_COHORTS {
                let first = storm_first + c * cohort_len;
                if first >= p.participants {
                    break;
                }
                let count = cohort_len.min(p.participants - first);
                let mut at = storm_open + stagger * c as f64;
                let mut cycle = 0u32;
                while at + ramp <= storm_close {
                    if cycle > 0 {
                        // The cohort crashes out a couple of seconds
                        // before it re-storms, so every cycle is a
                        // fresh cold-state join burst.
                        for node in first..first + count {
                            script.push(
                                SimTime::from_secs_f64(at - ramp - 2.0),
                                ScenarioAction::Crash { node },
                            );
                        }
                    }
                    script.push(
                        SimTime::from_secs_f64(at),
                        ScenarioAction::JoinStorm {
                            first,
                            count,
                            ramp_secs: ramp,
                            seed: seed ^ (0x0B57 + wave),
                        },
                    );
                    wave += 1;
                    at += period;
                    cycle += 1;
                }
            }
            let script = Arc::new(script);
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let resources = resources.clone();
            let run = p.run_spec(&seed_label(label, k));
            tasks.push(Box::new(move || {
                bullet_run_scenario_resourced_on(
                    topo.network(),
                    &tree,
                    &config,
                    &run,
                    &script,
                    &resources,
                    seed,
                )
            }));
        }
    }

    let seeds = seeds.len();
    let slow_len = slow.len();
    // The acceptance ratio is measured *during the storm*: from the first
    // cohort's arrival to the last cohort's landing. Stopping there (not
    // at run end) keeps the post-storm calm out of the window — that calm
    // is exactly when the unbounded arm finally drains its backlog.
    let storm_from = p.stream_start.as_secs_f64() + window * OVERLOAD_STORM_FROM;
    let storm_to = p.stream_start.as_secs_f64() + window * OVERLOAD_STORM_TO;
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "overload",
            "Achieved bandwidth through a 10x join storm plus persistent slow receivers on finite-capacity nodes: overload layer (bounded queues, backpressure, graceful degradation) on vs off",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let (bounded, unbounded) = (&chunks[0][0], &chunks[1][0]);
        let member_on = member_goodput_kbps(bounded, &members, storm_from, storm_to);
        let member_off = member_goodput_kbps(unbounded, &members, storm_from, storm_to);
        figure
            .scalars
            .push(("bounded_member_goodput_kbps".into(), member_on));
        figure
            .scalars
            .push(("unbounded_member_goodput_kbps".into(), member_off));
        let ratio = member_on / member_off.max(1e-9);
        // The members hurt most by receive livelock are the ones behind
        // the saturated interior nodes: compare the worst quartile of the
        // per-member distribution, not just the mean.
        let worst_quartile = |run: &RunResult| -> f64 {
            let mut per: Vec<f64> = members
                .iter()
                .map(|&n| member_goodput_kbps(run, &[n], storm_from, storm_to))
                .collect();
            per.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q = (per.len() / 4).max(1);
            per[..q].iter().sum::<f64>() / q as f64
        };
        let (wq_on, wq_off) = (worst_quartile(bounded), worst_quartile(unbounded));
        figure
            .scalars
            .push(("bounded_worst_quartile_kbps".into(), wq_on));
        figure
            .scalars
            .push(("unbounded_worst_quartile_kbps".into(), wq_off));
        figure.notes.push(format!(
            "{storm_count} joiners in {OVERLOAD_STORM_COHORTS} rolling crash-and-rejoin cohorts (ramp {ramp:.1}s, cycle {:.0}s), plus {slow_len} slow receivers (factor {OVERLOAD_SLOW_FACTOR}); every node drains {}/s — bounded arm drop-tails at {} queued messages, unbounded arm queues everything and falls behind",
            window * OVERLOAD_STORM_PERIOD,
            OVERLOAD_NODE_RESOURCES.drain_per_sec,
            OVERLOAD_NODE_RESOURCES.queue_budget,
        ));
        figure.notes.push(format!(
            "steady-state members through the storm, timely within the {}s playout deadline: bounded {member_on:.0} Kbps vs unbounded {member_off:.0} Kbps ({ratio:.1}x mean, {:.1}x for the worst-quartile members at {wq_on:.0} vs {wq_off:.0} Kbps); overlay-wide steady useful {:.0} vs {:.0} Kbps",
            OVERLOAD_PLAYOUT_DEADLINE.as_secs_f64(),
            wq_on / wq_off.max(1e-9),
            bounded.summary.steady_useful_kbps, unbounded.summary.steady_useful_kbps,
        ));
        let s = &bounded.summary;
        figure.notes.push(format!(
            "bounded arm: {} inbox sheds (peak window depth {} vs budget {}), {} joins deferred / {} admitted after backoff, {} working-set evictions (budget {}), {} slow demotions; ingress peak backlog {} (sheds {}) vs {} unbounded (grows unshed)",
            s.inbox_sheds,
            s.peak_inbox_depth,
            knobs.inbox_budget,
            s.joins_deferred,
            s.joins_admitted_after_defer,
            s.working_set_evictions,
            knobs.working_set_budget,
            s.slow_demotions,
            s.ingress_peak_depth,
            s.ingress_sheds,
            unbounded.summary.ingress_peak_depth,
        ));
        if std::env::var("BULLET_OVERLOAD_DEBUG").is_ok() {
            for (b, u) in chunks[0].iter().zip(&chunks[1]) {
                for (name, run) in [("bounded", b), ("unbounded", u)] {
                    let mut per: Vec<f64> = members
                        .iter()
                        .map(|&n| member_goodput_kbps(run, &[n], storm_from, storm_to))
                        .collect();
                    per.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    figure.notes.push(format!(
                        "debug per-member {name}: {}",
                        per.iter()
                            .map(|v| format!("{v:.0}"))
                            .collect::<Vec<_>>()
                            .join(" ")
                    ));
                }
            }
            for (name, run) in [("bounded", bounded), ("unbounded", unbounded)] {
                let series: Vec<String> = (1..run.times.len())
                    .map(|i| {
                        let dt = (run.times[i] - run.times[i - 1]).max(1e-9);
                        let rate: f64 = members
                            .iter()
                            .map(|&n| {
                                run.per_node_fresh_bytes[i][n]
                                    .saturating_sub(run.per_node_fresh_bytes[i - 1][n])
                                    as f64
                                    * 8.0
                                    / dt
                                    / 1_000.0
                            })
                            .sum::<f64>()
                            / members.len() as f64;
                        format!("{:.0}", rate)
                    })
                    .collect();
                figure
                    .notes
                    .push(format!("debug member timely {name}: {}", series.join(" ")));
            }
        }
        if seeds > 1 {
            // Extra sweep seeds regenerate the storm under fresh RNG: show
            // the headline ratio's stability across them.
            let spread: Vec<String> = (0..seeds)
                .map(|k| {
                    format!(
                        "{:.0}/{:.0}",
                        member_goodput_kbps(&chunks[0][k], &members, storm_from, storm_to),
                        member_goodput_kbps(&chunks[1][k], &members, storm_from, storm_to),
                    )
                })
                .collect();
            figure.notes.push(format!(
                "per-seed member goodput (bounded/unbounded Kbps): {}",
                spread.join(", ")
            ));
        }
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Mean *timely* useful bandwidth (Kbps) of `nodes` between `from_secs`
/// and `to_secs` (clamped to the sampled range), from the per-node
/// cumulative fresh-byte rows: only first deliveries inside the playout
/// freshness deadline count — a block that spent longer than the deadline
/// in queues is useless to a live viewer however intact it arrives. The
/// overload figure measures its steady-state members from the first storm
/// cohort's arrival to the last one's landing.
fn member_goodput_kbps(
    result: &RunResult,
    nodes: &[OverlayId],
    from_secs: f64,
    to_secs: f64,
) -> f64 {
    let len = result.times.len();
    if len < 2 || nodes.is_empty() {
        return 0.0;
    }
    let start = result
        .times
        .iter()
        .position(|&t| t >= from_secs)
        .unwrap_or(len - 2)
        .min(len - 2);
    let end = result
        .times
        .iter()
        .rposition(|&t| t <= to_secs)
        .unwrap_or(len - 1)
        .max(start + 1);
    let dt = (result.times[end] - result.times[start]).max(1e-9);
    let first = &result.per_node_fresh_bytes[start];
    let last = &result.per_node_fresh_bytes[end];
    nodes
        .iter()
        .map(|&n| last[n].saturating_sub(first[n]) as f64 * 8.0 / dt / 1_000.0)
        .sum::<f64>()
        / nodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::build_topology;

    #[test]
    fn access_link_lookup_finds_the_attachment_link() {
        let topo = build_topology(
            Scale::Small,
            10,
            BandwidthProfile::Medium,
            LossProfile::None,
            5,
        );
        for node in 0..10 {
            let link = access_link_of(&topo.spec, node);
            let spec = &topo.spec.links[link];
            let router = topo.spec.attachments[node];
            assert!(spec.a == router || spec.b == router);
        }
    }
}
