//! Scenario-dynamics experiment figures (beyond the paper's evaluation).
//!
//! The paper freezes the network for the length of every run and scripts at
//! most one node failure; these figures exercise the regimes fault-
//! resilient streaming overlays are actually judged on — continuous churn,
//! flash crowds and time-varying bottlenecks — using the
//! `bullet-dynamics` scenario engine. Each follows the same
//! [`FigureResult`] conventions as the paper figures (including the
//! parallel run-grid execution and `BULLET_SEEDS` sweeps; see the
//! [`crate::figures`] module docs), so the report printers and bench
//! harnesses consume them unchanged. Extra sweep seeds re-generate the
//! scenario scripts under the per-seed RNG, so a multi-seed churn figure
//! samples genuinely different churn event sequences, not just different
//! protocol RNG draws.

use std::sync::Arc;

use bullet_dynamics::{ChurnConfig, ScenarioAction, ScenarioScript};
use bullet_netsim::{FaultPlan, NetworkSpec, OverlayId, SimTime};
use bullet_topology::{BandwidthProfile, LossProfile};

use crate::env::{prepare_topology, TreeKind};
use crate::figures::{chunked, push_seed_spread_notes, FigurePlan, FigureResult, Params, RunTask};
use crate::pool::{seed_label, Sweep};
use crate::protocols::{bullet_run_scenario_on, streaming_run_scenario_on};
use crate::runner::RunResult;
use crate::scale::Scale;

/// The target stream rate the scenario figures use (the paper's 600 Kbps).
const SCENARIO_RATE_BPS: f64 = 600_000.0;

/// The physical (spec) link index of `node`'s access link — the first link
/// incident to its attachment router. With the generated topologies'
/// degree-one leaf attachment this is *the* access link, i.e. the node's
/// bottleneck.
pub fn access_link_of(spec: &NetworkSpec, node: OverlayId) -> usize {
    let router = spec.attachments[node];
    spec.links
        .iter()
        .position(|l| l.a == router || l.b == router)
        .expect("participant routers have an access link")
}

/// Exponential session-time churn sweep: Bullet under increasingly rapid
/// crash/rejoin churn of every non-source node, against a churn-free
/// baseline on the same topology and tree.
///
/// Each sweep point runs with mean session times of 1×, 1/2× and 1/4× the
/// post-settling run window (CliqueStream-style session churn); downtime
/// averages a quarter of the session time. The Bullet configuration uses
/// the churn profile (dead senders evicted after two idle evaluation
/// windows) so reconciliation rows are restriped off crashed peers.
pub fn churn_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = churn_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

pub(crate) fn churn_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 31);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let config = p.bullet_config(SCENARIO_RATE_BPS).churn();
    let seeds = sweep.run_seeds(p.seed);

    let mut tasks: Vec<RunTask> = Vec::new();
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let tree = tree.clone();
        let config = config.clone();
        let run = p.run_spec(&seed_label("Bullet - no churn", k));
        tasks.push(Box::new(move || {
            bullet_run_scenario_on(
                topo.network(),
                &tree,
                &config,
                &run,
                &ScenarioScript::new(),
                seed,
            )
        }));
    }
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let mut sweep_points = Vec::new();
    for divisor in [1.0, 2.0, 4.0] {
        let mean_session = window / divisor;
        let label = format!("Bullet - mean session {mean_session:.0}s");
        let mut script_lens = Vec::new();
        for (k, &seed) in seeds.iter().enumerate() {
            // Each sweep seed regenerates the churn script under its own
            // RNG: multi-seed figures sample different event sequences.
            let script = Arc::new(ScenarioScript::exponential_churn(&ChurnConfig {
                nodes: (1..p.participants).collect(),
                start: p.stream_start,
                end: SimTime::from_secs_f64(p.duration.as_secs_f64() * 0.95),
                mean_session_secs: mean_session,
                mean_downtime_secs: mean_session / 4.0,
                graceful_fraction: 0.25,
                seed: seed ^ 0xC0_94,
            }));
            script_lens.push(script.len());
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label(&label, k));
            tasks.push(Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }));
        }
        sweep_points.push((mean_session, script_lens));
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "churn",
            "Achieved bandwidth under exponential session-time churn (crash/rejoin of every non-source node)",
        );
        let chunks = chunked(results, seeds);
        for run in &chunks[0] {
            figure.add_run(run);
        }
        let baseline = &chunks[0][0];
        for ((mean_session, script_lens), chunk) in sweep_points.iter().zip(&chunks[1..]) {
            let result = &chunk[0];
            figure.notes.push(format!(
                "mean session {mean_session:.0}s ({} scripted events): useful {:.0} Kbps vs {:.0} Kbps churn-free, median delivery {:.0}%",
                script_lens[0],
                result.summary.steady_useful_kbps,
                baseline.summary.steady_useful_kbps,
                result.summary.median_delivery_fraction * 100.0,
            ));
            for run in chunk {
                figure.add_run(run);
            }
        }
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Flash crowd: 60% of the overlay starts the run down and joins over a
/// short ramp mid-stream. The figure tracks the bandwidth dip while the
/// crowd bootstraps and its recovery as the mesh absorbs the joiners.
pub fn flash_crowd_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = flash_crowd_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

pub(crate) fn flash_crowd_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 32);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let config = p.bullet_config(SCENARIO_RATE_BPS).churn();

    let crowd_start = p.participants - (p.participants * 6 / 10);
    let crowd: Vec<OverlayId> = (crowd_start.max(1)..p.participants).collect();
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let join_at = SimTime::from_secs_f64(p.stream_start.as_secs_f64() + window * 0.4);
    let ramp = window * 0.1;

    let seeds = sweep.run_seeds(p.seed);
    let tasks: Vec<RunTask> = seeds
        .iter()
        .enumerate()
        .map(|(k, &seed)| {
            let script = Arc::new(ScenarioScript::flash_crowd(
                &crowd,
                join_at,
                ramp,
                seed ^ 0xF1A5,
            ));
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label("Bullet - flash crowd", k));
            Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }) as RunTask
        })
        .collect();

    let seeds = seeds.len();
    let crowd_len = crowd.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "flashcrowd",
            "Achieved bandwidth while a flash crowd (60% of the overlay) joins mid-stream",
        );
        let chunks = chunked(results, seeds);
        let runs = &chunks[0];
        // Useful first (add_run), raw second: `steady_state_of("flash crowd")`
        // finds the first matching label, and gates must read useful bandwidth.
        for result in runs {
            figure.add_run(result);
            figure.series.push(result.raw.clone());
        }
        let result = &runs[0];

        // How long after the last join until per-crowd-member delivery catches
        // up to a healthy rate.
        let catch_up = crowd_catch_up_secs(result, &crowd, join_at.as_secs_f64() + ramp);
        figure.notes.push(format!(
            "{crowd_len} joiners over {ramp:.0}s starting at t={:.0}s; steady useful {:.0} Kbps; crowd reached half the steady rate {} after the ramp",
            join_at.as_secs_f64(),
            result.summary.steady_useful_kbps,
            match catch_up {
                Some(secs) => format!("{secs:.0}s"),
                None => "never".into(),
            },
        ));
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// First sample time at which the crowd's average instantaneous useful
/// bandwidth reaches half the run's steady-state rate, as seconds after
/// `after_secs`.
fn crowd_catch_up_secs(result: &RunResult, crowd: &[OverlayId], after_secs: f64) -> Option<f64> {
    let target = result.summary.steady_useful_kbps / 2.0;
    let mut prev: Option<(f64, &Vec<u64>)> = None;
    for (idx, t) in result.times.iter().copied().enumerate() {
        let row = &result.per_node_useful_bytes[idx];
        if let Some((pt, prow)) = prev {
            let dt = (t - pt).max(1e-9);
            let kbps = crowd
                .iter()
                .map(|&n| (row[n].saturating_sub(prow[n])) as f64 * 8.0 / dt / 1_000.0)
                .sum::<f64>()
                / crowd.len().max(1) as f64;
            if t > after_secs && kbps >= target {
                return Some(t - after_secs);
            }
        }
        prev = Some((t, row));
    }
    None
}

/// Oscillating bottleneck: the access link of the root child with the most
/// descendants — the Fig. 13 worst-case victim, but throttled periodically
/// instead of crashed — square-waves between its provisioned rate and a
/// quarter of the stream rate. Bullet over the tree is compared against
/// TFRC streaming over the *same* tree under the same oscillation: the
/// tree loses the whole subtree during every trough, while the mesh routes
/// recovery traffic around the throttled uplink.
pub fn oscillating_bottleneck_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = oscillating_bottleneck_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

pub(crate) fn oscillating_bottleneck_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 33);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let victim = tree
        .children(0)
        .iter()
        .copied()
        .max_by_key(|&c| tree.subtree_size(c))
        .expect("root has children");
    let descendants = tree.subtree_size(victim) - 1;
    let link = access_link_of(topo.spec(), victim);
    let high_bps = topo.spec().links[link].bandwidth_bps;
    let low_bps = SCENARIO_RATE_BPS / 4.0;
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let script = Arc::new(ScenarioScript::oscillating_link(
        link,
        high_bps,
        low_bps,
        window / 8.0,
        SimTime::from_secs_f64(p.stream_start.as_secs_f64() + window * 0.2),
        SimTime::from_secs_f64(p.duration.as_secs_f64() * 0.95),
    ));

    let bullet_cfg = p.bullet_config(SCENARIO_RATE_BPS);
    let stream_cfg = p.stream_config(SCENARIO_RATE_BPS);
    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let tree = tree.clone();
        let config = bullet_cfg.clone();
        let script = script.clone();
        let run = p.run_spec(&seed_label("Bullet - oscillating bottleneck", k));
        tasks.push(Box::new(move || {
            bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
        }));
    }
    for (k, &seed) in seeds.iter().enumerate() {
        let topo = topo.clone();
        let tree = tree.clone();
        let config = stream_cfg.clone();
        let script = script.clone();
        let run = p.run_spec(&seed_label("Tree streaming - oscillating bottleneck", k));
        tasks.push(Box::new(move || {
            streaming_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
        }));
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "oscillation",
            "Achieved bandwidth while the worst-case root child's access link oscillates between its provisioned rate and a quarter of the stream rate",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let (bullet, streaming) = (&chunks[0][0], &chunks[1][0]);
        figure.notes.push(format!(
            "node {victim} ({descendants} descendants) access link {link} square-waves {:.1} Mbps <-> {:.0} Kbps every {:.0}s: Bullet {:.0} Kbps vs tree streaming {:.0} Kbps steady useful",
            high_bps / 1e6,
            low_bps / 1e3,
            window / 8.0,
            bullet.summary.steady_useful_kbps,
            streaming.summary.steady_useful_kbps,
        ));
        crate::figures::push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Sustained-crash recovery figure (§4.6 evaluation): one node crashes —
/// and stays down — every 10 seconds, interior (largest-subtree) victims
/// first so every crash orphans a subtree. Bullet with the recovery
/// subsystem (orphan re-attach, peer liveness, control retries) is
/// compared against the recovery-off churn profile under the *same* crash
/// script: the delta is the goodput the §4.6 detect-and-re-attach path
/// buys once the tree, not the mesh, is what keeps subtrees fed.
pub fn recovery_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = recovery_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

/// The sustained-crash script shared by the recovery figure and bench:
/// one crash every `RECOVERY_CRASH_EVERY_SECS` from shortly after stream
/// start until 90% of the run, biggest subtrees first.
pub fn sustained_crash_script(
    tree: &bullet_overlay::Tree,
    participants: usize,
    stream_start: SimTime,
    duration_secs: f64,
) -> (ScenarioScript, usize) {
    let mut victims: Vec<OverlayId> = (1..participants)
        .filter(|&n| !tree.children(n).is_empty())
        .collect();
    victims.sort_by_key(|&n| std::cmp::Reverse(tree.subtree_size(n)));
    victims.extend((1..participants).filter(|&n| tree.children(n).is_empty()));
    let mut script = ScenarioScript::new();
    let mut t = stream_start.as_secs_f64() + 10.0;
    let end = duration_secs * 0.9;
    let mut crashed = 0;
    while t < end && crashed < victims.len() {
        script.push(
            SimTime::from_secs_f64(t),
            ScenarioAction::Crash {
                node: victims[crashed],
            },
        );
        crashed += 1;
        t += RECOVERY_CRASH_EVERY_SECS;
    }
    (script, crashed)
}

/// Crash cadence of the sustained-crash recovery scenario (the §4.6
/// acceptance floor: at least one node per 10 s at the default scale).
pub const RECOVERY_CRASH_EVERY_SECS: f64 = 10.0;

pub(crate) fn recovery_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 34);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let recovery_cfg = p.bullet_config(SCENARIO_RATE_BPS).recovery();
    let baseline_cfg = p.bullet_config(SCENARIO_RATE_BPS).churn();
    let (script, crashes) = sustained_crash_script(
        &tree,
        p.participants,
        p.stream_start,
        p.duration.as_secs_f64(),
    );
    let script = Arc::new(script);
    let epoch_secs = recovery_cfg.ransub_epoch.as_secs_f64();

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (label, config) in [
        ("Bullet - recovery on", &recovery_cfg),
        ("Bullet - recovery off", &baseline_cfg),
    ] {
        for (k, &seed) in seeds.iter().enumerate() {
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let script = script.clone();
            let run = p.run_spec(&seed_label(label, k));
            tasks.push(Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }));
        }
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "recovery",
            "Achieved bandwidth under sustained crashes (one interior node per 10 s, never rejoining): §4.6 recovery subsystem on vs off",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let (on, off) = (&chunks[0][0], &chunks[1][0]);
        let s = &on.summary;
        let ratio = s.steady_useful_kbps / off.summary.steady_useful_kbps.max(1e-9);
        figure.notes.push(format!(
            "{crashes} crashes: recovery-on {:.0} Kbps vs recovery-off {:.0} Kbps steady useful ({ratio:.1}x)",
            s.steady_useful_kbps, off.summary.steady_useful_kbps,
        ));
        figure.notes.push(format!(
            "{} orphan detections, {} re-attaches, median re-attach {:.2}s / mean {:.2}s ({:.0}s epochs), {} orphan-window packets, {} control retries, {} false-positive evictions",
            s.orphan_detections,
            s.reattaches,
            s.median_reattach_secs,
            s.mean_reattach_secs,
            epoch_secs,
            s.orphan_window_packets,
            s.control_retries,
            s.false_positive_evictions,
        ));
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Partition figure: a deterministic half of the overlay repeatedly
/// partitions away from the rest (and heals), while a tenth of the nodes
/// drop 20% of their control messages throughout. Recovery-on re-forms a
/// tree inside each side and repairs it after every heal; recovery-off
/// rides out each episode on whatever mesh state survives.
pub fn partition_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = partition_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

pub(crate) fn partition_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 35);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    let recovery_cfg = p.bullet_config(SCENARIO_RATE_BPS).recovery();
    let baseline_cfg = p.bullet_config(SCENARIO_RATE_BPS).churn();
    let epoch_secs = recovery_cfg.ransub_epoch.as_secs_f64();

    // The partitioned side: every other non-source node.
    let side: Vec<OverlayId> = (1..p.participants).step_by(2).collect();
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    let mut partition_counts = Vec::new();
    for (label, config) in [
        ("Bullet - recovery on", &recovery_cfg),
        ("Bullet - recovery off", &baseline_cfg),
    ] {
        for (k, &seed) in seeds.iter().enumerate() {
            // Per-seed scripts: each sweep seed samples its own partition
            // episode sequence (like the churn figure's scripts).
            let mut script = ScenarioScript::partition_churn(
                &side,
                SimTime::from_secs_f64(p.stream_start.as_secs_f64() + window * 0.2),
                SimTime::from_secs_f64(p.duration.as_secs_f64() * 0.9),
                window / 4.0,
                (epoch_secs * 3.0).min(window / 6.0),
                seed ^ 0x9A27,
            );
            if label.ends_with("on") {
                partition_counts.push(script.len() / 2);
            }
            for node in (1..p.participants).step_by(10) {
                script.push(
                    p.stream_start,
                    ScenarioAction::Fault {
                        node,
                        plan: FaultPlan {
                            drop_chance: 0.2,
                            ..FaultPlan::default()
                        },
                    },
                );
            }
            let script = Arc::new(script);
            let topo = topo.clone();
            let tree = tree.clone();
            let config = config.clone();
            let run = p.run_spec(&seed_label(label, k));
            tasks.push(Box::new(move || {
                bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
            }));
        }
    }

    let seeds = seeds.len();
    let side_len = side.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "partition",
            "Achieved bandwidth under repeated network partitions of half the overlay plus 20% control-message loss on a tenth of the nodes: §4.6 recovery subsystem on vs off",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let (on, off) = (&chunks[0][0], &chunks[1][0]);
        let s = &on.summary;
        figure.notes.push(format!(
            "{side_len} nodes partition away {} times: recovery-on {:.0} Kbps vs recovery-off {:.0} Kbps steady useful; {} re-attaches (median {:.2}s), {} control retries, {} false-positive evictions",
            partition_counts.first().copied().unwrap_or(0),
            s.steady_useful_kbps,
            off.summary.steady_useful_kbps,
            s.reattaches,
            s.median_reattach_secs,
            s.control_retries,
            s.false_positive_evictions,
        ));
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

/// Misbehaving-peer sweep: a growing fraction of the overlay turns
/// adversarial mid-stream — even picks corrupt every data block they relay,
/// odd picks stall and falsely advertise phantom content — and Bullet with
/// the integrity layer (block verification, health scoring, quarantine) is
/// compared against the same overlay defenseless under the *same*
/// adversary script. The headline number is the clean-goodput ratio at
/// each fraction: without verification, tampered blocks count toward raw
/// delivery but carry nothing usable.
pub fn adversary_figure(scale: Scale) -> FigureResult {
    let sweep = Sweep::from_env();
    let mut figures = adversary_plan(scale, &sweep).run(sweep.pool());
    figures.remove(0)
}

/// Adversary fractions the sweep runs (fraction of non-source nodes).
pub const ADVERSARY_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// Per-relay corruption probability of the even-pick (corrupter) persona.
pub const ADVERSARY_CORRUPT_CHANCE: f64 = 0.75;

pub(crate) fn adversary_plan(scale: Scale, sweep: &Sweep) -> FigurePlan {
    let p = Params::new(scale, 36);
    let topo = prepare_topology(
        scale,
        p.participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        p.seed,
    );
    let tree = Arc::new(topo.tree(TreeKind::Random { max_children: 10 }, 0, p.seed));
    // The off arm clears the integrity layer explicitly so the
    // comparison stays on/off even under `BULLET_INTEGRITY=1`; both arms
    // share the recovery profile, making integrity the only delta.
    let defense_cfg = p.bullet_config(SCENARIO_RATE_BPS).integrity();
    let baseline_cfg = bullet_core::BulletConfig {
        integrity: None,
        ..p.bullet_config(SCENARIO_RATE_BPS).recovery()
    };
    let nodes: Vec<OverlayId> = (1..p.participants).collect();
    let window = p.duration.as_secs_f64() - p.stream_start.as_secs_f64();
    let turn_at = SimTime::from_secs_f64(p.stream_start.as_secs_f64() + window * 0.2);

    let seeds = sweep.run_seeds(p.seed);
    let mut tasks: Vec<RunTask> = Vec::new();
    for (arm, config) in [("defense on", &defense_cfg), ("defense off", &baseline_cfg)] {
        for fraction in ADVERSARY_FRACTIONS {
            let label = format!("Bullet - {arm} - {:.0}% adversaries", fraction * 100.0);
            for (k, &seed) in seeds.iter().enumerate() {
                // Per-seed scripts: each sweep seed samples its own
                // adversary placement (same convention as the churn
                // figure). Both arms at the same (fraction, seed) get the
                // identical script.
                let script = Arc::new(ScenarioScript::adversary_fraction(
                    &nodes,
                    fraction,
                    turn_at,
                    ADVERSARY_CORRUPT_CHANCE,
                    seed ^ 0xAD5A,
                ));
                let topo = topo.clone();
                let tree = tree.clone();
                let config = config.clone();
                let run = p.run_spec(&seed_label(&label, k));
                tasks.push(Box::new(move || {
                    bullet_run_scenario_on(topo.network(), &tree, &config, &run, &script, seed)
                }));
            }
        }
    }

    let seeds = seeds.len();
    FigurePlan::new(tasks, move |results| {
        let mut figure = FigureResult::new(
            "adversary",
            "Clean goodput while a growing fraction of the overlay corrupts, stalls or falsely advertises: integrity defense (verification + health scoring + quarantine) on vs off",
        );
        let chunks = chunked(results, seeds);
        for chunk in &chunks {
            for run in chunk {
                figure.add_run(run);
            }
        }
        let arms = ADVERSARY_FRACTIONS.len();
        for (i, fraction) in ADVERSARY_FRACTIONS.iter().enumerate() {
            let on = &chunks[i][0].summary;
            let off = &chunks[arms + i][0].summary;
            let ratio = if off.clean_goodput_kbps > 0.0 {
                format!("{:.1}x", on.clean_goodput_kbps / off.clean_goodput_kbps)
            } else {
                "every defense-off receiver poisoned".to_string()
            };
            figure.notes.push(format!(
                "{:.0}% adversaries: defense-on clean {:.0} Kbps vs defense-off {:.0} Kbps ({ratio}); on: {} rejected, {} quarantines, {} accepted; off: {} accepted",
                fraction * 100.0,
                on.clean_goodput_kbps,
                off.clean_goodput_kbps,
                on.corrupt_blocks_rejected,
                on.quarantines,
                on.corrupt_blocks_accepted,
                off.corrupt_blocks_accepted,
            ));
        }
        push_seed_spread_notes(&mut figure, &chunks);
        vec![figure]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::build_topology;

    #[test]
    fn access_link_lookup_finds_the_attachment_link() {
        let topo = build_topology(
            Scale::Small,
            10,
            BandwidthProfile::Medium,
            LossProfile::None,
            5,
        );
        for node in 0..10 {
            let link = access_link_of(&topo.spec, node);
            let spec = &topo.spec.links[link];
            let router = topo.spec.attachments[node];
            assert!(spec.a == router || spec.b == router);
        }
    }
}
