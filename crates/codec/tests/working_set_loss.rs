//! Round-trip tests for the erasure codes over a *full working set* under
//! the paper's §4.5 loss profile, including the empty-block and
//! single-block edge cases.
//!
//! A working set is framed into fixed-size blocks ([`Framing`]); the stream
//! is truncated mid-block so the tail block carries a single object and the
//! block after it is empty — both legal degenerates a receiver encounters
//! at the end of a transfer. Each block crosses its own lossy "path" with a
//! per-packet drop rate drawn from the paper's lossy-network model:
//! non-transit links lose up to 0.3% of packets and a random 5% of links
//! are overloaded at 5–10% loss.

use bullet_codec::{Framing, LtDecoder, LtEncoder, TornadoDecoder, TornadoEncoder};

/// Deterministic splitmix64 channel randomness (the codec crate has no RNG
/// dependency of its own).
struct Channel(u64);

impl Channel {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws one block-path's loss rate from the paper's §4.5 model: 5% of
    /// links overloaded at 5–10% loss, the rest at 0–0.3%.
    fn paper_loss_rate(&mut self) -> f64 {
        if self.unit() < 0.05 {
            0.05 + self.unit() * 0.05
        } else {
            self.unit() * 0.003
        }
    }

    fn drops(&mut self, rate: f64) -> bool {
        self.unit() < rate
    }
}

const OBJECT_BYTES: u32 = 48;
const OBJECTS_PER_BLOCK: u32 = 24;
/// 12 full blocks, then a block with a single object; the block after the
/// end of the stream is empty.
const TOTAL_OBJECTS: u64 = OBJECTS_PER_BLOCK as u64 * 12 + 1;

/// Deterministic payload of one object.
fn object_payload(seq: u64) -> Vec<u8> {
    (0..OBJECT_BYTES as u64)
        .map(|i| (seq.wrapping_mul(31).wrapping_add(i * 7) & 0xFF) as u8)
        .collect()
}

/// The framed working set: per-block source symbol vectors (the tail block
/// has one object, the one after it zero).
fn working_set() -> Vec<Vec<Vec<u8>>> {
    let framing = Framing::new(OBJECTS_PER_BLOCK, OBJECT_BYTES);
    let last_block = framing.object_of(TOTAL_OBJECTS - 1).block;
    let mut blocks: Vec<Vec<Vec<u8>>> = vec![Vec::new(); last_block as usize + 2];
    for seq in 0..TOTAL_OBJECTS {
        let id = framing.object_of(seq);
        blocks[id.block as usize].push(object_payload(seq));
    }
    assert_eq!(blocks[last_block as usize].len(), 1, "single-object tail");
    assert!(
        blocks.last().unwrap().is_empty(),
        "empty block past the end"
    );
    blocks
}

#[test]
fn lt_decodes_the_full_working_set_under_paper_loss() {
    let blocks = working_set();
    let mut channel = Channel(0x17C0_1055);
    let mut overheads = Vec::new();
    for (block_idx, source) in blocks.iter().enumerate() {
        let seed = 0xB17 + block_idx as u64;
        let k = source.len();
        let mut decoder = LtDecoder::new(k, OBJECT_BYTES as usize, seed);
        if k == 0 {
            assert!(decoder.is_complete(), "empty block decodes from nothing");
            assert_eq!(decoder.into_source(), Some(Vec::new()));
            continue;
        }
        let encoder = LtEncoder::new(source.clone(), seed);
        let loss = channel.paper_loss_rate();
        let mut id = 0u64;
        while !decoder.is_complete() {
            assert!(id < 100 * k as u64 + 100, "block {block_idx} never decoded");
            if !channel.drops(loss) {
                decoder.add(&encoder.symbol(id));
            }
            id += 1;
        }
        overheads.push(decoder.overhead());
        assert_eq!(
            decoder.into_source().unwrap(),
            *source,
            "block {block_idx} reconstructed incorrectly"
        );
    }
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    assert!(
        mean < 2.0,
        "mean LT reception overhead {mean:.2} unexpectedly high"
    );
}

#[test]
fn tornado_decodes_the_full_working_set_under_paper_loss() {
    let blocks = working_set();
    let mut channel = Channel(0x70B0_1055);
    for (block_idx, source) in blocks.iter().enumerate() {
        let seed = 0x70B + block_idx as u64;
        let k = source.len();
        let mut decoder = TornadoDecoder::new(k, OBJECT_BYTES as usize, seed, 4);
        if k == 0 {
            assert!(decoder.is_complete(), "empty block decodes from nothing");
            assert_eq!(decoder.into_source(), Some(Vec::new()));
            continue;
        }
        let encoder = TornadoEncoder::new(source.clone(), seed, 2.0, 4);
        let loss = channel.paper_loss_rate();
        let mut dropped = Vec::new();
        for index in 0..encoder.n() as u64 {
            if channel.drops(loss) {
                dropped.push(index);
            } else {
                decoder.add(&encoder.symbol(index));
            }
        }
        // Sparse single-layer recovery from a given pattern is
        // probabilistic; late retransmissions of the dropped packets must
        // always finish the block (correctness is unconditional).
        for index in dropped {
            if decoder.is_complete() {
                break;
            }
            decoder.add(&encoder.symbol(index));
        }
        assert!(decoder.is_complete(), "block {block_idx} never decoded");
        assert_eq!(
            decoder.into_source().unwrap(),
            *source,
            "block {block_idx} reconstructed incorrectly"
        );
    }
}

#[test]
fn single_object_blocks_round_trip_both_codecs() {
    let source = vec![object_payload(7)];
    let lt_enc = LtEncoder::new(source.clone(), 3);
    let mut lt_dec = LtDecoder::new(1, OBJECT_BYTES as usize, 3);
    // Every LT symbol of a k=1 block covers the single source symbol.
    lt_dec.add(&lt_enc.symbol(0));
    assert!(lt_dec.is_complete());
    assert_eq!(lt_dec.into_source().unwrap(), source);

    let t_enc = TornadoEncoder::new(source.clone(), 3, 2.0, 4);
    assert!(t_enc.n() >= 1);
    let mut t_dec = TornadoDecoder::new(1, OBJECT_BYTES as usize, 3, 4);
    t_dec.add(&t_enc.symbol(0));
    assert!(t_dec.is_complete());
    assert_eq!(t_dec.into_source().unwrap(), source);
}

#[test]
fn empty_block_decoders_complete_without_symbols() {
    let lt = LtDecoder::new(0, OBJECT_BYTES as usize, 9);
    assert!(lt.is_complete());
    assert_eq!(lt.overhead(), 0.0);
    assert_eq!(lt.into_source(), Some(Vec::new()));

    let tornado = TornadoDecoder::new(0, OBJECT_BYTES as usize, 9, 4);
    assert!(tornado.is_complete());
    assert_eq!(tornado.overhead(), 0.0);
    assert_eq!(tornado.into_source(), Some(Vec::new()));
}

#[test]
#[should_panic(expected = "empty block")]
fn lt_encoder_rejects_an_empty_block() {
    LtEncoder::new(Vec::new(), 1);
}

#[test]
#[should_panic(expected = "empty block")]
fn tornado_encoder_rejects_an_empty_block() {
    TornadoEncoder::new(Vec::new(), 1, 2.0, 4);
}
