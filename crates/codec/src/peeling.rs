//! A shared peeling (belief-propagation) decoder for XOR-based erasure codes.
//!
//! Both Tornado-style codes and LT codes produce encoded symbols that are the
//! XOR of some set of source symbols. Decoding proceeds by repeatedly finding
//! an equation with exactly one unknown source symbol, solving it, and
//! substituting the result into the remaining equations — the classic peeling
//! process whose real-time behaviour is what makes the digital fountain
//! approach practical (paper §2.1).

use std::collections::HashMap;

/// A peeling decoder over `k` source symbols of `symbol_bytes` each.
#[derive(Clone, Debug)]
pub struct PeelingDecoder {
    k: usize,
    symbol_bytes: usize,
    recovered: Vec<Option<Vec<u8>>>,
    recovered_count: usize,
    /// Pending equations: XOR payload plus the sorted list of still-unknown
    /// source indices it covers.
    equations: Vec<Equation>,
    /// Index from source symbol to the equations referencing it.
    uses: HashMap<usize, Vec<usize>>,
    /// Number of symbols fed to the decoder (for overhead statistics).
    symbols_seen: usize,
}

#[derive(Clone, Debug)]
struct Equation {
    data: Vec<u8>,
    unknowns: Vec<usize>,
    live: bool,
}

fn xor_into(target: &mut [u8], other: &[u8]) {
    for (t, o) in target.iter_mut().zip(other) {
        *t ^= o;
    }
}

impl PeelingDecoder {
    /// Creates a decoder for `k` source symbols of `symbol_bytes` bytes.
    ///
    /// `k == 0` is the legal degenerate of an empty block (a working set's
    /// empty tail): the decoder is complete immediately and ignores any
    /// symbols fed to it.
    pub fn new(k: usize, symbol_bytes: usize) -> Self {
        PeelingDecoder {
            k,
            symbol_bytes,
            recovered: vec![None; k],
            recovered_count: 0,
            equations: Vec::new(),
            uses: HashMap::new(),
            symbols_seen: 0,
        }
    }

    /// Number of source symbols recovered so far.
    pub fn recovered_count(&self) -> usize {
        self.recovered_count
    }

    /// Number of encoded symbols fed to the decoder.
    pub fn symbols_seen(&self) -> usize {
        self.symbols_seen
    }

    /// Whether every source symbol has been recovered.
    pub fn is_complete(&self) -> bool {
        self.recovered_count == self.k
    }

    /// Reception overhead so far: symbols consumed divided by `k` (0 for
    /// the empty block, which needs no symbols at all).
    pub fn overhead(&self) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        self.symbols_seen as f64 / self.k as f64
    }

    /// The recovered source symbols, if decoding is complete.
    pub fn into_source(self) -> Option<Vec<Vec<u8>>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            self.recovered
                .into_iter()
                .map(|s| s.expect("complete decoder has all symbols"))
                .collect(),
        )
    }

    /// Adds an encoded symbol that is the XOR of the source symbols listed in
    /// `covers`. Returns the number of *new* source symbols recovered as a
    /// result (possibly zero).
    pub fn add_symbol(&mut self, covers: &[usize], data: &[u8]) -> usize {
        assert_eq!(data.len(), self.symbol_bytes, "symbol size mismatch");
        self.symbols_seen += 1;
        let before = self.recovered_count;

        // Reduce the new equation by already-recovered symbols.
        let mut payload = data.to_vec();
        let mut unknowns = Vec::new();
        for &idx in covers {
            assert!(idx < self.k, "source index {idx} out of range");
            match &self.recovered[idx] {
                Some(known) => xor_into(&mut payload, known),
                None => {
                    if !unknowns.contains(&idx) {
                        unknowns.push(idx)
                    } else {
                        // The same index twice cancels out.
                        unknowns.retain(|&u| u != idx);
                    }
                }
            }
        }
        match unknowns.len() {
            0 => return 0,
            1 => {
                self.resolve(unknowns[0], payload);
            }
            _ => {
                let eq_idx = self.equations.len();
                for &u in &unknowns {
                    self.uses.entry(u).or_default().push(eq_idx);
                }
                self.equations.push(Equation {
                    data: payload,
                    unknowns,
                    live: true,
                });
            }
        }
        self.recovered_count - before
    }

    /// Records `value` for source symbol `idx` and propagates through every
    /// pending equation, iteratively peeling newly solvable ones.
    fn resolve(&mut self, idx: usize, value: Vec<u8>) {
        let mut stack = vec![(idx, value)];
        while let Some((idx, value)) = stack.pop() {
            if self.recovered[idx].is_some() {
                continue;
            }
            self.recovered[idx] = Some(value);
            self.recovered_count += 1;
            let Some(eq_ids) = self.uses.remove(&idx) else {
                continue;
            };
            for eq_id in eq_ids {
                let eq = &mut self.equations[eq_id];
                if !eq.live {
                    continue;
                }
                if let Some(pos) = eq.unknowns.iter().position(|&u| u == idx) {
                    eq.unknowns.swap_remove(pos);
                    let known = self.recovered[idx].clone().expect("just set");
                    xor_into(&mut eq.data, &known);
                    if eq.unknowns.len() == 1 {
                        eq.live = false;
                        let solved_idx = eq.unknowns[0];
                        stack.push((solved_idx, eq.data.clone()));
                    } else if eq.unknowns.is_empty() {
                        eq.live = false;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(byte: u8, len: usize) -> Vec<u8> {
        vec![byte; len]
    }

    #[test]
    fn systematic_symbols_decode_directly() {
        let mut dec = PeelingDecoder::new(3, 4);
        assert_eq!(dec.add_symbol(&[0], &sym(1, 4)), 1);
        assert_eq!(dec.add_symbol(&[1], &sym(2, 4)), 1);
        assert_eq!(dec.add_symbol(&[2], &sym(3, 4)), 1);
        assert!(dec.is_complete());
        let source = dec.into_source().unwrap();
        assert_eq!(source, vec![sym(1, 4), sym(2, 4), sym(3, 4)]);
    }

    #[test]
    fn xor_symbol_recovers_missing_source() {
        let a = sym(0xAA, 4);
        let b = sym(0x55, 4);
        let mut ab = a.clone();
        xor_into(&mut ab, &b);
        let mut dec = PeelingDecoder::new(2, 4);
        dec.add_symbol(&[0], &a);
        assert!(!dec.is_complete());
        // The XOR of both recovers b once a is known.
        assert_eq!(dec.add_symbol(&[0, 1], &ab), 1);
        assert!(dec.is_complete());
        assert_eq!(dec.into_source().unwrap()[1], b);
    }

    #[test]
    fn chained_peeling_cascades() {
        // Equations arrive before the symbol that unlocks them.
        let s: Vec<Vec<u8>> = (0..4u8).map(|i| sym(i + 1, 8)).collect();
        let mut e01 = s[0].clone();
        xor_into(&mut e01, &s[1]);
        let mut e12 = s[1].clone();
        xor_into(&mut e12, &s[2]);
        let mut e23 = s[2].clone();
        xor_into(&mut e23, &s[3]);
        let mut dec = PeelingDecoder::new(4, 8);
        assert_eq!(dec.add_symbol(&[0, 1], &e01), 0);
        assert_eq!(dec.add_symbol(&[1, 2], &e12), 0);
        assert_eq!(dec.add_symbol(&[2, 3], &e23), 0);
        // Receiving s0 unlocks the whole chain.
        assert_eq!(dec.add_symbol(&[0], &s[0]), 4);
        assert!(dec.is_complete());
        assert_eq!(dec.into_source().unwrap(), s);
    }

    #[test]
    fn duplicate_information_is_harmless() {
        let mut dec = PeelingDecoder::new(2, 4);
        dec.add_symbol(&[0], &sym(9, 4));
        dec.add_symbol(&[0], &sym(9, 4));
        assert_eq!(dec.recovered_count(), 1);
        assert_eq!(dec.symbols_seen(), 2);
        assert!((dec.overhead() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_index_in_one_equation_cancels() {
        let mut dec = PeelingDecoder::new(2, 4);
        // x0 ^ x0 ^ x1 = x1.
        assert_eq!(dec.add_symbol(&[0, 0, 1], &sym(7, 4)), 1);
        assert_eq!(dec.recovered_count(), 1);
    }

    #[test]
    #[should_panic(expected = "symbol size mismatch")]
    fn wrong_symbol_size_panics() {
        let mut dec = PeelingDecoder::new(2, 4);
        dec.add_symbol(&[0], &sym(1, 3));
    }
}
