//! Stream framing: blocks and objects (paper §1, §2).
//!
//! The sender splits the target data stream into sequential *blocks*, which
//! are further subdivided into packet-sized *objects*. Every object carries a
//! global sequence number; the mapping between sequence numbers and (block,
//! offset) pairs is what lets receivers know which block an arriving packet
//! belongs to and when a block can be decoded.

/// Identifies one object within the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// Index of the block the object belongs to.
    pub block: u64,
    /// Offset of the object within its block.
    pub offset: u32,
}

/// Fixed framing parameters shared by the sender and all receivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Framing {
    /// Number of objects per block.
    pub objects_per_block: u32,
    /// Payload bytes per object (typically one packet's payload).
    pub object_bytes: u32,
}

impl Framing {
    /// Creates a framing description.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(objects_per_block: u32, object_bytes: u32) -> Self {
        assert!(objects_per_block > 0, "blocks must contain objects");
        assert!(object_bytes > 0, "objects must carry payload");
        Framing {
            objects_per_block,
            object_bytes,
        }
    }

    /// Bytes of payload carried by one full block.
    pub fn block_bytes(&self) -> u64 {
        self.objects_per_block as u64 * self.object_bytes as u64
    }

    /// Maps a global sequence number to its (block, offset) pair.
    pub fn object_of(&self, seq: u64) -> ObjectId {
        ObjectId {
            block: seq / self.objects_per_block as u64,
            offset: (seq % self.objects_per_block as u64) as u32,
        }
    }

    /// Maps a (block, offset) pair back to the global sequence number.
    pub fn seq_of(&self, object: ObjectId) -> u64 {
        object.block * self.objects_per_block as u64 + object.offset as u64
    }

    /// The sequence-number range `[low, high]` of a block.
    pub fn block_range(&self, block: u64) -> (u64, u64) {
        let low = block * self.objects_per_block as u64;
        (low, low + self.objects_per_block as u64 - 1)
    }

    /// Number of whole blocks needed to carry `total_bytes` of data.
    pub fn blocks_for(&self, total_bytes: u64) -> u64 {
        total_bytes.div_ceil(self.block_bytes())
    }
}

/// Tracks per-block completion for a receiver, independent of the encoding
/// scheme in use (for the null encoding a block completes when every object
/// arrives; for erasure codes the decoder decides).
#[derive(Clone, Debug)]
pub struct BlockProgress {
    framing: Framing,
    received: std::collections::HashMap<u64, u32>,
    complete: std::collections::HashSet<u64>,
}

impl BlockProgress {
    /// Creates an empty tracker.
    pub fn new(framing: Framing) -> Self {
        BlockProgress {
            framing,
            received: std::collections::HashMap::new(),
            complete: std::collections::HashSet::new(),
        }
    }

    /// Records the arrival of `seq`. Returns `Some(block)` if this arrival
    /// completed the block.
    pub fn on_object(&mut self, seq: u64) -> Option<u64> {
        let object = self.framing.object_of(seq);
        if self.complete.contains(&object.block) {
            return None;
        }
        let count = self.received.entry(object.block).or_insert(0);
        *count += 1;
        if *count >= self.framing.objects_per_block {
            self.complete.insert(object.block);
            self.received.remove(&object.block);
            Some(object.block)
        } else {
            None
        }
    }

    /// Number of blocks fully received.
    pub fn complete_blocks(&self) -> usize {
        self.complete.len()
    }

    /// Whether a specific block is complete.
    pub fn is_complete(&self, block: u64) -> bool {
        self.complete.contains(&block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_object_round_trip() {
        let framing = Framing::new(100, 1_400);
        for seq in [0u64, 1, 99, 100, 101, 54_321] {
            let obj = framing.object_of(seq);
            assert_eq!(framing.seq_of(obj), seq);
        }
        assert_eq!(
            framing.object_of(250),
            ObjectId {
                block: 2,
                offset: 50
            }
        );
    }

    #[test]
    fn block_range_covers_exactly_one_block() {
        let framing = Framing::new(64, 1_000);
        let (low, high) = framing.block_range(3);
        assert_eq!(low, 192);
        assert_eq!(high, 255);
        assert_eq!(framing.object_of(low).block, 3);
        assert_eq!(framing.object_of(high).block, 3);
        assert_eq!(framing.object_of(high + 1).block, 4);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let framing = Framing::new(10, 100);
        assert_eq!(framing.block_bytes(), 1_000);
        assert_eq!(framing.blocks_for(1), 1);
        assert_eq!(framing.blocks_for(1_000), 1);
        assert_eq!(framing.blocks_for(1_001), 2);
    }

    #[test]
    fn progress_reports_completion_once() {
        let framing = Framing::new(4, 100);
        let mut progress = BlockProgress::new(framing);
        assert_eq!(progress.on_object(0), None);
        assert_eq!(progress.on_object(1), None);
        assert_eq!(progress.on_object(2), None);
        assert_eq!(progress.on_object(3), Some(0));
        assert_eq!(progress.on_object(3), None, "already complete");
        assert!(progress.is_complete(0));
        assert_eq!(progress.complete_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "blocks must contain objects")]
    fn zero_objects_per_block_rejected() {
        Framing::new(0, 100);
    }
}
