//! The "null" encoding scheme (paper §2.1): the original data stream is
//! transmitted best-effort, one object per packet, with no redundancy.
//!
//! It exists so that applications which do not want coding (or that layer
//! their own) can still use the Bullet machinery; a block is usable only when
//! every one of its objects has arrived.

use crate::block::{BlockProgress, Framing};

/// Pass-through "encoder": object `seq` is just the corresponding slice of
/// the input data.
#[derive(Clone, Debug)]
pub struct NullEncoder {
    framing: Framing,
    data: Vec<u8>,
}

impl NullEncoder {
    /// Wraps `data` with the given framing.
    pub fn new(framing: Framing, data: Vec<u8>) -> Self {
        NullEncoder { framing, data }
    }

    /// Total number of objects in the stream.
    pub fn objects(&self) -> u64 {
        (self.data.len() as u64).div_ceil(self.framing.object_bytes as u64)
    }

    /// The payload of object `seq`, zero-padded at the tail of the stream.
    /// Returns `None` past the end of the data.
    pub fn object(&self, seq: u64) -> Option<Vec<u8>> {
        if seq >= self.objects() {
            return None;
        }
        let size = self.framing.object_bytes as usize;
        let start = seq as usize * size;
        let end = (start + size).min(self.data.len());
        let mut payload = self.data[start..end].to_vec();
        payload.resize(size, 0);
        Some(payload)
    }
}

/// Pass-through "decoder": collects objects and reassembles the stream once
/// every object of every block has arrived.
#[derive(Clone, Debug)]
pub struct NullDecoder {
    framing: Framing,
    progress: BlockProgress,
    objects: std::collections::BTreeMap<u64, Vec<u8>>,
    total_objects: u64,
}

impl NullDecoder {
    /// Creates a decoder expecting `total_objects` objects.
    pub fn new(framing: Framing, total_objects: u64) -> Self {
        NullDecoder {
            framing,
            progress: BlockProgress::new(framing),
            objects: std::collections::BTreeMap::new(),
            total_objects,
        }
    }

    /// Records the arrival of object `seq`. Returns `Some(block)` when this
    /// arrival completes a block.
    pub fn add(&mut self, seq: u64, payload: Vec<u8>) -> Option<u64> {
        if seq >= self.total_objects || self.objects.contains_key(&seq) {
            return None;
        }
        self.objects.insert(seq, payload);
        self.progress.on_object(seq)
    }

    /// Number of distinct objects received.
    pub fn received(&self) -> u64 {
        self.objects.len() as u64
    }

    /// Whether the whole stream has arrived.
    pub fn is_complete(&self) -> bool {
        self.received() == self.total_objects
    }

    /// Reassembles the stream if complete.
    pub fn into_data(self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut data =
            Vec::with_capacity(self.total_objects as usize * self.framing.object_bytes as usize);
        for (_, payload) in self.objects {
            data.extend_from_slice(&payload);
        }
        Some(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reassembles_the_stream() {
        let framing = Framing::new(4, 10);
        let data: Vec<u8> = (0..100u8).collect();
        let enc = NullEncoder::new(framing, data.clone());
        assert_eq!(enc.objects(), 10);
        let mut dec = NullDecoder::new(framing, enc.objects());
        for seq in 0..enc.objects() {
            dec.add(seq, enc.object(seq).unwrap());
        }
        assert!(dec.is_complete());
        let out = dec.into_data().unwrap();
        assert_eq!(&out[..100], &data[..]);
    }

    #[test]
    fn tail_object_is_padded() {
        let framing = Framing::new(4, 10);
        let enc = NullEncoder::new(framing, vec![7u8; 15]);
        assert_eq!(enc.objects(), 2);
        let tail = enc.object(1).unwrap();
        assert_eq!(tail.len(), 10);
        assert_eq!(&tail[..5], &[7u8; 5]);
        assert_eq!(&tail[5..], &[0u8; 5]);
        assert_eq!(enc.object(2), None);
    }

    #[test]
    fn out_of_order_and_duplicate_arrivals_are_handled() {
        let framing = Framing::new(2, 4);
        let data: Vec<u8> = (0..16u8).collect();
        let enc = NullEncoder::new(framing, data);
        let mut dec = NullDecoder::new(framing, enc.objects());
        let order = [3u64, 0, 3, 2, 1];
        let mut completed_blocks = Vec::new();
        for &seq in &order {
            if let Some(block) = dec.add(seq, enc.object(seq).unwrap()) {
                completed_blocks.push(block);
            }
        }
        assert!(dec.is_complete());
        assert_eq!(completed_blocks, vec![1, 0]);
    }

    #[test]
    fn incomplete_stream_does_not_reassemble() {
        let framing = Framing::new(2, 4);
        let dec = NullDecoder::new(framing, 4);
        assert!(!dec.is_complete());
        assert!(dec.into_data().is_none());
    }
}
