//! LT codes (Luby Transform), the rateless fountain code cited by the paper
//! (§2.1) as removing Tornado codes' fixed stretch factor.
//!
//! The encoder draws each symbol's degree from the robust soliton
//! distribution, picks that many distinct source symbols pseudo-randomly from
//! the symbol id, and XORs them. Because the neighbor set is derived
//! deterministically from `(stream seed, symbol id)`, the receiver can
//! reconstruct it from the id alone — no neighbor list needs to travel with
//! the packet.

use crate::peeling::PeelingDecoder;

/// The robust soliton degree distribution for `k` source symbols.
#[derive(Clone, Debug)]
pub struct RobustSoliton {
    cumulative: Vec<f64>,
}

impl RobustSoliton {
    /// Builds the distribution with the customary parameters
    /// (`c`, `delta`) controlling the spike and tail. `k == 0` yields the
    /// empty distribution (every sampled degree is 0), so a decoder for an
    /// empty block is representable.
    pub fn new(k: usize, c: f64, delta: f64) -> Self {
        if k == 0 {
            return RobustSoliton {
                cumulative: Vec::new(),
            };
        }
        let kf = k as f64;
        let r = c * (kf / delta).ln() * kf.sqrt();
        let spike = ((kf / r).floor() as usize).clamp(1, k);
        // Ideal soliton rho(d).
        let mut weights = vec![0.0; k + 1];
        weights[1] = 1.0 / kf;
        for (d, w) in weights.iter_mut().enumerate().skip(2) {
            *w = 1.0 / (d as f64 * (d as f64 - 1.0));
        }
        // Robust addition tau(d).
        for (d, w) in weights.iter_mut().enumerate().skip(1) {
            if d < spike {
                *w += r / (d as f64 * kf);
            } else if d == spike {
                *w += r * (r / delta).ln() / kf;
            }
        }
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(k);
        let mut acc = 0.0;
        for &w in weights.iter().skip(1) {
            acc += w / total;
            cumulative.push(acc);
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        RobustSoliton { cumulative }
    }

    /// Standard parameters (c = 0.1, delta = 0.5) giving the ~5% reception
    /// overhead the paper quotes for LT codes.
    pub fn standard(k: usize) -> Self {
        RobustSoliton::new(k, 0.1, 0.5)
    }

    /// Samples a degree in `[1, k]` from a uniform `u` in `[0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        match self
            .cumulative
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in distribution"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the neighbor set (source symbol indices) of encoded symbol `id`.
///
/// Shared by the encoder and decoder so only the id needs to be transmitted.
pub fn neighbors(k: usize, stream_seed: u64, id: u64, dist: &RobustSoliton) -> Vec<usize> {
    let mut state = splitmix(stream_seed ^ id.wrapping_mul(0xA24BAED4963EE407));
    let u = (state >> 11) as f64 / (1u64 << 53) as f64;
    let degree = dist.sample(u).min(k);
    let mut picked = Vec::with_capacity(degree);
    while picked.len() < degree {
        state = splitmix(state);
        let idx = (state % k as u64) as usize;
        if !picked.contains(&idx) {
            picked.push(idx);
        }
    }
    picked
}

/// An encoded LT symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LtSymbol {
    /// Symbol id; the neighbor set is derived from it.
    pub id: u64,
    /// XOR of the covered source symbols.
    pub data: Vec<u8>,
}

/// The LT encoder for one block of source data.
#[derive(Clone, Debug)]
pub struct LtEncoder {
    source: Vec<Vec<u8>>,
    seed: u64,
    dist: RobustSoliton,
}

impl LtEncoder {
    /// Creates an encoder over `source` symbols (all the same length).
    ///
    /// # Panics
    ///
    /// Panics if `source` is empty or symbols have differing lengths.
    pub fn new(source: Vec<Vec<u8>>, seed: u64) -> Self {
        assert!(!source.is_empty(), "cannot encode an empty block");
        let len = source[0].len();
        assert!(
            source.iter().all(|s| s.len() == len),
            "all source symbols must have equal length"
        );
        let dist = RobustSoliton::standard(source.len());
        LtEncoder { source, seed, dist }
    }

    /// Number of source symbols `k`.
    pub fn k(&self) -> usize {
        self.source.len()
    }

    /// Produces encoded symbol `id`. Ids may be any `u64`; an unbounded
    /// stream of distinct ids yields the rateless property.
    pub fn symbol(&self, id: u64) -> LtSymbol {
        let covers = neighbors(self.k(), self.seed, id, &self.dist);
        let mut data = vec![0u8; self.source[0].len()];
        for &idx in &covers {
            for (d, s) in data.iter_mut().zip(&self.source[idx]) {
                *d ^= s;
            }
        }
        LtSymbol { id, data }
    }
}

/// The LT decoder for one block.
#[derive(Clone, Debug)]
pub struct LtDecoder {
    inner: PeelingDecoder,
    k: usize,
    seed: u64,
    dist: RobustSoliton,
}

impl LtDecoder {
    /// Creates a decoder expecting `k` source symbols of `symbol_bytes` each,
    /// for the stream identified by `seed`.
    pub fn new(k: usize, symbol_bytes: usize, seed: u64) -> Self {
        LtDecoder {
            inner: PeelingDecoder::new(k, symbol_bytes),
            k,
            seed,
            dist: RobustSoliton::standard(k),
        }
    }

    /// Feeds one received symbol. Returns the number of newly recovered
    /// source symbols.
    pub fn add(&mut self, symbol: &LtSymbol) -> usize {
        let covers = neighbors(self.k, self.seed, symbol.id, &self.dist);
        self.inner.add_symbol(&covers, &symbol.data)
    }

    /// Whether the whole block has been recovered.
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// Symbols consumed divided by `k` (the reception overhead `1 + ε`).
    pub fn overhead(&self) -> f64 {
        self.inner.overhead()
    }

    /// Recovered source symbols, if complete.
    pub fn into_source(self) -> Option<Vec<Vec<u8>>> {
        self.inner.into_source()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_source(k: usize, bytes: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..bytes)
                    .map(|j| (splitmix((i * bytes + j) as u64) & 0xFF) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn round_trip_with_modest_overhead() {
        let k = 100;
        let source = make_source(k, 64);
        let enc = LtEncoder::new(source.clone(), 42);
        let mut dec = LtDecoder::new(k, 64, 42);
        let mut used = 0;
        for id in 0..(3 * k as u64) {
            used += 1;
            dec.add(&enc.symbol(id));
            if dec.is_complete() {
                break;
            }
        }
        assert!(dec.is_complete(), "failed to decode after {used} symbols");
        assert!(
            dec.overhead() < 1.6,
            "reception overhead {} unexpectedly high",
            dec.overhead()
        );
        assert_eq!(dec.into_source().unwrap(), source);
    }

    #[test]
    fn decoding_tolerates_arbitrary_losses() {
        let k = 50;
        let source = make_source(k, 32);
        let enc = LtEncoder::new(source.clone(), 7);
        let mut dec = LtDecoder::new(k, 32, 7);
        // Drop two out of every three symbols; use only ids divisible by 3.
        let mut id = 0u64;
        while !dec.is_complete() && id < 10_000 {
            if id.is_multiple_of(3) {
                dec.add(&enc.symbol(id));
            }
            id += 1;
        }
        assert!(dec.is_complete());
        assert_eq!(dec.into_source().unwrap(), source);
    }

    #[test]
    fn encoder_and_decoder_agree_on_neighbors() {
        let dist = RobustSoliton::standard(200);
        for id in 0..100u64 {
            let a = neighbors(200, 9, id, &dist);
            let b = neighbors(200, 9, id, &dist);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert!(a.iter().all(|&i| i < 200));
            // Distinct indices.
            let mut sorted = a.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), a.len());
        }
    }

    #[test]
    fn soliton_distribution_is_a_distribution() {
        let dist = RobustSoliton::standard(1_000);
        assert_eq!(dist.sample(0.0), 1);
        assert!(dist.sample(0.999_999) <= 1_000);
        // Degree-1 and degree-2 symbols dominate.
        let low_degree = (0..10_000)
            .map(|i| dist.sample(i as f64 / 10_000.0))
            .filter(|&d| d <= 2)
            .count();
        assert!(low_degree > 4_000, "only {low_degree} low-degree samples");
    }

    #[test]
    fn different_seeds_produce_different_symbols() {
        let source = make_source(20, 16);
        let a = LtEncoder::new(source.clone(), 1).symbol(5);
        let b = LtEncoder::new(source, 2).symbol(5);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_symbol_lengths_rejected() {
        LtEncoder::new(vec![vec![0u8; 4], vec![0u8; 5]], 1);
    }
}
