//! # bullet-codec
//!
//! Data encoding schemes for Bullet (paper §2.1).
//!
//! Depending on the application, Bullet can disseminate data under a "digital
//! fountain" erasure code — so that any sufficiently large subset of packets
//! reconstructs the original blocks — or under the null encoding where the
//! raw stream is forwarded best-effort. This crate provides:
//!
//! * [`block`] — the block/object framing shared by every scheme,
//! * [`lt`] — LT codes (rateless, robust-soliton degrees, peeling decoder),
//! * [`tornado`] — a Tornado-style systematic XOR code with a fixed stretch
//!   factor,
//! * [`null`] — the pass-through encoding, and
//! * [`peeling`] — the shared peeling decoder the XOR codes are built on.

#![warn(missing_docs)]

pub mod block;
pub mod lt;
pub mod null;
pub mod peeling;
pub mod tornado;

pub use block::{BlockProgress, Framing, ObjectId};
pub use lt::{LtDecoder, LtEncoder, LtSymbol, RobustSoliton};
pub use null::{NullDecoder, NullEncoder};
pub use peeling::PeelingDecoder;
pub use tornado::{TornadoDecoder, TornadoEncoder, TornadoSymbol};
