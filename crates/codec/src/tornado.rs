//! A Tornado-style systematic erasure code (paper §2.1).
//!
//! Tornado codes transmit the original `k` data packets plus redundant
//! packets formed by XORing selected data packets; any `(1 + ε)k` received
//! packets reconstruct the block with ε typically 0.03–0.05, at the cost of a
//! predetermined stretch factor `n/k`. We implement a single-layer systematic
//! XOR code with pseudo-random sparse check packets and peeling decoding —
//! the structure is simplified relative to the full multi-layer cascade, but
//! it preserves the properties Bullet relies on: systematic transmission, a
//! fixed stretch factor, low reception overhead, and linear-time peeling.

use crate::peeling::PeelingDecoder;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the set of data packets covered by check packet `check_idx`.
fn check_neighbors(k: usize, seed: u64, check_idx: u64, degree: usize) -> Vec<usize> {
    let mut state = splitmix(seed ^ check_idx.wrapping_mul(0xD6E8FEB86659FD93));
    let mut picked = Vec::with_capacity(degree);
    while picked.len() < degree.min(k) {
        state = splitmix(state);
        let idx = (state % k as u64) as usize;
        if !picked.contains(&idx) {
            picked.push(idx);
        }
    }
    picked
}

/// One packet of a Tornado-encoded block: either an original data packet or
/// a redundant check packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornadoSymbol {
    /// Index in `[0, n)`: indices below `k` are systematic data packets,
    /// the rest are check packets.
    pub index: u64,
    /// Payload (data packet) or XOR of covered data packets (check packet).
    pub data: Vec<u8>,
}

/// Encoder with a fixed stretch factor `n / k`.
#[derive(Clone, Debug)]
pub struct TornadoEncoder {
    source: Vec<Vec<u8>>,
    seed: u64,
    n: usize,
    check_degree: usize,
}

impl TornadoEncoder {
    /// Creates an encoder over `source` with the given stretch factor
    /// (e.g. 1.5 or 2.0). Check packets cover `check_degree` data packets
    /// each; small degrees keep encoding and peeling cheap.
    pub fn new(source: Vec<Vec<u8>>, seed: u64, stretch: f64, check_degree: usize) -> Self {
        assert!(!source.is_empty(), "cannot encode an empty block");
        let len = source[0].len();
        assert!(
            source.iter().all(|s| s.len() == len),
            "all source symbols must have equal length"
        );
        assert!(stretch >= 1.0, "stretch factor must be at least 1");
        let k = source.len();
        let n = ((k as f64) * stretch).round() as usize;
        TornadoEncoder {
            source,
            seed,
            n: n.max(k),
            check_degree: check_degree.clamp(2, k.max(2)),
        }
    }

    /// Number of source packets `k`.
    pub fn k(&self) -> usize {
        self.source.len()
    }

    /// Total packets per block `n` (stretch × k).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Produces packet `index` of the encoded block.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn symbol(&self, index: u64) -> TornadoSymbol {
        assert!((index as usize) < self.n, "index beyond the stretch factor");
        let k = self.k();
        if (index as usize) < k {
            return TornadoSymbol {
                index,
                data: self.source[index as usize].clone(),
            };
        }
        let covers = check_neighbors(k, self.seed, index - k as u64, self.check_degree);
        let mut data = vec![0u8; self.source[0].len()];
        for &idx in &covers {
            for (d, s) in data.iter_mut().zip(&self.source[idx]) {
                *d ^= s;
            }
        }
        TornadoSymbol { index, data }
    }
}

/// Decoder for a Tornado-encoded block.
#[derive(Clone, Debug)]
pub struct TornadoDecoder {
    inner: PeelingDecoder,
    k: usize,
    seed: u64,
    check_degree: usize,
}

impl TornadoDecoder {
    /// Creates a decoder matching an encoder's `(k, symbol_bytes, seed,
    /// check_degree)` parameters.
    pub fn new(k: usize, symbol_bytes: usize, seed: u64, check_degree: usize) -> Self {
        TornadoDecoder {
            inner: PeelingDecoder::new(k, symbol_bytes),
            k,
            seed,
            check_degree: check_degree.clamp(2, k.max(2)),
        }
    }

    /// Feeds one received packet; returns the number of newly recovered data
    /// packets.
    pub fn add(&mut self, symbol: &TornadoSymbol) -> usize {
        if (symbol.index as usize) < self.k {
            self.inner
                .add_symbol(&[symbol.index as usize], &symbol.data)
        } else {
            let covers = check_neighbors(
                self.k,
                self.seed,
                symbol.index - self.k as u64,
                self.check_degree,
            );
            self.inner.add_symbol(&covers, &symbol.data)
        }
    }

    /// Whether the block is fully recovered.
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// Reception overhead so far (packets consumed / k).
    pub fn overhead(&self) -> f64 {
        self.inner.overhead()
    }

    /// The recovered data packets, if complete.
    pub fn into_source(self) -> Option<Vec<Vec<u8>>> {
        self.inner.into_source()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_source(k: usize, bytes: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..bytes)
                    .map(|j| ((i * 31 + j * 7) & 0xFF) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn lossless_reception_decodes_from_systematic_packets() {
        let k = 40;
        let source = make_source(k, 32);
        let enc = TornadoEncoder::new(source.clone(), 3, 2.0, 4);
        let mut dec = TornadoDecoder::new(k, 32, 3, 4);
        for index in 0..k as u64 {
            dec.add(&enc.symbol(index));
        }
        assert!(dec.is_complete());
        assert!((dec.overhead() - 1.0).abs() < 1e-9);
        assert_eq!(dec.into_source().unwrap(), source);
    }

    #[test]
    fn check_packets_recover_lost_data_packets() {
        let k = 60;
        let source = make_source(k, 16);
        let enc = TornadoEncoder::new(source.clone(), 11, 2.0, 4);
        let mut dec = TornadoDecoder::new(k, 16, 11, 4);
        // Lose 10% of the systematic packets, then read check packets until
        // the block completes.
        for index in 0..k as u64 {
            if index % 10 != 0 {
                dec.add(&enc.symbol(index));
            }
        }
        assert!(!dec.is_complete());
        let mut index = k as u64;
        while !dec.is_complete() && (index as usize) < enc.n() {
            dec.add(&enc.symbol(index));
            index += 1;
        }
        assert!(dec.is_complete(), "check packets exhausted before recovery");
        assert!(dec.overhead() < 1.5, "overhead {}", dec.overhead());
        assert_eq!(dec.into_source().unwrap(), source);
    }

    #[test]
    fn stretch_factor_bounds_total_packets() {
        let enc = TornadoEncoder::new(make_source(100, 8), 1, 1.5, 3);
        assert_eq!(enc.n(), 150);
        assert_eq!(enc.k(), 100);
    }

    #[test]
    #[should_panic(expected = "beyond the stretch factor")]
    fn indices_beyond_n_panic() {
        let enc = TornadoEncoder::new(make_source(10, 8), 1, 1.5, 3);
        enc.symbol(15);
    }

    #[test]
    fn encoder_is_deterministic() {
        let source = make_source(20, 8);
        let a = TornadoEncoder::new(source.clone(), 5, 2.0, 3);
        let b = TornadoEncoder::new(source, 5, 2.0, 3);
        for index in 0..a.n() as u64 {
            assert_eq!(a.symbol(index), b.symbol(index));
        }
    }
}
