//! # bullet-dynamics
//!
//! The scenario dynamics engine: deterministic scripts of mid-run network
//! and membership events — node crashes, graceful leaves, late joins, flash
//! crowds, link capacity/loss mutation and correlated stub outages — plus
//! the driver that applies them to a running [`bullet_netsim::Sim`].
//!
//! The paper's evaluation freezes the network for the length of a run and
//! scripts at most one node failure (Figs. 13/14). Bullet's headline claim,
//! though, is that the *mesh* keeps delivering when the network changes
//! underneath it; this crate makes those regimes expressible:
//!
//! * [`ScenarioScript`] is a deterministic, time-sorted list of
//!   [`ScenarioEvent`]s, built either explicitly, from the distribution
//!   generators ([`ScenarioScript::exponential_churn`],
//!   [`ScenarioScript::flash_crowd`], [`ScenarioScript::oscillating_link`],
//!   [`ScenarioScript::stub_outage`]), or parsed from the text format the
//!   `BULLET_SCENARIO` environment variable carries.
//! * [`ScenarioDriver`] owns a script during a run: crashes and recoveries
//!   are pre-scheduled through the simulator's own event queue (so a
//!   one-crash script is event-for-event identical to the legacy
//!   `RunSpec::failure` path), while lifecycle transitions that need agent
//!   cooperation — graceful leaves, (re)joins — and link mutations are
//!   applied between event-loop steps, after every simulator event at their
//!   instant.
//! * [`ScenarioAgent`] is the lifecycle contract protocols opt into:
//!   `on_graceful_leave` says goodbye (Bullet hands its children to its
//!   parent and tears down mesh peerings), `on_join` bootstraps a late
//!   joiner or rejoiner (Bullet re-arms its periodic timers under a fresh
//!   timer generation).
//!
//! Everything is deterministic: generators draw from the workspace's seeded
//! [`bullet_netsim::SimRng`], events are totally ordered by `(time,
//! insertion index)`, and the driver's interleaving with the simulator is a
//! pure function of the script and the seed.

#![warn(missing_docs)]

pub mod driver;
pub mod script;

pub use driver::{ScenarioAgent, ScenarioDriver, ScenarioStats};
pub use script::{ChurnConfig, ScenarioAction, ScenarioEvent, ScenarioScript};
