//! The scenario driver: applies a [`ScenarioScript`] to a running
//! simulation.
//!
//! Two application channels keep semantics precise:
//!
//! * **Pre-scheduled events** (crashes) go through the simulator's own
//!   event queue at install time, in script order. A one-crash script is
//!   therefore *event-for-event identical* to the legacy
//!   `RunSpec::failure` injection — same sequence numbers, same ordering
//!   against messages at the failure instant — which is what lets the
//!   Figs. 13/14 harness route through the engine without moving its
//!   golden numbers.
//! * **Stepped events** (recoveries, graceful leaves, joins, partitions,
//!   fault plans, link and router mutations) need either an agent callback
//!   or `&mut` access to the network/simulator, which the event queue
//!   cannot deliver. The driver runs the simulator up to the event's
//!   instant and applies the action *after every simulator event at that
//!   instant* — a fixed, documented interleaving that keeps runs
//!   deterministic. Recoveries step (rather than pre-schedule) so they can
//!   run the agent's `on_join` bootstrap: recovered nodes bump timer
//!   generations and reset connection state exactly like late joiners.

use bullet_netsim::{Agent, Context, FaultPlan, Sim, SimDuration, SimRng, SimTime};

use crate::script::{ScenarioAction, ScenarioEvent, ScenarioScript};

/// The lifecycle contract protocol agents opt into to participate in
/// scripted membership dynamics. Both hooks default to no-ops, so a
/// protocol that ignores churn still runs under any script — its nodes
/// just fail and revive silently.
pub trait ScenarioAgent: Agent {
    /// The node is about to leave gracefully: say goodbye (hand children
    /// off, tear down peerings). Emitted sends still go out; immediately
    /// after this returns the node is failed.
    fn on_graceful_leave(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// The node just (re)joined: bootstrap participation (re-arm periodic
    /// timers, reset stale connection state). Runs with the failed flag
    /// already cleared.
    fn on_join(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// The node was scripted to misbehave (or to stop misbehaving — the
    /// plan's flags may all be clear). The simulator injects the plan's
    /// packet-level behaviors (stalls, payload corruption) itself; this
    /// hook lets the agent adopt the *protocol-level* behaviors, such as
    /// advertising content it does not hold when
    /// [`FaultPlan::false_advertise`] is set. Runs right after the plan
    /// is installed.
    fn on_adversary(&mut self, _ctx: &mut Context<'_, Self::Msg>, _plan: FaultPlan) {}

    /// The node was scripted slow (overload evaluation): it should present
    /// as a persistent laggard to its mesh senders — e.g. by scaling the
    /// intake figure it reports to them by `factor`. A factor of `1.0`
    /// restores normal reporting.
    fn on_slow_node(&mut self, _ctx: &mut Context<'_, Self::Msg>, _factor: f64) {}
}

/// Counters of the actions a driver has applied, for harness assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScenarioStats {
    /// Crashes pre-scheduled at install.
    pub crashes: u64,
    /// Crash recoveries applied (failed flag cleared + `on_join` re-bootstrap).
    pub recoveries: u64,
    /// Graceful leaves applied.
    pub leaves: u64,
    /// Joins applied.
    pub joins: u64,
    /// Link mutations applied (capacity, loss, up/down).
    pub link_mutations: u64,
    /// Router (correlated stub) mutations applied.
    pub router_mutations: u64,
    /// Partitions applied.
    pub partitions: u64,
    /// Partition heals applied.
    pub heals: u64,
    /// Fault plans installed.
    pub faults: u64,
    /// Adversary plans installed (fault plan + agent behavior hook).
    pub adversaries: u64,
    /// Slow-node switches applied (agent reporting hook).
    pub slow_nodes: u64,
}

/// Drives one [`ScenarioScript`] over one simulation run.
pub struct ScenarioDriver {
    initially_down: Vec<usize>,
    prescheduled: Vec<ScenarioEvent>,
    stepped: Vec<ScenarioEvent>,
    next: usize,
    installed: bool,
    /// What has been applied so far.
    pub stats: ScenarioStats,
    /// Wall-clock seconds spent inside route-affecting mutations (link
    /// bandwidth/loss/up, router up) — the simulator repairs or invalidates
    /// routes synchronously inside these calls, so this is the driver's
    /// share of routing-repair time. Excluded from [`ScenarioStats`] so the
    /// stats stay comparable across runs; feed it to self-profiling instead.
    pub repair_wall_secs: f64,
}

impl ScenarioDriver {
    /// Builds a driver for `script`. Call [`ScenarioDriver::install`]
    /// before the first run step.
    pub fn new(script: &ScenarioScript) -> Self {
        let mut initially_down = script.initially_down().to_vec();
        let mut prescheduled = Vec::new();
        let mut stepped = Vec::new();
        for event in script.sorted_events() {
            if event.action.is_prescheduled() {
                prescheduled.push(event);
            } else if let ScenarioAction::JoinStorm {
                first,
                count,
                ramp_secs,
                seed,
            } = event.action
            {
                // Expand the storm deterministically: the cohort starts the
                // run down and joins at seeded uniform offsets inside the
                // ramp — the same shape `ScenarioScript::flash_crowd`
                // generates, but carried as one compact script line.
                let mut rng = SimRng::new(seed);
                for node in first..first + count {
                    if !initially_down.contains(&node) {
                        initially_down.push(node);
                    }
                    let offset = rng.next_f64() * ramp_secs;
                    stepped.push(ScenarioEvent {
                        at: SimTime::from_secs_f64(event.at.as_secs_f64() + offset),
                        action: ScenarioAction::Join { node },
                    });
                }
            } else {
                stepped.push(event);
            }
        }
        // Storm expansion lands joins at arbitrary offsets; re-sort (stably,
        // so equal-time events keep script order) for the stepping walk.
        stepped.sort_by_key(|e| e.at.as_micros());
        ScenarioDriver {
            initially_down,
            prescheduled,
            stepped,
            next: 0,
            installed: false,
            stats: ScenarioStats::default(),
            repair_wall_secs: 0.0,
        }
    }

    /// Installs the script into a fresh simulation: marks late joiners
    /// failed and pre-schedules crashes through the simulator's event
    /// queue (in script order, before any other event is scheduled —
    /// exactly like the legacy failure injection).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn install<A: ScenarioAgent>(&mut self, sim: &mut Sim<A>) {
        assert!(!self.installed, "driver installed twice");
        self.installed = true;
        for &node in &self.initially_down {
            sim.set_node_failed(node, true);
        }
        for event in &self.prescheduled {
            match event.action {
                ScenarioAction::Crash { node } => {
                    sim.schedule_failure(event.at, node);
                    self.stats.crashes += 1;
                }
                ref other => unreachable!("not a prescheduled action: {other:?}"),
            }
        }
    }

    /// Runs the simulation until `end`, applying every stepped event whose
    /// time has come. An event at time `t` applies after all simulator
    /// events at `t`.
    ///
    /// # Panics
    ///
    /// Panics if [`ScenarioDriver::install`] has not run.
    pub fn run_until<A: ScenarioAgent>(&mut self, sim: &mut Sim<A>, end: SimTime) {
        assert!(self.installed, "call install() before running");
        while self.next < self.stepped.len() && self.stepped[self.next].at <= end {
            let event = self.stepped[self.next].clone();
            self.next += 1;
            sim.run_until(event.at);
            self.apply(sim, &event.action);
        }
        sim.run_until(end);
    }

    /// Runs until `end`, invoking `sample` every `interval` of simulated
    /// time (including at `end`) — the scenario-aware mirror of
    /// [`Sim::run_sampled`].
    pub fn run_sampled<A: ScenarioAgent, F>(
        &mut self,
        sim: &mut Sim<A>,
        end: SimTime,
        interval: SimDuration,
        mut sample: F,
    ) where
        F: FnMut(SimTime, &Sim<A>),
    {
        assert!(!interval.is_zero(), "sampling interval must be non-zero");
        let mut next = sim.now() + interval;
        while next < end {
            self.run_until(sim, next);
            sample(next, sim);
            next += interval;
        }
        self.run_until(sim, end);
        sample(end, sim);
    }

    /// Stepped events not yet applied.
    pub fn pending(&self) -> usize {
        self.stepped.len() - self.next
    }

    fn apply<A: ScenarioAgent>(&mut self, sim: &mut Sim<A>, action: &ScenarioAction) {
        match action {
            &ScenarioAction::Recover { node } => {
                sim.set_node_failed(node, false);
                sim.invoke_agent(node, |agent, ctx| agent.on_join(ctx));
                self.stats.recoveries += 1;
            }
            &ScenarioAction::GracefulLeave { node } => {
                if !sim.is_failed(node) {
                    sim.invoke_agent(node, |agent, ctx| agent.on_graceful_leave(ctx));
                }
                sim.set_node_failed(node, true);
                self.stats.leaves += 1;
            }
            &ScenarioAction::Join { node } => {
                sim.set_node_failed(node, false);
                sim.invoke_agent(node, |agent, ctx| agent.on_join(ctx));
                self.stats.joins += 1;
            }
            &ScenarioAction::SetLinkBandwidth { link, bps } => {
                let started = std::time::Instant::now();
                sim.network_mut().set_link_bandwidth(link, bps);
                self.repair_wall_secs += started.elapsed().as_secs_f64();
                sim.record_route_repair();
                self.stats.link_mutations += 1;
            }
            &ScenarioAction::SetLinkLoss { link, loss } => {
                let started = std::time::Instant::now();
                sim.network_mut().set_link_loss(link, loss);
                self.repair_wall_secs += started.elapsed().as_secs_f64();
                sim.record_route_repair();
                self.stats.link_mutations += 1;
            }
            &ScenarioAction::SetLinkUp { link, up } => {
                let started = std::time::Instant::now();
                sim.network_mut().set_link_up(link, up);
                self.repair_wall_secs += started.elapsed().as_secs_f64();
                sim.record_route_repair();
                self.stats.link_mutations += 1;
            }
            &ScenarioAction::SetRouterUp { router, up } => {
                let started = std::time::Instant::now();
                sim.network_mut().set_router_up(router, up);
                self.repair_wall_secs += started.elapsed().as_secs_f64();
                sim.record_route_repair();
                self.stats.router_mutations += 1;
            }
            ScenarioAction::Partition { nodes } => {
                sim.set_partition(nodes);
                self.stats.partitions += 1;
            }
            ScenarioAction::Heal => {
                sim.heal_partition();
                self.stats.heals += 1;
            }
            &ScenarioAction::Fault { node, plan } => {
                sim.set_fault_plan(node, plan);
                self.stats.faults += 1;
            }
            &ScenarioAction::Adversary { node, plan } => {
                sim.set_fault_plan(node, plan);
                if !sim.is_failed(node) {
                    sim.invoke_agent(node, |agent, ctx| agent.on_adversary(ctx, plan));
                }
                self.stats.adversaries += 1;
            }
            &ScenarioAction::SlowNode { node, factor } => {
                if !sim.is_failed(node) {
                    sim.invoke_agent(node, |agent, ctx| agent.on_slow_node(ctx, factor));
                }
                self.stats.slow_nodes += 1;
            }
            ScenarioAction::Crash { .. } => {
                unreachable!("prescheduled actions never reach the stepping path")
            }
            ScenarioAction::JoinStorm { .. } => {
                unreachable!("join storms are expanded at driver construction")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::{LinkSpec, NetworkSpec, OverlayId, SimCounters};

    /// A heartbeat protocol: every node broadcasts a beat each second and
    /// counts beats it hears; the scenario hooks record their invocations.
    struct BeatAgent {
        peers: Vec<OverlayId>,
        heard: u64,
        leaves: Vec<SimTime>,
        joins: Vec<SimTime>,
        adversary_plans: Vec<FaultPlan>,
        slow_factors: Vec<f64>,
    }

    impl BeatAgent {
        fn new(peers: Vec<OverlayId>) -> Self {
            BeatAgent {
                peers,
                heard: 0,
                leaves: Vec::new(),
                joins: Vec::new(),
                adversary_plans: Vec::new(),
                slow_factors: Vec::new(),
            }
        }
    }

    impl Agent for BeatAgent {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }

        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: OverlayId, _msg: ()) {
            self.heard += 1;
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _tag: u64) {
            for &peer in &self.peers.clone() {
                ctx.send_data(peer, (), 100);
            }
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
    }

    impl ScenarioAgent for BeatAgent {
        fn on_graceful_leave(&mut self, ctx: &mut Context<'_, ()>) {
            self.leaves.push(ctx.now());
            for &peer in &self.peers.clone() {
                ctx.send_data(peer, (), 100);
            }
        }

        fn on_join(&mut self, ctx: &mut Context<'_, ()>) {
            self.joins.push(ctx.now());
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }

        fn on_adversary(&mut self, _ctx: &mut Context<'_, ()>, plan: FaultPlan) {
            self.adversary_plans.push(plan);
        }

        fn on_slow_node(&mut self, _ctx: &mut Context<'_, ()>, factor: f64) {
            self.slow_factors.push(factor);
        }
    }

    fn hub(n: usize) -> NetworkSpec {
        let mut spec = NetworkSpec::new(n + 1);
        for i in 0..n {
            spec.add_link(LinkSpec::new(
                n,
                i,
                10_000_000.0,
                SimDuration::from_millis(5),
            ));
            spec.attach(i);
        }
        spec
    }

    fn beat_sim(n: usize) -> Sim<BeatAgent> {
        let agents = (0..n)
            .map(|i| BeatAgent::new((0..n).filter(|&p| p != i).collect()))
            .collect();
        Sim::new(&hub(n), agents, 42)
    }

    #[test]
    fn lifecycle_hooks_run_at_scripted_times() {
        let script = ScenarioScript::new()
            .at(
                SimTime::from_secs(3),
                ScenarioAction::GracefulLeave { node: 1 },
            )
            .at(SimTime::from_secs(6), ScenarioAction::Join { node: 1 });
        let mut driver = ScenarioDriver::new(&script);
        let mut sim = beat_sim(3);
        driver.install(&mut sim);
        driver.run_until(&mut sim, SimTime::from_secs(10));
        assert_eq!(sim.agent(1).leaves, vec![SimTime::from_secs(3)]);
        assert_eq!(sim.agent(1).joins, vec![SimTime::from_secs(6)]);
        assert!(!sim.is_failed(1), "rejoined node must be up");
        assert_eq!(driver.stats.leaves, 1);
        assert_eq!(driver.stats.joins, 1);
        assert_eq!(driver.pending(), 0);
        // The goodbye beats emitted in on_graceful_leave were delivered.
        assert!(sim.agent(0).heard > 0);
    }

    #[test]
    fn crash_via_driver_is_event_identical_to_schedule_failure() {
        let legacy: SimCounters = {
            let mut sim = beat_sim(4);
            sim.schedule_failure(SimTime::from_secs(5), 2);
            sim.run_until(SimTime::from_secs(12));
            sim.counters()
        };
        let scripted: SimCounters = {
            let script = ScenarioScript::single_crash(SimTime::from_secs(5), 2);
            let mut driver = ScenarioDriver::new(&script);
            let mut sim = beat_sim(4);
            driver.install(&mut sim);
            driver.run_until(&mut sim, SimTime::from_secs(12));
            assert_eq!(driver.stats.crashes, 1);
            sim.counters()
        };
        assert_eq!(
            legacy, scripted,
            "one-crash script must be event-for-event identical to the legacy injection"
        );
    }

    #[test]
    fn recover_runs_the_on_join_bootstrap() {
        let script = ScenarioScript::new()
            .at(SimTime::from_secs(3), ScenarioAction::Crash { node: 1 })
            .at(SimTime::from_secs(6), ScenarioAction::Recover { node: 1 });
        let mut driver = ScenarioDriver::new(&script);
        let mut sim = beat_sim(3);
        driver.install(&mut sim);
        driver.run_until(&mut sim, SimTime::from_secs(10));
        assert_eq!(
            sim.agent(1).joins,
            vec![SimTime::from_secs(6)],
            "recovery must run the agent's on_join bootstrap"
        );
        assert!(!sim.is_failed(1), "recovered node must be up");
        assert!(sim.agent(1).heard > 0, "recovered node rejoins the stream");
        assert_eq!(driver.stats.crashes, 1);
        assert_eq!(driver.stats.recoveries, 1);
        assert_eq!(driver.stats.joins, 0, "recoveries are counted separately");
    }

    #[test]
    fn partition_heal_and_fault_apply_between_steps() {
        let script = ScenarioScript::new()
            .at(
                SimTime::from_secs(2),
                ScenarioAction::Partition { nodes: vec![1] },
            )
            .at(SimTime::from_secs(5), ScenarioAction::Heal)
            .at(
                SimTime::from_secs(7),
                ScenarioAction::Fault {
                    node: 0,
                    plan: bullet_netsim::FaultPlan {
                        drop_chance: 1.0,
                        ..Default::default()
                    },
                },
            );
        let mut driver = ScenarioDriver::new(&script);
        let mut sim = beat_sim(3);
        driver.install(&mut sim);
        driver.run_until(&mut sim, SimTime::from_secs(4));
        assert!(sim.is_partitioned(), "cut active inside the window");
        let isolated_heard = sim.agent(1).heard;
        driver.run_until(&mut sim, SimTime::from_secs(6));
        assert!(!sim.is_partitioned(), "heal clears the cut");
        driver.run_until(&mut sim, SimTime::from_secs(10));
        assert!(
            sim.agent(1).heard > isolated_heard,
            "healed node hears beats again"
        );
        assert_eq!(
            sim.fault_plan(0).map(|plan| plan.drop_chance),
            Some(1.0),
            "fault plan installed"
        );
        assert_eq!(driver.stats.partitions, 1);
        assert_eq!(driver.stats.heals, 1);
        assert_eq!(driver.stats.faults, 1);
    }

    #[test]
    fn adversary_installs_the_plan_and_runs_the_agent_hook() {
        let plan = FaultPlan {
            corrupt_chance: 0.5,
            false_advertise: true,
            ..Default::default()
        };
        let script = ScenarioScript::new().at(
            SimTime::from_secs(2),
            ScenarioAction::Adversary { node: 1, plan },
        );
        let mut driver = ScenarioDriver::new(&script);
        let mut sim = beat_sim(3);
        driver.install(&mut sim);
        driver.run_until(&mut sim, SimTime::from_secs(4));
        assert_eq!(
            sim.fault_plan(1).map(|p| p.corrupt_chance),
            Some(0.5),
            "adversary plan installed at the simulator"
        );
        assert_eq!(
            sim.agent(1).adversary_plans,
            vec![plan],
            "agent hook ran with the plan"
        );
        assert_eq!(driver.stats.adversaries, 1);
        assert_eq!(driver.stats.faults, 0, "adversaries are counted separately");
    }

    #[test]
    fn initially_down_nodes_stay_silent_until_joined() {
        let mut script = ScenarioScript::new();
        script.down_from_start(2);
        script.push(SimTime::from_secs(5), ScenarioAction::Join { node: 2 });
        let mut driver = ScenarioDriver::new(&script);
        let mut sim = beat_sim(3);
        driver.install(&mut sim);
        driver.run_until(&mut sim, SimTime::from_secs(4));
        assert_eq!(
            sim.agent(2).heard,
            0,
            "down node must not receive while down"
        );
        let heard_by_0_before = sim.agent(0).heard;
        driver.run_until(&mut sim, SimTime::from_secs(10));
        assert!(sim.agent(2).heard > 0, "joined node hears beats");
        assert!(
            sim.agent(0).heard > heard_by_0_before,
            "joined node beats again"
        );
    }

    #[test]
    fn link_mutations_apply_between_steps() {
        let script = ScenarioScript::new()
            .at(
                SimTime::from_secs(2),
                ScenarioAction::SetLinkBandwidth {
                    link: 0,
                    bps: 1_000.0,
                },
            )
            .at(
                SimTime::from_secs(4),
                ScenarioAction::SetLinkUp { link: 1, up: false },
            )
            .at(
                SimTime::from_secs(6),
                ScenarioAction::SetRouterUp {
                    router: 3,
                    up: false,
                },
            );
        let mut driver = ScenarioDriver::new(&script);
        let mut sim = beat_sim(3);
        driver.install(&mut sim);
        driver.run_until(&mut sim, SimTime::from_secs(3));
        let (fwd, _) = bullet_netsim::Network::directed_ids(0);
        assert_eq!(sim.network().link(fwd).bandwidth_bps, 1_000.0);
        assert_eq!(sim.network().topology_epoch(), 0);
        driver.run_until(&mut sim, SimTime::from_secs(5));
        assert_eq!(sim.network().topology_epoch(), 1, "link-down invalidates");
        driver.run_until(&mut sim, SimTime::from_secs(8));
        assert_eq!(sim.network().topology_epoch(), 2, "hub outage invalidates");
        assert_eq!(driver.stats.link_mutations, 2);
        assert_eq!(driver.stats.router_mutations, 1);
    }

    #[test]
    fn run_sampled_samples_every_interval_across_events() {
        let script = ScenarioScript::single_crash(SimTime::from_secs(3), 1);
        let mut driver = ScenarioDriver::new(&script);
        let mut sim = beat_sim(2);
        driver.install(&mut sim);
        let mut samples = Vec::new();
        driver.run_sampled(
            &mut sim,
            SimTime::from_secs(10),
            SimDuration::from_secs(2),
            |t, _| samples.push(t.as_micros()),
        );
        assert_eq!(
            samples,
            vec![2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000]
        );
    }

    #[test]
    fn join_storm_expands_to_deterministic_joins_inside_the_ramp() {
        let script = ScenarioScript::new().at(
            SimTime::from_secs(5),
            ScenarioAction::JoinStorm {
                first: 2,
                count: 3,
                ramp_secs: 4.0,
                seed: 37,
            },
        );
        let joins_of = |driver: &mut ScenarioDriver| {
            let mut sim = beat_sim(5);
            driver.install(&mut sim);
            driver.run_until(&mut sim, SimTime::from_secs(15));
            (2..5)
                .map(|node| sim.agent(node).joins.clone())
                .collect::<Vec<_>>()
        };
        let mut driver = ScenarioDriver::new(&script);
        let first = joins_of(&mut driver);
        assert_eq!(driver.stats.joins, 3, "every storm member joins");
        for joins in &first {
            assert_eq!(joins.len(), 1, "each member joins exactly once");
            assert!(joins[0] >= SimTime::from_secs(5), "not before the storm");
            assert!(joins[0] <= SimTime::from_secs(9), "inside the ramp");
        }
        // Storm members start the run down: node 2 heard nothing at t=0..5.
        let again = joins_of(&mut ScenarioDriver::new(&script));
        assert_eq!(first, again, "expansion is seed-deterministic");
    }

    #[test]
    fn storm_members_start_down_and_slow_node_runs_the_agent_hook() {
        let script = ScenarioScript::new()
            .at(
                SimTime::from_secs(6),
                ScenarioAction::JoinStorm {
                    first: 2,
                    count: 2,
                    ramp_secs: 1.0,
                    seed: 9,
                },
            )
            .at(
                SimTime::from_secs(2),
                ScenarioAction::SlowNode {
                    node: 1,
                    factor: 0.25,
                },
            )
            .at(
                SimTime::from_secs(3),
                ScenarioAction::SlowNode {
                    node: 2,
                    factor: 0.5,
                },
            );
        let mut driver = ScenarioDriver::new(&script);
        let mut sim = beat_sim(4);
        driver.install(&mut sim);
        driver.run_until(&mut sim, SimTime::from_secs(5));
        assert_eq!(
            sim.agent(2).heard,
            0,
            "storm members are down from the start"
        );
        assert_eq!(
            sim.agent(1).slow_factors,
            vec![0.25],
            "hook ran with factor"
        );
        assert_eq!(
            sim.agent(2).slow_factors,
            Vec::<f64>::new(),
            "slow_node on a down node is skipped"
        );
        assert_eq!(driver.stats.slow_nodes, 2, "counted even when skipped");
        driver.run_until(&mut sim, SimTime::from_secs(12));
        assert!(sim.agent(2).heard > 0, "storm member joined the stream");
    }

    #[test]
    #[should_panic(expected = "call install() before running")]
    fn running_without_install_panics() {
        let mut driver = ScenarioDriver::new(&ScenarioScript::new());
        let mut sim = beat_sim(2);
        driver.run_until(&mut sim, SimTime::from_secs(1));
    }
}
