//! Scenario scripts: deterministic, time-sorted mid-run event lists.
//!
//! A script is data, not behaviour: it can be built explicitly, generated
//! from churn/flash-crowd/oscillation distributions, or parsed from the
//! text format carried by the `BULLET_SCENARIO` environment variable. The
//! [`crate::ScenarioDriver`] applies it to a running simulation.

use bullet_netsim::{FaultPlan, OverlayId, RouterId, SimDuration, SimRng, SimTime};

/// One scripted action against the running simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioAction {
    /// Crash-fail an overlay node: it stops sending, receiving and firing
    /// timers, with no goodbye. Pre-scheduled through the simulator's own
    /// event queue (same ordering as the legacy `RunSpec::failure` path).
    Crash {
        /// The failing node.
        node: OverlayId,
    },
    /// Recovery from a crash: the node's failed flag clears and its
    /// [`crate::ScenarioAgent::on_join`] hook re-bootstraps participation —
    /// timer generations bump so stale pre-crash timer chains die, and
    /// connection state resets exactly as for a late join. Counted
    /// separately from [`ScenarioAction::Join`] in the driver's stats.
    Recover {
        /// The recovering node.
        node: OverlayId,
    },
    /// Graceful departure: the agent's
    /// [`crate::ScenarioAgent::on_graceful_leave`] hook runs (Bullet hands
    /// its children to its parent and tears down mesh peerings), then the
    /// node fails.
    GracefulLeave {
        /// The departing node.
        node: OverlayId,
    },
    /// Late join or rejoin: the node's failed flag clears and its
    /// [`crate::ScenarioAgent::on_join`] hook bootstraps participation.
    Join {
        /// The joining node.
        node: OverlayId,
    },
    /// Set the capacity of one physical link (both directions), in bits per
    /// second. Does not re-route (link costs are propagation delays).
    SetLinkBandwidth {
        /// Physical (spec) link index.
        link: usize,
        /// New capacity in bits per second.
        bps: f64,
    },
    /// Set the random loss probability of one physical link.
    SetLinkLoss {
        /// Physical (spec) link index.
        link: usize,
        /// New loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Take one physical link administratively up or down. Route-affecting:
    /// the network epoch-invalidates its lookup layers.
    SetLinkUp {
        /// Physical (spec) link index.
        link: usize,
        /// New administrative state.
        up: bool,
    },
    /// Take every link incident to a router up or down — a correlated stub
    /// outage. Route-affecting.
    SetRouterUp {
        /// The router whose links change state.
        router: RouterId,
        /// New administrative state.
        up: bool,
    },
    /// Partition the overlay: the listed nodes land on one side of a cut,
    /// everyone else on the other, and every message crossing it is dropped
    /// until a [`ScenarioAction::Heal`]. Replaces any active partition.
    Partition {
        /// The nodes isolated on one side of the cut.
        nodes: Vec<OverlayId>,
    },
    /// Heal any active partition.
    Heal,
    /// Install (or replace) a node's control-plane [`FaultPlan`]: its
    /// control messages are dropped/duplicated/delayed off the simulator
    /// RNG from this instant on. An all-zero plan effectively clears it.
    Fault {
        /// The node whose control traffic is faulted.
        node: OverlayId,
        /// The fault probabilities and delay.
        plan: FaultPlan,
    },
    /// Turn a node into a misbehaving peer: the plan's data-plane knobs
    /// (stall/corrupt chances) are injected by the simulator, and the
    /// agent's [`crate::ScenarioAgent::on_adversary`] hook runs so it can
    /// adopt protocol-level misbehavior (false advertisement). A plan
    /// with every adversary flag clear reforms the node.
    Adversary {
        /// The misbehaving node.
        node: OverlayId,
        /// The adversary behaviors (see [`FaultPlan`]'s
        /// `stall_chance`/`corrupt_chance`/`false_advertise`).
        plan: FaultPlan,
    },
    /// A join storm (overload evaluation): the cohort `first .. first +
    /// count` starts the run down and joins at seeded uniform times inside
    /// `[t, t + ramp_secs)`. Kept first-class — rather than pre-expanded
    /// into `down` markers and [`ScenarioAction::Join`] events — so a
    /// storm stays one script line and `parse`/`format` round-trips
    /// losslessly; the [`crate::ScenarioDriver`] expands it
    /// deterministically at construction.
    JoinStorm {
        /// First node of the joining cohort.
        first: OverlayId,
        /// Cohort size (nodes `first .. first + count`).
        count: usize,
        /// Ramp length in seconds: join times land uniformly inside it.
        ramp_secs: f64,
        /// Seed for the deterministic join offsets.
        seed: u64,
    },
    /// Make a node a slow receiver: from this instant its `ReceiverReport`s
    /// under-state its intake by `factor` (the agent's
    /// [`crate::ScenarioAgent::on_slow_node`] hook), presenting it to its
    /// mesh senders as a persistent laggard. A factor of `1.0` restores
    /// honest reporting.
    SlowNode {
        /// The slowed node.
        node: OverlayId,
        /// Multiplier applied to the node's reported intake, in `[0, 1]`.
        factor: f64,
    },
}

impl ScenarioAction {
    /// Whether the driver pre-schedules this action through the simulator's
    /// event queue (crashes only) rather than applying it between
    /// event-loop steps.
    pub fn is_prescheduled(&self) -> bool {
        matches!(self, ScenarioAction::Crash { .. })
    }
}

/// A timed scripted action.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioEvent {
    /// Absolute simulated time at which the action applies.
    pub at: SimTime,
    /// The action.
    pub action: ScenarioAction,
}

/// Parameters of the exponential session-time churn generator.
///
/// Each node alternates exponentially distributed up (session) and down
/// periods, crashing at session end and rejoining afterwards — the
/// standard churn model of the peer-to-peer literature. A configurable
/// fraction of nodes instead departs *gracefully* at the end of its first
/// session and never returns.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// The nodes subject to churn (exclude the source and any other node
    /// that must stay up).
    pub nodes: Vec<OverlayId>,
    /// Churn begins here (give the overlay time to settle first).
    pub start: SimTime,
    /// No churn events are generated at or after this time.
    pub end: SimTime,
    /// Mean session (up) time.
    pub mean_session_secs: f64,
    /// Mean downtime between sessions.
    pub mean_downtime_secs: f64,
    /// Fraction of nodes that leave gracefully (once, permanently) instead
    /// of crash/rejoin cycling.
    pub graceful_fraction: f64,
    /// Seed for the generator's deterministic randomness.
    pub seed: u64,
}

/// A deterministic scenario: timed events plus the set of nodes that start
/// the run down (late joiners).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioScript {
    events: Vec<ScenarioEvent>,
    initially_down: Vec<OverlayId>,
}

impl ScenarioScript {
    /// An empty script (the run plays out exactly as without a driver).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an action at `at`. Events at equal times apply in insertion
    /// order.
    pub fn at(mut self, at: SimTime, action: ScenarioAction) -> Self {
        self.push(at, action);
        self
    }

    /// Appends an action at `at` (by-reference form of [`Self::at`]).
    pub fn push(&mut self, at: SimTime, action: ScenarioAction) {
        self.events.push(ScenarioEvent { at, action });
    }

    /// Marks `node` as down from the start of the run (a late joiner: its
    /// `on_start` sends are dropped and its timers stay silent until a
    /// [`ScenarioAction::Join`] revives it).
    pub fn down_from_start(&mut self, node: OverlayId) {
        if !self.initially_down.contains(&node) {
            self.initially_down.push(node);
        }
    }

    /// The nodes down from the start of the run.
    pub fn initially_down(&self) -> &[OverlayId] {
        &self.initially_down
    }

    /// The scripted events, sorted by time (stable: equal times keep
    /// insertion order).
    pub fn sorted_events(&self) -> Vec<ScenarioEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at.as_micros());
        events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the script holds no events and no initially-down nodes.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.initially_down.is_empty()
    }

    /// Merges `other`'s events and initially-down set into `self`.
    pub fn merge(mut self, other: ScenarioScript) -> Self {
        self.events.extend(other.events);
        for node in other.initially_down {
            self.down_from_start(node);
        }
        self
    }

    /// The paper's worst-case single failure (Figs. 13/14) as a one-event
    /// script. Event-for-event identical to the legacy `RunSpec::failure`
    /// injection.
    pub fn single_crash(at: SimTime, node: OverlayId) -> Self {
        Self::new().at(at, ScenarioAction::Crash { node })
    }

    /// Exponential session-time churn over the configured nodes (see
    /// [`ChurnConfig`]). Fully deterministic in the seed; each node draws
    /// from its own decorrelated stream, so the node set can change without
    /// perturbing other nodes' schedules.
    pub fn exponential_churn(config: &ChurnConfig) -> Self {
        let mut script = Self::new();
        for &node in &config.nodes {
            let mut rng = SimRng::new(
                config
                    .seed
                    .wrapping_add((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            let graceful = rng.chance(config.graceful_fraction);
            let mut t = config.start.as_secs_f64() + rng.exponential(config.mean_session_secs);
            let end = config.end.as_secs_f64();
            loop {
                if t >= end {
                    break;
                }
                let leave_at = SimTime::from_secs_f64(t);
                if graceful {
                    script.push(leave_at, ScenarioAction::GracefulLeave { node });
                    break;
                }
                script.push(leave_at, ScenarioAction::Crash { node });
                t += rng.exponential(config.mean_downtime_secs);
                if t >= end {
                    break;
                }
                script.push(SimTime::from_secs_f64(t), ScenarioAction::Join { node });
                t += rng.exponential(config.mean_session_secs);
            }
        }
        script
    }

    /// A flash crowd: `nodes` start the run down and join at times drawn
    /// uniformly from `[start, start + ramp)`.
    pub fn flash_crowd(nodes: &[OverlayId], start: SimTime, ramp_secs: f64, seed: u64) -> Self {
        let mut script = Self::new();
        let mut rng = SimRng::new(seed);
        for &node in nodes {
            script.down_from_start(node);
            let offset = rng.next_f64() * ramp_secs;
            script.push(
                SimTime::from_secs_f64(start.as_secs_f64() + offset),
                ScenarioAction::Join { node },
            );
        }
        script
    }

    /// An oscillating bottleneck: the link's capacity drops to `low_bps` at
    /// `start`, toggles between low and `high_bps` every `half_period`, and
    /// is restored to `high_bps` at `end`.
    pub fn oscillating_link(
        link: usize,
        high_bps: f64,
        low_bps: f64,
        half_period_secs: f64,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        let mut script = Self::new();
        let mut t = start.as_secs_f64();
        let mut low = true;
        while t < end.as_secs_f64() {
            script.push(
                SimTime::from_secs_f64(t),
                ScenarioAction::SetLinkBandwidth {
                    link,
                    bps: if low { low_bps } else { high_bps },
                },
            );
            low = !low;
            t += half_period_secs;
        }
        script.push(
            end,
            ScenarioAction::SetLinkBandwidth {
                link,
                bps: high_bps,
            },
        );
        script
    }

    /// Marks a deterministic fraction of `nodes` as misbehaving peers from
    /// `at` on. The adversaries are a seeded uniform sample (sorted, for
    /// reproducible scripts) alternating between two personas: payload
    /// corrupters (every data packet they forward is tampered with
    /// probability `corrupt_chance`) and false advertisers (they claim
    /// phantom content, stall on every block they owe, and serve nothing).
    /// Fully deterministic in the seed.
    pub fn adversary_fraction(
        nodes: &[OverlayId],
        fraction: f64,
        at: SimTime,
        corrupt_chance: f64,
        seed: u64,
    ) -> Self {
        let mut script = Self::new();
        let count = ((nodes.len() as f64 * fraction).round() as usize).min(nodes.len());
        if count == 0 {
            return script;
        }
        let mut rng = SimRng::new(seed);
        let mut chosen = rng.sample(nodes, count);
        chosen.sort_unstable();
        for (i, &node) in chosen.iter().enumerate() {
            let plan = if i % 2 == 0 {
                FaultPlan {
                    corrupt_chance,
                    ..FaultPlan::default()
                }
            } else {
                FaultPlan {
                    stall_chance: 1.0,
                    false_advertise: true,
                    ..FaultPlan::default()
                }
            };
            script.push(at, ScenarioAction::Adversary { node, plan });
        }
        script
    }

    /// A correlated stub outage: every link incident to `router` goes down
    /// at `at` and comes back after `duration_secs`.
    pub fn stub_outage(router: RouterId, at: SimTime, duration_secs: f64) -> Self {
        Self::new()
            .at(at, ScenarioAction::SetRouterUp { router, up: false })
            .at(
                SimTime::from_secs_f64(at.as_secs_f64() + duration_secs),
                ScenarioAction::SetRouterUp { router, up: true },
            )
    }

    /// Alternating partition/heal churn: starting after an exponentially
    /// distributed whole period (mean `mean_whole_secs`) past `start`, the
    /// overlay splits for an exponentially distributed period (mean
    /// `mean_partition_secs`), then heals, and the cycle repeats until
    /// `end`. Each cut isolates a fresh uniformly-sized random subset of
    /// `nodes` (sorted, for reproducible scripts). Fully deterministic in
    /// the seed, and the script always ends with a heal so no partition
    /// outlives the window.
    pub fn partition_churn(
        nodes: &[OverlayId],
        start: SimTime,
        end: SimTime,
        mean_whole_secs: f64,
        mean_partition_secs: f64,
        seed: u64,
    ) -> Self {
        let mut script = Self::new();
        if nodes.is_empty() {
            return script;
        }
        let mut rng = SimRng::new(seed);
        let end_secs = end.as_secs_f64();
        let mut t = start.as_secs_f64() + rng.exponential(mean_whole_secs);
        while t < end_secs {
            let size = rng.range_usize(1, nodes.len() + 1);
            let mut side = rng.sample(nodes, size);
            side.sort_unstable();
            script.push(
                SimTime::from_secs_f64(t),
                ScenarioAction::Partition { nodes: side },
            );
            t += rng.exponential(mean_partition_secs);
            let heal_at = SimTime::from_secs_f64(t.min(end_secs));
            script.push(heal_at, ScenarioAction::Heal);
            t += rng.exponential(mean_whole_secs);
        }
        script
    }

    /// Parses the text scenario format used by the `BULLET_SCENARIO`
    /// environment variable.
    ///
    /// Events are separated by `;` or newlines. Each event is
    /// whitespace-separated fields; the first is the time in (possibly
    /// fractional) seconds, except for the time-less `down` marker:
    ///
    /// ```text
    /// down <node>                  node starts the run down (late joiner)
    /// <t> crash <node>             crash-fail
    /// <t> leave <node>             graceful leave
    /// <t> join <node>              (re)join
    /// <t> recover <node>           recovery from a crash (re-bootstraps)
    /// <t> link-bw <link> <bps>     set link capacity
    /// <t> link-loss <link> <p>     set link loss probability
    /// <t> link-down <link>         take link down
    /// <t> link-up <link>           bring link up
    /// <t> router-down <router>     correlated stub outage
    /// <t> router-up <router>       end of the outage
    /// <t> partition <n1,n2,...>    isolate the listed nodes from the rest
    /// <t> heal                     heal any active partition
    /// <t> fault <node> <drop> <dup> <delayp> <delaysecs>
    ///                              install a control-plane fault plan
    /// <t> adversary <node> <corrupt> <stall> <false-adv 0|1>
    ///                              turn the node into a misbehaving peer
    /// <t> joinstorm <first> <count> <ramp-secs> <seed>
    ///                              cohort starts down, joins inside the ramp
    /// <t> slow_node <node> <factor>
    ///                              scale the node's reported intake by factor
    /// ```
    ///
    /// Errors name the (1-based) line of the offending entry, so a typo in
    /// a long `BULLET_SCENARIO` value is findable.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut script = Self::new();
        for (index, line) in text.lines().enumerate() {
            for raw in line.split(';') {
                let entry = raw.trim();
                if entry.is_empty() || entry.starts_with('#') {
                    continue;
                }
                script
                    .parse_entry(entry)
                    .map_err(|what| format!("line {}: {what}", index + 1))?;
            }
        }
        Ok(script)
    }

    /// Parses one `;`-free scenario entry into the script.
    fn parse_entry(&mut self, entry: &str) -> Result<(), String> {
        let script = self;
        {
            let fields: Vec<&str> = entry.split_whitespace().collect();
            let err = |what: &str| format!("scenario entry {entry:?}: {what}");
            if fields[0] == "down" {
                let node = Self::field::<OverlayId>(&fields, 1, entry)?;
                script.down_from_start(node);
                return Ok(());
            }
            let secs: f64 = fields[0]
                .parse()
                .map_err(|_| err("expected a time in seconds"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(err("time must be a non-negative number"));
            }
            let at = SimTime::from_secs_f64(secs);
            let verb = *fields.get(1).ok_or_else(|| err("missing action"))?;
            let action = match verb {
                "crash" => ScenarioAction::Crash {
                    node: Self::field(&fields, 2, entry)?,
                },
                "leave" => ScenarioAction::GracefulLeave {
                    node: Self::field(&fields, 2, entry)?,
                },
                "join" => ScenarioAction::Join {
                    node: Self::field(&fields, 2, entry)?,
                },
                "recover" => ScenarioAction::Recover {
                    node: Self::field(&fields, 2, entry)?,
                },
                "link-bw" => ScenarioAction::SetLinkBandwidth {
                    link: Self::field(&fields, 2, entry)?,
                    bps: Self::field(&fields, 3, entry)?,
                },
                "link-loss" => ScenarioAction::SetLinkLoss {
                    link: Self::field(&fields, 2, entry)?,
                    loss: Self::field(&fields, 3, entry)?,
                },
                "link-down" => ScenarioAction::SetLinkUp {
                    link: Self::field(&fields, 2, entry)?,
                    up: false,
                },
                "link-up" => ScenarioAction::SetLinkUp {
                    link: Self::field(&fields, 2, entry)?,
                    up: true,
                },
                "router-down" => ScenarioAction::SetRouterUp {
                    router: Self::field(&fields, 2, entry)?,
                    up: false,
                },
                "router-up" => ScenarioAction::SetRouterUp {
                    router: Self::field(&fields, 2, entry)?,
                    up: true,
                },
                "partition" => {
                    let list = *fields.get(2).ok_or_else(|| err("missing node list"))?;
                    let mut nodes = Vec::new();
                    for part in list.split(',') {
                        nodes.push(
                            part.parse::<OverlayId>()
                                .map_err(|_| err(&format!("bad partition node {part:?}")))?,
                        );
                    }
                    ScenarioAction::Partition { nodes }
                }
                "heal" => ScenarioAction::Heal,
                "fault" => {
                    let drop_chance: f64 = Self::field(&fields, 3, entry)?;
                    let duplicate_chance: f64 = Self::field(&fields, 4, entry)?;
                    let delay_chance: f64 = Self::field(&fields, 5, entry)?;
                    let delay_secs: f64 = Self::field(&fields, 6, entry)?;
                    for p in [drop_chance, duplicate_chance, delay_chance] {
                        if !(0.0..=1.0).contains(&p) {
                            return Err(err("fault probabilities must be in [0, 1]"));
                        }
                    }
                    if !delay_secs.is_finite() || delay_secs < 0.0 {
                        return Err(err("fault delay must be a non-negative number"));
                    }
                    ScenarioAction::Fault {
                        node: Self::field(&fields, 2, entry)?,
                        plan: FaultPlan {
                            drop_chance,
                            duplicate_chance,
                            delay_chance,
                            delay: SimDuration::from_secs_f64(delay_secs),
                            ..FaultPlan::default()
                        },
                    }
                }
                "adversary" => {
                    let corrupt_chance: f64 = Self::field(&fields, 3, entry)?;
                    let stall_chance: f64 = Self::field(&fields, 4, entry)?;
                    for p in [corrupt_chance, stall_chance] {
                        if !(0.0..=1.0).contains(&p) {
                            return Err(err("adversary probabilities must be in [0, 1]"));
                        }
                    }
                    let false_advertise =
                        match *fields.get(5).ok_or_else(|| err("missing field 5"))? {
                            "0" => false,
                            "1" => true,
                            other => {
                                return Err(err(&format!(
                                    "false-advertise must be 0 or 1, got {other:?}"
                                )))
                            }
                        };
                    ScenarioAction::Adversary {
                        node: Self::field(&fields, 2, entry)?,
                        plan: FaultPlan {
                            stall_chance,
                            corrupt_chance,
                            false_advertise,
                            ..FaultPlan::default()
                        },
                    }
                }
                "joinstorm" => {
                    let ramp_secs: f64 = Self::field(&fields, 4, entry)?;
                    if !ramp_secs.is_finite() || ramp_secs < 0.0 {
                        return Err(err("join-storm ramp must be a non-negative number"));
                    }
                    ScenarioAction::JoinStorm {
                        first: Self::field(&fields, 2, entry)?,
                        count: Self::field(&fields, 3, entry)?,
                        ramp_secs,
                        seed: Self::field(&fields, 5, entry)?,
                    }
                }
                "slow_node" => {
                    let factor: f64 = Self::field(&fields, 3, entry)?;
                    if !(0.0..=1.0).contains(&factor) {
                        return Err(err("slow-node factor must be in [0, 1]"));
                    }
                    ScenarioAction::SlowNode {
                        node: Self::field(&fields, 2, entry)?,
                        factor,
                    }
                }
                other => return Err(err(&format!("unknown action {other:?}"))),
            };
            script.push(at, action);
        }
        Ok(())
    }

    /// Reads and parses the `BULLET_SCENARIO` environment variable, if set
    /// and non-empty.
    ///
    /// A malformed value terminates the process with the parser's
    /// line-numbered diagnostic on stderr (exit code 2) rather than a
    /// panic backtrace — silently ignoring it would attribute a run's
    /// results to a scenario that never happened, and a user typo
    /// deserves a pointer, not a stack dump.
    pub fn from_env() -> Option<Self> {
        match std::env::var("BULLET_SCENARIO") {
            Ok(text) if !text.trim().is_empty() => match Self::parse(&text) {
                Ok(script) => Some(script),
                Err(what) => {
                    eprintln!("invalid BULLET_SCENARIO: {what}");
                    std::process::exit(2);
                }
            },
            _ => None,
        }
    }

    /// Serializes the script back to the `BULLET_SCENARIO` text format
    /// accepted by [`Self::parse`]: one entry per line, `down` markers
    /// first, then events in insertion order. The round trip is lossless —
    /// `parse(&script.format())` reconstructs `script` exactly (times are
    /// microsecond-resolution and floats print at full precision).
    pub fn format(&self) -> String {
        let mut lines = Vec::with_capacity(self.initially_down.len() + self.events.len());
        for &node in &self.initially_down {
            lines.push(format!("down {node}"));
        }
        for event in &self.events {
            let t = event.at.as_secs_f64();
            lines.push(match &event.action {
                ScenarioAction::Crash { node } => format!("{t} crash {node}"),
                ScenarioAction::Recover { node } => format!("{t} recover {node}"),
                ScenarioAction::GracefulLeave { node } => format!("{t} leave {node}"),
                ScenarioAction::Join { node } => format!("{t} join {node}"),
                ScenarioAction::SetLinkBandwidth { link, bps } => {
                    format!("{t} link-bw {link} {bps}")
                }
                ScenarioAction::SetLinkLoss { link, loss } => {
                    format!("{t} link-loss {link} {loss}")
                }
                ScenarioAction::SetLinkUp { link, up: false } => format!("{t} link-down {link}"),
                ScenarioAction::SetLinkUp { link, up: true } => format!("{t} link-up {link}"),
                ScenarioAction::SetRouterUp { router, up: false } => {
                    format!("{t} router-down {router}")
                }
                ScenarioAction::SetRouterUp { router, up: true } => {
                    format!("{t} router-up {router}")
                }
                ScenarioAction::Partition { nodes } => {
                    let list: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
                    format!("{t} partition {}", list.join(","))
                }
                ScenarioAction::Heal => format!("{t} heal"),
                ScenarioAction::Fault { node, plan } => format!(
                    "{t} fault {node} {} {} {} {}",
                    plan.drop_chance,
                    plan.duplicate_chance,
                    plan.delay_chance,
                    plan.delay.as_secs_f64()
                ),
                ScenarioAction::Adversary { node, plan } => format!(
                    "{t} adversary {node} {} {} {}",
                    plan.corrupt_chance,
                    plan.stall_chance,
                    u8::from(plan.false_advertise)
                ),
                ScenarioAction::JoinStorm {
                    first,
                    count,
                    ramp_secs,
                    seed,
                } => format!("{t} joinstorm {first} {count} {ramp_secs} {seed}"),
                ScenarioAction::SlowNode { node, factor } => {
                    format!("{t} slow_node {node} {factor}")
                }
            });
        }
        lines.join("\n")
    }

    fn field<T: std::str::FromStr>(
        fields: &[&str],
        index: usize,
        entry: &str,
    ) -> Result<T, String> {
        fields
            .get(index)
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| format!("scenario entry {entry:?}: bad or missing field {index}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_stably_by_time() {
        let t = SimTime::from_secs(5);
        let script = ScenarioScript::new()
            .at(SimTime::from_secs(9), ScenarioAction::Crash { node: 9 })
            .at(t, ScenarioAction::Crash { node: 1 })
            .at(t, ScenarioAction::Join { node: 2 });
        let sorted = script.sorted_events();
        assert_eq!(sorted[0].at, t);
        assert_eq!(sorted[0].action, ScenarioAction::Crash { node: 1 });
        assert_eq!(sorted[1].action, ScenarioAction::Join { node: 2 });
        assert_eq!(sorted[2].at, SimTime::from_secs(9));
    }

    #[test]
    fn exponential_churn_is_deterministic_and_well_formed() {
        let config = ChurnConfig {
            nodes: (1..20).collect(),
            start: SimTime::from_secs(20),
            end: SimTime::from_secs(200),
            mean_session_secs: 40.0,
            mean_downtime_secs: 10.0,
            graceful_fraction: 0.2,
            seed: 7,
        };
        let a = ScenarioScript::exponential_churn(&config);
        let b = ScenarioScript::exponential_churn(&config);
        assert_eq!(a, b, "same config must generate the same script");
        assert!(!a.is_empty(), "200 s of churn generated no events");
        // Per node: alternating leave/join starting with a leave, inside
        // the window; graceful leavers never rejoin.
        for &node in &config.nodes {
            let mut up = true;
            let mut left_gracefully = false;
            for event in a.sorted_events() {
                let (is_node, joins) = match event.action {
                    ScenarioAction::Crash { node: n } => (n == node, false),
                    ScenarioAction::GracefulLeave { node: n } => (n == node, false),
                    ScenarioAction::Join { node: n } => (n == node, true),
                    _ => (false, false),
                };
                if !is_node {
                    continue;
                }
                assert!(event.at >= config.start && event.at < config.end);
                assert!(!left_gracefully, "node {node} acted after a graceful leave");
                assert_ne!(
                    up,
                    joins,
                    "node {node} double-{}",
                    if joins { "joined" } else { "left" }
                );
                up = joins;
                if matches!(event.action, ScenarioAction::GracefulLeave { .. }) {
                    left_gracefully = true;
                }
            }
        }
    }

    #[test]
    fn flash_crowd_marks_nodes_down_and_joins_inside_the_ramp() {
        let nodes: Vec<usize> = (10..30).collect();
        let start = SimTime::from_secs(50);
        let script = ScenarioScript::flash_crowd(&nodes, start, 20.0, 3);
        assert_eq!(script.initially_down(), &nodes[..]);
        assert_eq!(script.len(), nodes.len(), "one join per crowd member");
        for event in script.sorted_events() {
            assert!(matches!(event.action, ScenarioAction::Join { .. }));
            assert!(event.at >= start);
            assert!(event.at.as_secs_f64() < start.as_secs_f64() + 20.0);
        }
    }

    #[test]
    fn oscillating_link_alternates_and_restores() {
        let script = ScenarioScript::oscillating_link(
            4,
            1e6,
            2.5e5,
            10.0,
            SimTime::from_secs(100),
            SimTime::from_secs(140),
        );
        let events = script.sorted_events();
        let rates: Vec<f64> = events
            .iter()
            .map(|e| match e.action {
                ScenarioAction::SetLinkBandwidth { link, bps } => {
                    assert_eq!(link, 4);
                    bps
                }
                ref other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(rates, vec![2.5e5, 1e6, 2.5e5, 1e6, 1e6]);
        assert_eq!(events.last().unwrap().at, SimTime::from_secs(140));
    }

    #[test]
    fn stub_outage_brackets_the_window() {
        let script = ScenarioScript::stub_outage(17, SimTime::from_secs(30), 12.5);
        let events = script.sorted_events();
        assert_eq!(
            events[0].action,
            ScenarioAction::SetRouterUp {
                router: 17,
                up: false
            }
        );
        assert_eq!(
            events[1].action,
            ScenarioAction::SetRouterUp {
                router: 17,
                up: true
            }
        );
        assert_eq!(events[1].at, SimTime::from_secs_f64(42.5));
    }

    #[test]
    fn parses_the_env_format() {
        let script = ScenarioScript::parse(
            "down 7; 10 crash 3; 20.5 join 3\n30 link-bw 2 250000; 40 link-loss 2 0.1; \
             50 link-down 2; 60 link-up 2; 70 router-down 9; 80 router-up 9; 90 leave 4; \
             # a comment\n95 recover 3",
        )
        .expect("valid script");
        assert_eq!(script.initially_down(), &[7]);
        let events = script.sorted_events();
        assert_eq!(events.len(), 10);
        assert_eq!(events[0].action, ScenarioAction::Crash { node: 3 });
        assert_eq!(events[1].at, SimTime::from_secs_f64(20.5));
        assert_eq!(
            events[2].action,
            ScenarioAction::SetLinkBandwidth {
                link: 2,
                bps: 250_000.0
            }
        );
        assert_eq!(events[8].action, ScenarioAction::GracefulLeave { node: 4 });
        assert_eq!(events[9].action, ScenarioAction::Recover { node: 3 });
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(ScenarioScript::parse("ten crash 3").is_err());
        assert!(ScenarioScript::parse("10 explode 3").is_err());
        assert!(ScenarioScript::parse("10 crash").is_err());
        assert!(ScenarioScript::parse("-5 crash 3").is_err());
        assert!(ScenarioScript::parse("10 link-bw 2").is_err());
    }

    #[test]
    fn parses_partition_heal_and_fault_verbs() {
        let script =
            ScenarioScript::parse("5 partition 1,2,7; 9 heal; 12 fault 4 0.25 0 0.5 0.125")
                .expect("valid script");
        let events = script.sorted_events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].action,
            ScenarioAction::Partition {
                nodes: vec![1, 2, 7]
            }
        );
        assert_eq!(events[1].action, ScenarioAction::Heal);
        assert_eq!(
            events[2].action,
            ScenarioAction::Fault {
                node: 4,
                plan: FaultPlan {
                    drop_chance: 0.25,
                    duplicate_chance: 0.0,
                    delay_chance: 0.5,
                    delay: SimDuration::from_secs_f64(0.125),
                    ..FaultPlan::default()
                }
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_partition_and_fault_entries() {
        assert!(ScenarioScript::parse("5 partition").is_err());
        assert!(ScenarioScript::parse("5 partition 1,x,3").is_err());
        assert!(
            ScenarioScript::parse("5 fault 4 1.5 0 0 0").is_err(),
            "p > 1"
        );
        assert!(
            ScenarioScript::parse("5 fault 4 0 -0.1 0 0").is_err(),
            "p < 0"
        );
        assert!(
            ScenarioScript::parse("5 fault 4 0 0 0 -1").is_err(),
            "delay < 0"
        );
        assert!(
            ScenarioScript::parse("5 fault 4 0 0 0").is_err(),
            "missing field"
        );
    }

    #[test]
    fn parses_the_adversary_verb() {
        let script = ScenarioScript::parse("5 adversary 9 0.75 0.25 1; 8 adversary 4 0.5 0 0")
            .expect("valid script");
        let events = script.sorted_events();
        assert_eq!(
            events[0].action,
            ScenarioAction::Adversary {
                node: 9,
                plan: FaultPlan {
                    corrupt_chance: 0.75,
                    stall_chance: 0.25,
                    false_advertise: true,
                    ..FaultPlan::default()
                }
            }
        );
        assert_eq!(
            events[1].action,
            ScenarioAction::Adversary {
                node: 4,
                plan: FaultPlan {
                    corrupt_chance: 0.5,
                    ..FaultPlan::default()
                }
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_adversary_entries() {
        assert!(
            ScenarioScript::parse("5 adversary 9 1.5 0 0").is_err(),
            "p > 1"
        );
        assert!(
            ScenarioScript::parse("5 adversary 9 0 -1 0").is_err(),
            "p < 0"
        );
        assert!(
            ScenarioScript::parse("5 adversary 9 0.5 0 yes").is_err(),
            "false-advertise flag must be 0/1"
        );
        assert!(
            ScenarioScript::parse("5 adversary 9 0.5 0").is_err(),
            "missing field"
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = ScenarioScript::parse("down 3\n10 crash 4; 12 heal\n13 explode 9")
            .expect_err("bad verb must fail");
        assert!(
            err.starts_with("line 3:"),
            "error should name line 3, got: {err}"
        );
        assert!(err.contains("explode"), "error names the bad verb: {err}");
        let err = ScenarioScript::parse("10 crash 4; ten heal").expect_err("bad time must fail");
        assert!(
            err.starts_with("line 1:"),
            "same-line entries report line 1, got: {err}"
        );
    }

    #[test]
    fn adversary_fraction_is_deterministic_and_alternates_personas() {
        let nodes: Vec<usize> = (1..41).collect();
        let at = SimTime::from_secs(15);
        let a = ScenarioScript::adversary_fraction(&nodes, 0.25, at, 0.8, 11);
        let b = ScenarioScript::adversary_fraction(&nodes, 0.25, at, 0.8, 11);
        assert_eq!(a, b, "same seed must pick the same adversaries");
        let events = a.sorted_events();
        assert_eq!(events.len(), 10, "25% of 40 nodes");
        let mut corrupters = 0;
        let mut liars = 0;
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.at, at);
            let ScenarioAction::Adversary { node, plan } = &event.action else {
                panic!("unexpected action {:?}", event.action);
            };
            assert!(nodes.contains(node));
            if i % 2 == 0 {
                assert_eq!(plan.corrupt_chance, 0.8);
                assert!(!plan.false_advertise);
                corrupters += 1;
            } else {
                assert!(plan.false_advertise);
                assert_eq!(plan.stall_chance, 1.0);
                liars += 1;
            }
        }
        assert_eq!((corrupters, liars), (5, 5));
        assert!(
            ScenarioScript::adversary_fraction(&nodes, 0.0, at, 0.8, 11).is_empty(),
            "zero fraction generates nothing"
        );
    }

    #[test]
    fn format_round_trips_every_verb() {
        let mut script = ScenarioScript::new()
            .at(SimTime::from_secs(6), ScenarioAction::Crash { node: 3 })
            .at(
                SimTime::from_secs_f64(7.25),
                ScenarioAction::Recover { node: 3 },
            )
            .at(
                SimTime::from_secs(9),
                ScenarioAction::GracefulLeave { node: 5 },
            )
            .at(SimTime::from_secs(10), ScenarioAction::Join { node: 6 })
            .at(
                SimTime::from_secs(11),
                ScenarioAction::SetLinkBandwidth {
                    link: 1,
                    bps: 250_000.5,
                },
            )
            .at(
                SimTime::from_secs(12),
                ScenarioAction::SetLinkLoss { link: 2, loss: 0.1 },
            )
            .at(
                SimTime::from_secs(13),
                ScenarioAction::SetLinkUp { link: 2, up: false },
            )
            .at(
                SimTime::from_secs(14),
                ScenarioAction::SetLinkUp { link: 2, up: true },
            )
            .at(
                SimTime::from_secs(15),
                ScenarioAction::SetRouterUp {
                    router: 9,
                    up: false,
                },
            )
            .at(
                SimTime::from_secs(16),
                ScenarioAction::SetRouterUp {
                    router: 9,
                    up: true,
                },
            )
            .at(
                SimTime::from_secs_f64(17.125),
                ScenarioAction::Partition {
                    nodes: vec![1, 4, 9],
                },
            )
            .at(SimTime::from_secs(18), ScenarioAction::Heal)
            .at(
                SimTime::from_secs(19),
                ScenarioAction::Fault {
                    node: 7,
                    plan: FaultPlan {
                        drop_chance: 0.125,
                        duplicate_chance: 0.0625,
                        delay_chance: 0.5,
                        delay: SimDuration::from_millis(250),
                        ..FaultPlan::default()
                    },
                },
            )
            .at(
                SimTime::from_secs(20),
                ScenarioAction::Adversary {
                    node: 8,
                    plan: FaultPlan {
                        corrupt_chance: 0.75,
                        stall_chance: 0.125,
                        false_advertise: true,
                        ..FaultPlan::default()
                    },
                },
            )
            .at(
                SimTime::from_secs(21),
                ScenarioAction::JoinStorm {
                    first: 12,
                    count: 24,
                    ramp_secs: 7.5,
                    seed: 37,
                },
            )
            .at(
                SimTime::from_secs(22),
                ScenarioAction::SlowNode {
                    node: 4,
                    factor: 0.25,
                },
            );
        script.down_from_start(7);
        script.down_from_start(11);
        let reparsed = ScenarioScript::parse(&script.format()).expect("formatted script parses");
        assert_eq!(reparsed, script, "parse(format(s)) must reconstruct s");
    }

    #[test]
    fn parses_and_round_trips_the_overload_verbs() {
        let script = ScenarioScript::parse("30 joinstorm 8 24 10 37; 45.5 slow_node 3 0.25")
            .expect("valid script");
        let events = script.sorted_events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].action,
            ScenarioAction::JoinStorm {
                first: 8,
                count: 24,
                ramp_secs: 10.0,
                seed: 37,
            }
        );
        assert_eq!(
            events[1].action,
            ScenarioAction::SlowNode {
                node: 3,
                factor: 0.25,
            }
        );
        assert_eq!(events[1].at, SimTime::from_secs_f64(45.5));
        let reparsed = ScenarioScript::parse(&script.format()).expect("formatted script parses");
        assert_eq!(reparsed, script, "overload verbs must round-trip");
    }

    #[test]
    fn parse_rejects_malformed_overload_entries_with_line_numbers() {
        assert!(
            ScenarioScript::parse("5 joinstorm 8 24 10").is_err(),
            "missing seed"
        );
        assert!(
            ScenarioScript::parse("5 joinstorm 8 24 -1 7").is_err(),
            "negative ramp"
        );
        assert!(
            ScenarioScript::parse("5 joinstorm 8 many 10 7").is_err(),
            "non-numeric count"
        );
        assert!(
            ScenarioScript::parse("5 slow_node 3 1.5").is_err(),
            "factor > 1"
        );
        assert!(
            ScenarioScript::parse("5 slow_node 3 -0.1").is_err(),
            "factor < 0"
        );
        assert!(
            ScenarioScript::parse("5 slow_node 3").is_err(),
            "missing factor"
        );
        let err = ScenarioScript::parse("down 1\n10 crash 2\n12 slow_node 3 nine")
            .expect_err("bad factor must fail");
        assert!(
            err.starts_with("line 3:"),
            "error should name line 3, got: {err}"
        );
        let err = ScenarioScript::parse("10 crash 2\n11 joinstorm 8 24 10")
            .expect_err("short storm must fail");
        assert!(
            err.starts_with("line 2:"),
            "error should name line 2, got: {err}"
        );
    }

    #[test]
    fn format_round_trips_generated_scripts() {
        let script = ScenarioScript::exponential_churn(&ChurnConfig {
            nodes: (1..10).collect(),
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(60),
            mean_session_secs: 13.0,
            mean_downtime_secs: 4.0,
            graceful_fraction: 0.25,
            seed: 21,
        })
        .merge(ScenarioScript::partition_churn(
            &[1, 2, 3, 4, 5],
            SimTime::from_secs(5),
            SimTime::from_secs(60),
            9.0,
            3.0,
            77,
        ));
        let reparsed = ScenarioScript::parse(&script.format()).expect("formatted script parses");
        assert_eq!(reparsed, script);
    }

    #[test]
    fn partition_churn_alternates_and_ends_healed() {
        let nodes: Vec<usize> = (1..12).collect();
        let a = ScenarioScript::partition_churn(
            &nodes,
            SimTime::from_secs(10),
            SimTime::from_secs(120),
            15.0,
            6.0,
            5,
        );
        let b = ScenarioScript::partition_churn(
            &nodes,
            SimTime::from_secs(10),
            SimTime::from_secs(120),
            15.0,
            6.0,
            5,
        );
        assert_eq!(a, b, "same config must generate the same script");
        assert!(
            !a.is_empty(),
            "110 s of partition churn generated no events"
        );
        let events = a.sorted_events();
        let mut partitioned = false;
        for event in &events {
            match &event.action {
                ScenarioAction::Partition { nodes: side } => {
                    assert!(!partitioned, "partition while already partitioned");
                    assert!(!side.is_empty());
                    let mut sorted = side.clone();
                    sorted.sort_unstable();
                    assert_eq!(&sorted, side, "sides are emitted sorted");
                    assert!(side.iter().all(|n| nodes.contains(n)));
                    assert!(event.at >= SimTime::from_secs(10));
                    partitioned = true;
                }
                ScenarioAction::Heal => {
                    assert!(partitioned, "heal without a partition");
                    partitioned = false;
                }
                other => panic!("unexpected action {other:?}"),
            }
            assert!(event.at <= SimTime::from_secs(120));
        }
        assert!(!partitioned, "script must end healed");
    }

    #[test]
    fn merge_combines_events_and_down_sets() {
        let a = ScenarioScript::single_crash(SimTime::from_secs(10), 1);
        let mut b = ScenarioScript::new();
        b.down_from_start(5);
        b.push(SimTime::from_secs(5), ScenarioAction::Join { node: 5 });
        let merged = a.merge(b);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.initially_down(), &[5]);
        assert_eq!(
            merged.sorted_events()[0].action,
            ScenarioAction::Join { node: 5 }
        );
    }
}
