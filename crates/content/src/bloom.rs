//! Bloom filters for approximate reconciliation (paper §2.3, §3.2).
//!
//! A Bullet receiver describes the packets it already holds with a Bloom
//! filter and installs it at each sending peer; the peer then forwards only
//! keys that do not appear in the filter. False positives cause a peer to
//! withhold a packet the receiver is actually missing (recovered later from
//! someone else); false negatives never occur, so no bandwidth is wasted on
//! data the receiver provably has.

/// A fixed-size Bloom filter over `u64` keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
    inserted: usize,
}

impl BloomFilter {
    /// Creates a filter with `m_bits` bits and `k` hash functions.
    pub fn new(m_bits: usize, k: u32) -> Self {
        assert!(m_bits > 0, "a Bloom filter needs at least one bit");
        assert!(k > 0, "a Bloom filter needs at least one hash function");
        BloomFilter {
            bits: vec![0u64; m_bits.div_ceil(64)],
            m: m_bits,
            k,
            inserted: 0,
        }
    }

    /// Creates a filter sized for `expected_items` at the given target false
    /// positive rate, using the standard optimal sizing formulas.
    pub fn for_capacity(expected_items: usize, target_fp: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = target_fp.clamp(1e-9, 0.5);
        let m = (-(n * p.ln()) / (2f64.ln().powi(2))).ceil().max(64.0) as usize;
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 16.0) as u32;
        BloomFilter::new(m, k)
    }

    /// Number of bits in the filter.
    pub fn bits(&self) -> usize {
        self.m
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> u32 {
        self.k
    }

    /// Number of elements inserted so far.
    pub fn population(&self) -> usize {
        self.inserted
    }

    /// Wire size in bytes (bit array only; header overhead is accounted for
    /// by callers).
    pub fn wire_bytes(&self) -> u32 {
        (self.m as u32).div_ceil(8)
    }

    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let (h1, h2) = hash_pair(key);
        let m = self.m as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        // Inlined double hashing rather than `positions()`: the iterator
        // borrows `self`, which would force collecting the positions into a
        // heap-allocated `Vec` before the `&mut self.bits` writes — and this
        // runs on the summary/reconciliation hot path for every packet.
        let (h1, h2) = hash_pair(key);
        let m = self.m as u64;
        for i in 0..self.k as u64 {
            let pos = (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize;
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Tests a key. May return `true` for keys never inserted (false
    /// positive) but never returns `false` for an inserted key.
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// Clears the filter (used when rebuilding over a pruned working set).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// The expected false-positive probability for the current population,
    /// `(1 - e^{-kn/m})^k`.
    pub fn expected_fp_rate(&self) -> f64 {
        let kn = self.k as f64 * self.inserted as f64;
        let exponent = -kn / self.m as f64;
        (1.0 - exponent.exp()).powi(self.k as i32)
    }
}

/// Double hashing: two independent 64-bit hashes combined as `h1 + i*h2`,
/// the standard Kirsch–Mitzenmacher construction.
#[inline]
fn hash_pair(key: u64) -> (u64, u64) {
    let h1 = splitmix(key ^ 0x51_7C_C1_B7_27_22_0A_95);
    let h2 = splitmix(key.wrapping_mul(0x9E3779B97F4A7C15)) | 1;
    (h1, h2)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(4_096, 4);
        for key in 0..500u64 {
            bf.insert(key * 13);
        }
        for key in 0..500u64 {
            assert!(bf.contains(key * 13), "inserted key {key} reported absent");
        }
    }

    #[test]
    fn false_positive_rate_is_near_prediction() {
        let mut bf = BloomFilter::for_capacity(1_000, 0.01);
        for key in 0..1_000u64 {
            bf.insert(key);
        }
        let fp = (1_000u64..101_000).filter(|&k| bf.contains(k)).count() as f64 / 100_000.0;
        let predicted = bf.expected_fp_rate();
        assert!(fp < 0.05, "false positive rate {fp} too high");
        assert!(
            (fp - predicted).abs() < 0.02,
            "observed {fp} vs predicted {predicted}"
        );
    }

    #[test]
    fn sizing_formula_produces_reasonable_parameters() {
        let bf = BloomFilter::for_capacity(1_000, 0.01);
        // Optimal: m ≈ 9.6 n, k ≈ 7.
        assert!((8_000..12_000).contains(&bf.bits()), "m={}", bf.bits());
        assert!((5..=9).contains(&bf.hashes()), "k={}", bf.hashes());
    }

    #[test]
    fn clear_empties_the_filter() {
        let mut bf = BloomFilter::new(1_024, 3);
        for key in 0..100u64 {
            bf.insert(key);
        }
        bf.clear();
        assert_eq!(bf.population(), 0);
        let survivors = (0..100u64).filter(|&k| bf.contains(k)).count();
        assert_eq!(survivors, 0);
    }

    #[test]
    fn wire_bytes_matches_bit_count() {
        let bf = BloomFilter::new(8_192, 4);
        assert_eq!(bf.wire_bytes(), 1_024);
        let bf = BloomFilter::new(100, 2);
        assert_eq!(bf.wire_bytes(), 13);
    }

    #[test]
    fn fp_rate_grows_with_population() {
        let mut bf = BloomFilter::new(2_048, 4);
        let mut last = 0.0;
        for batch in 0..5u64 {
            for key in batch * 200..(batch + 1) * 200 {
                bf.insert(key);
            }
            let fp = bf.expected_fp_rate();
            assert!(fp >= last);
            last = fp;
        }
        assert!(last > 0.0 && last < 1.0);
    }
}
