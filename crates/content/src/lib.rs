//! # bullet-content
//!
//! Informed content delivery primitives (paper §2.3): the data structures a
//! Bullet node uses to describe what it has and discover what its peers can
//! give it.
//!
//! * [`WorkingSet`] — the sliding window of received packet sequence numbers.
//! * [`SummaryTicket`] — a 120-byte min-wise sketch of the working set,
//!   carried in RanSub sets; resemblance between tickets guides peer choice.
//! * [`BloomFilter`] — the compact set description a receiver installs at its
//!   sending peers.
//! * [`reconcile`] — the sender-side logic that turns a receiver's filter,
//!   range, and `(row, stripe)` assignment into the list of keys to forward.
//! * [`block`] — per-block integrity digests ([`BlockMeta`]) for verifying
//!   that forwarded data carries the source's bytes.

#![warn(missing_docs)]

pub mod block;
pub mod bloom;
pub mod reconcile;
pub mod summary;
pub mod working_set;

pub use block::{block_digest, BlockMeta};
pub use bloom::BloomFilter;
pub use reconcile::{missing_keys, missing_keys_iter, ReconcileRequest};
pub use summary::{PermutationFamily, SummaryTicket, DEFAULT_ENTRIES};
pub use working_set::WorkingSet;
