//! Approximate reconciliation between a sending peer and a receiver
//! (paper §2.3, §3.2).
//!
//! The receiver installs a Bloom filter describing its working set at each
//! sending peer, together with the sequence range it currently cares about
//! and a `(row, stripe)` assignment that partitions the sequence space among
//! its senders. A sender then forwards the keys it holds that fall in the
//! range, match its assigned row, and do not appear in the filter.

use std::sync::Arc;

use crate::bloom::BloomFilter;
use crate::working_set::WorkingSet;

/// The reconciliation state a receiver installs at one sending peer.
///
/// The Bloom filter is behind an `Arc`: a refresh tick builds one filter
/// describing the receiver's working set and installs it at *every* sending
/// peer (only the `(stripe, row)` assignment differs per sender), so the
/// per-sender requests — and the control messages carrying them through the
/// simulator — share the ~2 KB bit array instead of cloning it. Cloning a
/// request is a pointer bump; [`ReconcileRequest::wire_bytes`] still counts
/// the full filter, so modelled control traffic is unchanged.
#[derive(Clone, Debug)]
pub struct ReconcileRequest {
    /// Bloom filter over the receiver's working set (shared across the
    /// receiver's senders; see the type docs).
    pub filter: Arc<BloomFilter>,
    /// Lowest sequence number the receiver is still interested in.
    pub low: u64,
    /// Highest sequence number the receiver is interested in.
    pub high: u64,
    /// Total number of senders the receiver currently has (the number of
    /// rows in its sequence matrix, Fig. 4).
    pub stripe: u64,
    /// The row of the matrix assigned to this sender: forward only keys with
    /// `key % stripe == row`.
    pub row: u64,
}

impl ReconcileRequest {
    /// Creates a request covering `[low, high]` striped over `stripe` senders
    /// with this sender owning `row`. Accepts either an owned filter or an
    /// already-shared `Arc<BloomFilter>` (the multi-sender refresh path).
    pub fn new(
        filter: impl Into<Arc<BloomFilter>>,
        low: u64,
        high: u64,
        stripe: u64,
        row: u64,
    ) -> Self {
        let stripe = stripe.max(1);
        ReconcileRequest {
            filter: filter.into(),
            low,
            high,
            stripe,
            row: row % stripe,
        }
    }

    /// Whether `key` matches this request (in range, on the assigned row, and
    /// not already described by the receiver's Bloom filter).
    pub fn wants(&self, key: u64) -> bool {
        key >= self.low
            && key <= self.high
            && key % self.stripe == self.row
            && !self.filter.contains(key)
    }

    /// Wire size of the request in bytes: the Bloom filter plus range and
    /// striping fields.
    pub fn wire_bytes(&self) -> u32 {
        self.filter.wire_bytes() + 24
    }
}

/// Computes the keys a sender holding `have` should transmit for `request`,
/// up to `limit` keys, lowest sequence numbers first.
///
/// This is the sender-side half of approximate reconciliation: the result
/// contains no keys the receiver provably has (no false negatives in the
/// Bloom filter) but may omit keys the receiver is missing if the filter
/// returned a false positive for them.
pub fn missing_keys(have: &WorkingSet, request: &ReconcileRequest, limit: usize) -> Vec<u64> {
    missing_keys_iter(have, request, limit).collect()
}

/// Iterator form of [`missing_keys`], for callers that stream the keys into
/// a reusable buffer instead of allocating a fresh `Vec` per peer-service
/// tick.
pub fn missing_keys_iter<'a>(
    have: &'a WorkingSet,
    request: &'a ReconcileRequest,
    limit: usize,
) -> impl Iterator<Item = u64> + 'a {
    have.iter_range(request.low, request.high)
        .filter(move |&key| key % request.stripe == request.row && !request.filter.contains(key))
        .take(limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_of(keys: &[u64]) -> BloomFilter {
        let mut bf = BloomFilter::for_capacity(keys.len().max(16), 0.01);
        for &k in keys {
            bf.insert(k);
        }
        bf
    }

    fn working_set_of(range: std::ops::Range<u64>) -> WorkingSet {
        let mut ws = WorkingSet::new();
        for k in range {
            ws.insert(k);
        }
        ws
    }

    #[test]
    fn sender_offers_only_missing_keys() {
        let sender = working_set_of(0..100);
        let receiver_has: Vec<u64> = (0..50).collect();
        let request = ReconcileRequest::new(filter_of(&receiver_has), 0, 99, 1, 0);
        let offered = missing_keys(&sender, &request, usize::MAX);
        // Nothing the receiver already has may be offered.
        for key in &offered {
            assert!(!receiver_has.contains(key));
        }
        // Most of 50..100 should be offered (false positives may hide a few).
        assert!(offered.len() >= 45, "offered only {} keys", offered.len());
    }

    #[test]
    fn striping_partitions_the_sequence_space() {
        let sender = working_set_of(0..100);
        let empty = BloomFilter::new(1_024, 4);
        let r0 = ReconcileRequest::new(empty.clone(), 0, 99, 4, 1);
        let offered = missing_keys(&sender, &r0, usize::MAX);
        assert!(!offered.is_empty());
        assert!(offered.iter().all(|k| k % 4 == 1));
    }

    #[test]
    fn range_bounds_are_respected() {
        let sender = working_set_of(0..1_000);
        let empty = BloomFilter::new(1_024, 4);
        let request = ReconcileRequest::new(empty, 200, 299, 1, 0);
        let offered = missing_keys(&sender, &request, usize::MAX);
        assert_eq!(offered.len(), 100);
        assert!(offered.iter().all(|&k| (200..300).contains(&k)));
    }

    #[test]
    fn limit_truncates_lowest_first() {
        let sender = working_set_of(0..100);
        let empty = BloomFilter::new(1_024, 4);
        let request = ReconcileRequest::new(empty, 0, 99, 1, 0);
        let offered = missing_keys(&sender, &request, 10);
        assert_eq!(offered, (0..10).collect::<Vec<u64>>());
    }

    /// The departed-sender recovery property behind Bullet's churn repair:
    /// while a dead sender still owns row `r` of the stripe, the keys of
    /// that row are requested from nobody else — but as soon as the
    /// receiver restripes its requests over the surviving senders, every
    /// one of those keys becomes requestable again. A stale Bloom filter
    /// (or stale row assignment) must suppress re-requests only until the
    /// next refresh, never permanently.
    #[test]
    fn restriping_after_a_departed_sender_reexposes_its_row() {
        let sender = working_set_of(0..200);
        let receiver_has: Vec<u64> = (0..40).collect();
        // Two senders: the live one owns row 0, the (about to die) one row 1.
        let live_before = ReconcileRequest::new(filter_of(&receiver_has), 0, 199, 2, 0);
        let dead_row: Vec<u64> = (40..200).filter(|k| k % 2 == 1).collect();
        let offered_before = missing_keys(&sender, &live_before, usize::MAX);
        for key in &dead_row {
            assert!(
                !offered_before.contains(key),
                "key {key} of the dead row leaked before the restripe"
            );
        }
        // Sender 1 departs; the receiver rebuilds its request with stripe 1.
        let live_after = ReconcileRequest::new(filter_of(&receiver_has), 0, 199, 1, 0);
        let offered_after = missing_keys(&sender, &live_after, usize::MAX);
        for key in &dead_row {
            assert!(
                offered_after.contains(key) || receiver_has.contains(key),
                "key {key} stayed suppressed after the restripe"
            );
        }
    }

    /// A refreshed (rebuilt) filter stops suppressing keys the receiver
    /// lost interest in advertising: re-requests resume once the stale
    /// filter is replaced, even for keys a false positive used to hide.
    #[test]
    fn filter_refresh_unsuppresses_previously_hidden_keys() {
        let sender = working_set_of(0..100);
        // A filter that (wrongly, from the receiver's perspective) claims
        // to hold everything — e.g. captured before the receiver pruned
        // its working set, or from a previous session before a rejoin.
        let all: Vec<u64> = (0..100).collect();
        let stale = ReconcileRequest::new(filter_of(&all), 0, 99, 1, 0);
        assert!(missing_keys(&sender, &stale, usize::MAX).is_empty());
        // The refreshed request carries the receiver's true (empty) state.
        let refreshed = ReconcileRequest::new(filter_of(&[]), 0, 99, 1, 0);
        assert_eq!(missing_keys(&sender, &refreshed, usize::MAX).len(), 100);
    }

    /// Per-sender requests built from one shared filter behave exactly like
    /// requests owning private copies, and cloning them must not copy the
    /// filter (the refresh-tick enqueue path is a pointer bump).
    #[test]
    fn requests_share_one_filter_across_senders() {
        let filter = Arc::new(filter_of(&(0..50).collect::<Vec<u64>>()));
        let bytes = ReconcileRequest::new(filter.clone(), 0, 99, 1, 0).wire_bytes();
        let rows: Vec<ReconcileRequest> = (0..4)
            .map(|row| ReconcileRequest::new(filter.clone(), 0, 99, 4, row))
            .collect();
        for (row, req) in rows.iter().enumerate() {
            let owned = ReconcileRequest::new(
                filter_of(&(0..50).collect::<Vec<u64>>()),
                0,
                99,
                4,
                row as u64,
            );
            for key in 0..100 {
                assert_eq!(req.wants(key), owned.wants(key), "row {row} key {key}");
            }
            assert_eq!(
                req.wire_bytes(),
                bytes,
                "wire size must count the full filter"
            );
            assert!(
                Arc::ptr_eq(&req.filter, &filter),
                "row {row} copied the filter"
            );
        }
        let cloned = rows[0].clone();
        assert!(
            Arc::ptr_eq(&cloned.filter, &filter),
            "clone copied the filter"
        );
    }

    #[test]
    fn zero_stripe_is_coerced_to_one() {
        let request = ReconcileRequest::new(BloomFilter::new(64, 2), 0, 10, 0, 5);
        assert_eq!(request.stripe, 1);
        assert_eq!(request.row, 0);
        assert!(request.wants(3));
    }

    #[test]
    fn wants_respects_all_three_conditions() {
        let receiver_has = [4u64];
        let request = ReconcileRequest::new(filter_of(&receiver_has), 2, 8, 2, 0);
        assert!(request.wants(6));
        assert!(!request.wants(4), "already held");
        assert!(!request.wants(5), "wrong row");
        assert!(!request.wants(10), "out of range");
    }
}
