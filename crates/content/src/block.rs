//! Per-block integrity digests (data-plane verification).
//!
//! Bullet's data plane assumes cooperative peers: nothing in the paper
//! checks that a block a peer forwards actually carries the source's
//! bytes. This module adds the minimal primitive an integrity layer
//! needs — a deterministic per-block digest the source seals into every
//! data packet and every receiver can recompute and compare.
//!
//! The simulator carries no payload bytes (packets are sized, not
//! filled), so the digest is a keyed hash of the block's *identity* (its
//! sequence number) standing in for a content hash: a node that holds
//! the genuine block knows the sealed digest, a node relaying tampered
//! data carries a digest that fails [`BlockMeta::verify`]. The mix is an
//! FxHash-style multiply-xor, seeded so a digest is never equal to its
//! own sequence number and cannot be forged by accident.

/// Computes the sealed digest of block `seq` — the value the source
/// stamps into the block's [`BlockMeta`] and every verifier recomputes.
///
/// Deterministic, RNG-free and cheap (two rounds of an FxHash-style
/// rotate-xor-multiply), so verification can run on every received
/// packet without perturbing simulation behaviour.
pub fn block_digest(seq: u64) -> u64 {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ seq.rotate_left(17);
    h = (h.rotate_left(5) ^ seq).wrapping_mul(K);
    h = (h.rotate_left(5) ^ seq.rotate_left(32)).wrapping_mul(K);
    h
}

/// A block's identity plus the digest it is travelling with.
///
/// Carried (conceptually) in every data packet and stored alongside the
/// working set: [`BlockMeta::verify`] tells a receiver whether the bytes
/// it was handed are the source's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// The block's stream sequence number.
    pub seq: u64,
    /// The digest the block is travelling with. Equal to
    /// [`block_digest`]`(seq)` for genuine data; anything else marks the
    /// block as tampered.
    pub digest: u64,
}

impl BlockMeta {
    /// The genuine metadata of block `seq`, as sealed by the source.
    pub fn sealed(seq: u64) -> Self {
        BlockMeta {
            seq,
            digest: block_digest(seq),
        }
    }

    /// Whether the carried digest matches the sealed digest of `seq`.
    pub fn verify(&self) -> bool {
        self.digest == block_digest(self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_meta_verifies() {
        for seq in [0, 1, 2, 63, 1_000_000, u64::MAX] {
            assert!(BlockMeta::sealed(seq).verify(), "seq {seq}");
        }
    }

    #[test]
    fn tampered_digests_fail_verification() {
        for seq in 0..1_000u64 {
            let meta = BlockMeta::sealed(seq);
            let tampered = BlockMeta {
                digest: meta.digest ^ 1,
                ..meta
            };
            assert!(!tampered.verify(), "seq {seq}");
            // A digest copied from a *different* block must not verify
            // either (no cross-block replay).
            let replayed = BlockMeta {
                seq,
                digest: block_digest(seq + 1),
            };
            assert!(!replayed.verify(), "seq {seq}");
        }
    }

    #[test]
    fn digests_are_never_trivial() {
        for seq in 0..10_000u64 {
            let digest = block_digest(seq);
            assert_ne!(digest, seq, "digest equals its own seq");
            assert_ne!(digest, 0, "zero digest would be forgeable by default");
        }
    }
}
