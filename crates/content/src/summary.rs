//! Summary tickets: min-wise sketches of working sets (paper §2.3, Fig. 3).
//!
//! A summary ticket is a small fixed-size array (120 bytes in the paper: 30
//! four-byte entries). Entry *j* holds the minimum of a permutation function
//! `P_j(x) = (a_j · x + b_j) mod U` over every element `x` in the working
//! set. Two nodes estimate the *resemblance* of their working sets as the
//! fraction of entries whose values match, which is how a Bullet receiver
//! picks the candidate peer with the most disjoint content.

/// Number of sketch entries in the default (paper-sized) ticket.
pub const DEFAULT_ENTRIES: usize = 30;

/// Universe size for the permutation functions: a prime near 2^31, large
/// enough for any realistic sequence-number space.
const UNIVERSE: u64 = 2_147_483_647;

/// The shared family of permutation functions.
///
/// Every node must use the same `(a_j, b_j)` constants or resemblance
/// comparisons would be meaningless; the family is derived deterministically
/// from an application-wide seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PermutationFamily {
    coefficients: Vec<(u64, u64)>,
}

impl PermutationFamily {
    /// Creates the family with `entries` permutation functions from a shared
    /// seed. All participants of one dissemination session must use the same
    /// seed and entry count.
    pub fn new(entries: usize, seed: u64) -> Self {
        assert!(entries > 0, "a summary ticket needs at least one entry");
        // splitmix64 expansion of the seed into (a, b) pairs.
        let mut state = seed ^ 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let coefficients = (0..entries)
            .map(|_| {
                // `a` must be non-zero for the map to be a permutation.
                let a = next() % (UNIVERSE - 1) + 1;
                let b = next() % UNIVERSE;
                (a, b)
            })
            .collect();
        PermutationFamily { coefficients }
    }

    /// The paper-sized family (30 entries ≈ 120 bytes).
    pub fn paper_default() -> Self {
        PermutationFamily::new(DEFAULT_ENTRIES, 0xB0111E7)
    }

    /// Number of permutation functions (ticket entries).
    pub fn entries(&self) -> usize {
        self.coefficients.len()
    }

    /// Applies permutation function `j` to `x`.
    pub fn permute(&self, j: usize, x: u64) -> u64 {
        let (a, b) = self.coefficients[j];
        (a.wrapping_mul(x % UNIVERSE) + b) % UNIVERSE
    }
}

/// A min-wise sketch of a working set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryTicket {
    entries: Vec<u64>,
}

impl SummaryTicket {
    /// Creates an empty ticket for the given family.
    pub fn empty(family: &PermutationFamily) -> Self {
        SummaryTicket {
            entries: vec![u64::MAX; family.entries()],
        }
    }

    /// Builds a ticket from an iterator of working-set elements.
    pub fn from_elements<I: IntoIterator<Item = u64>>(
        family: &PermutationFamily,
        elems: I,
    ) -> Self {
        let mut ticket = SummaryTicket::empty(family);
        for x in elems {
            ticket.insert(family, x);
        }
        ticket
    }

    /// Inserts one element, updating every entry with the smaller permuted
    /// value (the min-wise update of Fig. 3).
    pub fn insert(&mut self, family: &PermutationFamily, x: u64) {
        for (j, entry) in self.entries.iter_mut().enumerate() {
            let permuted = family.permute(j, x);
            if permuted < *entry {
                *entry = permuted;
            }
        }
    }

    /// Number of entries in the ticket.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ticket has never had an element inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|&e| e == u64::MAX)
    }

    /// Wire size of the ticket in bytes (four bytes per entry, as in the
    /// paper's 120-byte tickets).
    pub fn wire_bytes(&self) -> u32 {
        (self.entries.len() * 4) as u32
    }

    /// The resemblance between two tickets: the fraction of entries with
    /// identical values. Approximates the Jaccard similarity of the
    /// underlying working sets.
    ///
    /// # Panics
    ///
    /// Panics if the tickets have different sizes (they were built from
    /// different permutation families).
    pub fn resemblance(&self, other: &SummaryTicket) -> f64 {
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "tickets from different permutation families are not comparable"
        );
        if self.entries.is_empty() {
            return 0.0;
        }
        let matching = self
            .entries
            .iter()
            .zip(&other.entries)
            .filter(|(a, b)| a == b)
            .count();
        matching as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> PermutationFamily {
        PermutationFamily::paper_default()
    }

    #[test]
    fn paper_default_is_120_bytes() {
        let ticket = SummaryTicket::empty(&family());
        assert_eq!(ticket.wire_bytes(), 120);
        assert_eq!(ticket.len(), DEFAULT_ENTRIES);
    }

    #[test]
    fn identical_sets_have_resemblance_one() {
        let f = family();
        let a = SummaryTicket::from_elements(&f, 0..100);
        let b = SummaryTicket::from_elements(&f, 0..100);
        assert_eq!(a.resemblance(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_have_low_resemblance() {
        let f = family();
        let a = SummaryTicket::from_elements(&f, 0..500);
        let b = SummaryTicket::from_elements(&f, 10_000..10_500);
        assert!(a.resemblance(&b) < 0.2, "resemblance {}", a.resemblance(&b));
    }

    #[test]
    fn resemblance_tracks_overlap() {
        let f = family();
        let base = SummaryTicket::from_elements(&f, 0..1_000);
        let half = SummaryTicket::from_elements(&f, 500..1_500);
        let most = SummaryTicket::from_elements(&f, 100..1_100);
        let r_half = base.resemblance(&half);
        let r_most = base.resemblance(&most);
        assert!(
            r_most > r_half,
            "more overlap should mean higher resemblance ({r_most} vs {r_half})"
        );
    }

    #[test]
    fn resemblance_estimates_jaccard() {
        // Jaccard of [0,1000) vs [500,1500) is 500/1500 = 1/3. With 30
        // entries the estimator is coarse; accept a generous band.
        let f = PermutationFamily::new(200, 0xB0111E7);
        let a = SummaryTicket::from_elements(&f, 0..1_000);
        let b = SummaryTicket::from_elements(&f, 500..1_500);
        let r = a.resemblance(&b);
        assert!((0.2..0.47).contains(&r), "resemblance {r} far from 1/3");
    }

    #[test]
    fn insert_is_order_independent() {
        let f = family();
        let mut fwd = SummaryTicket::empty(&f);
        let mut rev = SummaryTicket::empty(&f);
        for x in 0..200 {
            fwd.insert(&f, x);
        }
        for x in (0..200).rev() {
            rev.insert(&f, x);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn empty_ticket_reports_empty() {
        let f = family();
        let t = SummaryTicket::empty(&f);
        assert!(t.is_empty());
        let full = SummaryTicket::from_elements(&f, 0..1);
        assert!(!full.is_empty());
    }

    #[test]
    #[should_panic(expected = "different permutation families")]
    fn mismatched_ticket_sizes_panic() {
        let a = SummaryTicket::empty(&PermutationFamily::new(10, 1));
        let b = SummaryTicket::empty(&PermutationFamily::new(20, 1));
        let _ = a.resemblance(&b);
    }
}
