//! Working sets (paper §2.3, §3.1).
//!
//! Each node maintains a *working set*: the sequence numbers of packets it
//! has received over some recent window. The working set backs the node's
//! summary ticket and Bloom filter, and is pruned as old packets stop being
//! useful for reconstruction so that the Bloom filter's population stays
//! bounded.

use std::collections::BTreeSet;

/// A set of received packet sequence numbers over a sliding window.
#[derive(Clone, Debug, Default)]
pub struct WorkingSet {
    seqs: BTreeSet<u64>,
    /// Sequence numbers below this have been pruned and are no longer
    /// represented (they may or may not have been received).
    low_watermark: u64,
}

impl WorkingSet {
    /// Creates an empty working set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a received sequence number. Returns `true` if it was new.
    ///
    /// Sequence numbers below the low watermark are ignored: they fall
    /// outside the window the node still cares about.
    pub fn insert(&mut self, seq: u64) -> bool {
        if seq < self.low_watermark {
            return false;
        }
        self.seqs.insert(seq)
    }

    /// Whether `seq` is present in the working set.
    pub fn contains(&self, seq: u64) -> bool {
        self.seqs.contains(&seq)
    }

    /// Number of sequence numbers currently held.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the working set is empty.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// The smallest sequence number still held, if any.
    pub fn min_seq(&self) -> Option<u64> {
        self.seqs.iter().next().copied()
    }

    /// The largest sequence number held, if any.
    pub fn max_seq(&self) -> Option<u64> {
        self.seqs.iter().next_back().copied()
    }

    /// The window `(low, high)` of sequence numbers this node currently cares
    /// about: `low` is the pruning watermark, `high` the largest received.
    pub fn range(&self) -> (u64, u64) {
        (
            self.low_watermark,
            self.max_seq().unwrap_or(self.low_watermark),
        )
    }

    /// The low watermark (lowest sequence number still represented).
    pub fn low_watermark(&self) -> u64 {
        self.low_watermark
    }

    /// Removes all sequence numbers below `low` and raises the watermark.
    ///
    /// This is the "removing older items that are not needed for data
    /// reconstruction" step the paper describes; it bounds both memory and
    /// the Bloom filter population.
    pub fn prune_below(&mut self, low: u64) {
        if low <= self.low_watermark {
            return;
        }
        self.seqs = self.seqs.split_off(&low);
        self.low_watermark = low;
    }

    /// Keeps only the most recent `max_len` sequence numbers, pruning older
    /// ones. `max_len == 0` empties the set and raises the watermark past
    /// the newest held sequence number. Returns the new low watermark.
    pub fn prune_to_len(&mut self, max_len: usize) -> u64 {
        if self.seqs.len() > max_len {
            let cutoff = if max_len == 0 {
                self.max_seq()
                    .expect("set is non-empty when len > max_len")
                    .saturating_add(1)
            } else {
                *self
                    .seqs
                    .iter()
                    .rev()
                    .nth(max_len - 1)
                    .expect("len checked above")
            };
            self.prune_below(cutoff);
        }
        self.low_watermark
    }

    /// Iterates over held sequence numbers in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.seqs.iter().copied()
    }

    /// Sequence numbers in `[low, high]`, in increasing order.
    pub fn iter_range(&self, low: u64, high: u64) -> impl Iterator<Item = u64> + '_ {
        self.seqs.range(low..=high).copied()
    }

    /// Counts missing sequence numbers in `[low, high]` (gaps in the set).
    pub fn missing_in_range(&self, low: u64, high: u64) -> u64 {
        if high < low {
            return 0;
        }
        let span = high - low + 1;
        let held = self.seqs.range(low..=high).count() as u64;
        span - held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut ws = WorkingSet::new();
        assert!(ws.insert(5));
        assert!(!ws.insert(5));
        assert!(ws.contains(5));
        assert!(!ws.contains(6));
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn range_tracks_extremes() {
        let mut ws = WorkingSet::new();
        for seq in [10, 3, 7, 20] {
            ws.insert(seq);
        }
        assert_eq!(ws.min_seq(), Some(3));
        assert_eq!(ws.max_seq(), Some(20));
        assert_eq!(ws.range(), (0, 20));
    }

    #[test]
    fn prune_below_discards_and_blocks_reinsertion() {
        let mut ws = WorkingSet::new();
        for seq in 0..100 {
            ws.insert(seq);
        }
        ws.prune_below(50);
        assert_eq!(ws.len(), 50);
        assert!(!ws.contains(10));
        assert!(!ws.insert(10), "pruned seqs must not be reinserted");
        assert_eq!(ws.low_watermark(), 50);
        assert_eq!(ws.range(), (50, 99));
    }

    #[test]
    fn prune_to_len_keeps_newest() {
        let mut ws = WorkingSet::new();
        for seq in 0..1_000 {
            ws.insert(seq);
        }
        ws.prune_to_len(100);
        assert_eq!(ws.len(), 100);
        assert_eq!(ws.min_seq(), Some(900));
        assert_eq!(ws.max_seq(), Some(999));
    }

    #[test]
    fn prune_to_len_zero_empties_without_panicking() {
        // Regression: `max_len - 1` underflowed and panicked for max_len=0.
        let mut ws = WorkingSet::new();
        for seq in 10..20 {
            ws.insert(seq);
        }
        let watermark = ws.prune_to_len(0);
        assert!(ws.is_empty());
        assert_eq!(watermark, 20, "watermark passes the newest pruned seq");
        assert!(!ws.insert(19), "pruned seqs stay pruned");
        assert!(ws.insert(20), "new seqs above the watermark are accepted");

        // On an empty set it is a no-op.
        let mut empty = WorkingSet::new();
        assert_eq!(empty.prune_to_len(0), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn missing_in_range_counts_gaps() {
        let mut ws = WorkingSet::new();
        for seq in [0, 1, 2, 5, 9] {
            ws.insert(seq);
        }
        assert_eq!(ws.missing_in_range(0, 9), 5);
        assert_eq!(ws.missing_in_range(0, 2), 0);
        assert_eq!(ws.missing_in_range(9, 0), 0);
    }

    #[test]
    fn iter_range_is_ordered_and_bounded() {
        let mut ws = WorkingSet::new();
        for seq in [8, 2, 6, 4, 10] {
            ws.insert(seq);
        }
        let got: Vec<u64> = ws.iter_range(3, 9).collect();
        assert_eq!(got, vec![4, 6, 8]);
    }
}
