//! Hand-crafted comparison trees (paper §4.7).
//!
//! For the PlanetLab experiment the authors compare Bullet against streaming
//! over hand-built trees: a "good" tree that places the nodes with the best
//! measured bandwidth from the source high in the tree, and a "worst" tree
//! built the opposite way. We reproduce both constructions from a per-node
//! bandwidth metric (in our harness the metric comes from the topology
//! oracle, standing in for the paper's pathload measurements).

use bullet_netsim::OverlayId;

use crate::tree::Tree;

/// Builds a complete `max_children`-ary tree whose levels are filled in the
/// order given by `order` (the first element becomes the root's first child
/// and so on). `root` must not appear in `order`.
pub fn layered_tree(root: OverlayId, order: &[OverlayId], max_children: usize) -> Tree {
    assert!(max_children > 0, "nodes need at least one child slot");
    let n = order.len() + 1;
    let mut parents: Vec<Option<OverlayId>> = vec![None; n];
    // Breadth-first parents: position i in the filled sequence (root at 0,
    // order[j] at j + 1) hangs off position (i - 1) / max_children.
    let position_of = |i: usize| -> OverlayId {
        if i == 0 {
            root
        } else {
            order[i - 1]
        }
    };
    for j in 0..order.len() {
        let i = j + 1;
        let parent_pos = (i - 1) / max_children;
        parents[order[j]] = Some(position_of(parent_pos));
    }
    Tree::from_parents(parents).expect("layered construction yields a tree")
}

/// Builds the "good" tree: nodes with the highest `bandwidth_metric` sit
/// closest to the root.
pub fn good_tree(root: OverlayId, bandwidth_metric: &[f64], max_children: usize) -> Tree {
    let order = sorted_nodes(root, bandwidth_metric, true);
    layered_tree(root, &order, max_children)
}

/// Builds the "worst" tree: nodes with the *lowest* metric sit closest to the
/// root, so every subtree is throttled by a slow interior node.
pub fn worst_tree(root: OverlayId, bandwidth_metric: &[f64], max_children: usize) -> Tree {
    let order = sorted_nodes(root, bandwidth_metric, false);
    layered_tree(root, &order, max_children)
}

fn sorted_nodes(root: OverlayId, metric: &[f64], descending: bool) -> Vec<OverlayId> {
    let mut nodes: Vec<OverlayId> = (0..metric.len()).filter(|&n| n != root).collect();
    nodes.sort_by(|&a, &b| {
        let ord = metric[a]
            .partial_cmp(&metric[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b));
        if descending {
            ord.reverse()
        } else {
            ord
        }
    });
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_tree_places_fast_nodes_high() {
        // Node 3 has the highest bandwidth, node 1 the lowest.
        let metric = [0.0, 1.0, 5.0, 9.0, 3.0];
        let tree = good_tree(0, &metric, 2);
        assert_eq!(tree.root(), 0);
        // Root's children are the two fastest nodes.
        let mut top: Vec<_> = tree.children(0).to_vec();
        top.sort_unstable();
        assert_eq!(top, vec![2, 3]);
        // The slowest node is a leaf.
        assert!(tree.children(1).is_empty());
    }

    #[test]
    fn worst_tree_places_slow_nodes_high() {
        let metric = [0.0, 1.0, 5.0, 9.0, 3.0];
        let tree = worst_tree(0, &metric, 2);
        let mut top: Vec<_> = tree.children(0).to_vec();
        top.sort_unstable();
        assert_eq!(top, vec![1, 4]);
        assert!(tree.children(3).is_empty());
    }

    #[test]
    fn layered_tree_respects_degree_and_size() {
        let order: Vec<usize> = (1..40).collect();
        let tree = layered_tree(0, &order, 3);
        assert_eq!(tree.len(), 40);
        assert!(tree.max_degree() <= 3);
        assert_eq!(tree.subtree_size(0), 40);
        // A complete ternary tree over 40 nodes (1 + 3 + 9 + 27) has height 3.
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn degree_one_builds_a_chain_in_metric_order() {
        let metric = [0.0, 10.0, 30.0, 20.0];
        let tree = good_tree(0, &metric, 1);
        assert_eq!(tree.children(0), &[2]);
        assert_eq!(tree.children(2), &[3]);
        assert_eq!(tree.children(3), &[1]);
    }

    #[test]
    fn root_not_required_to_be_zero() {
        let metric = [5.0, 1.0, 2.0];
        let tree = good_tree(2, &metric, 2);
        assert_eq!(tree.root(), 2);
        let mut top: Vec<_> = tree.children(2).to_vec();
        top.sort_unstable();
        assert_eq!(top, vec![0, 1]);
    }
}
