//! An Overcast-style online bandwidth-optimizing tree (paper §4.2, §5).
//!
//! In Overcast, every node joins at the root and migrates down the tree to
//! the lowest point at which it can still maintain roughly the same bandwidth
//! from the source. The paper reports that a tree built this way never
//! reached more than ~75% of the bandwidth of the offline greedy bottleneck
//! tree; we provide the construction so that comparison can be reproduced.
//!
//! The implementation uses the same throughput oracle as the offline
//! algorithm for its "bandwidth probe" between a prospective parent and the
//! joining node (the real system measures this with 10-second TCP transfers);
//! unlike the offline algorithm it only ever looks at the joining node's
//! local choices, never at global state.

use bullet_netsim::{Network, OverlayId};

use crate::ombt::{OracleStrategy, ThroughputOracle};
use crate::tree::Tree;

/// Configuration of the Overcast-like construction.
#[derive(Clone, Copy, Debug)]
pub struct OvercastConfig {
    /// Packet size used in the bandwidth estimates, in bytes.
    pub packet_size: u32,
    /// Maximum children per node.
    pub max_children: usize,
    /// A node relocates below a sibling only if the bandwidth through that
    /// sibling is at least this fraction of the bandwidth through its current
    /// parent (Overcast's "about as good" threshold).
    pub relocation_threshold: f64,
}

impl Default for OvercastConfig {
    fn default() -> Self {
        OvercastConfig {
            packet_size: 1_500,
            max_children: 10,
            relocation_threshold: 0.9,
        }
    }
}

/// Builds an Overcast-style tree by joining participants one at a time,
/// batching each joiner's bandwidth probes through the network's one-to-many
/// query path (a joining node's reverse probes all share it as their source,
/// so one row fill per join covers its entire descent).
pub fn overcast_tree(
    net: &mut Network,
    participants: usize,
    root: OverlayId,
    config: &OvercastConfig,
) -> Tree {
    overcast_tree_with(net, participants, root, config, OracleStrategy::default())
}

/// [`overcast_tree`] with an explicit [`OracleStrategy`]. Both strategies
/// build bit-identical trees.
pub fn overcast_tree_with(
    net: &mut Network,
    participants: usize,
    root: OverlayId,
    config: &OvercastConfig,
    strategy: OracleStrategy,
) -> Tree {
    assert!(participants > 0, "need at least one participant");
    assert!(root < participants, "root out of range");
    let mut oracle = ThroughputOracle::with_strategy(net, config.packet_size, strategy);
    let mut parents: Vec<Option<OverlayId>> = vec![None; participants];
    let mut children: Vec<Vec<OverlayId>> = vec![Vec::new(); participants];

    #[allow(clippy::needless_range_loop)] // `node` indexes several structures
    for node in 0..participants {
        if node == root {
            continue;
        }
        let mut current = root;
        loop {
            let via_current = oracle.estimate_bps(current, node).unwrap_or(0.0);
            // Consider migrating below the best child of the current parent.
            let best_child = children[current]
                .iter()
                .copied()
                .map(|c| (oracle.estimate_bps(c, node).unwrap_or(0.0), c))
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let must_descend = children[current].len() >= config.max_children;
            match best_child {
                Some((bw, child))
                    if must_descend || bw >= config.relocation_threshold * via_current =>
                {
                    current = child;
                }
                _ if must_descend => {
                    // Degree-full parent with no children to descend into
                    // cannot happen (children is non-empty when full), but
                    // guard against max_children == 0 misconfiguration.
                    break;
                }
                _ => break,
            }
        }
        parents[node] = Some(current);
        children[current].push(node);
        oracle.commit_flow(current, node);
    }

    Tree::from_parents(parents).expect("sequential join yields a tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::{LinkSpec, NetworkSpec, SimDuration};

    fn star(bw: &[f64]) -> NetworkSpec {
        let mut spec = NetworkSpec::new(bw.len() + 1);
        for (i, &b) in bw.iter().enumerate() {
            spec.add_link(LinkSpec::new(0, i + 1, b, SimDuration::from_millis(10)));
            spec.attach(i + 1);
        }
        spec
    }

    #[test]
    fn builds_a_complete_valid_tree() {
        let spec = star(&[5e6; 30]);
        let mut net = Network::new(&spec);
        let tree = overcast_tree(&mut net, 30, 0, &OvercastConfig::default());
        assert_eq!(tree.len(), 30);
        assert_eq!(tree.subtree_size(0), 30);
        assert!(tree.max_degree() <= 10);
    }

    #[test]
    fn degree_bound_forces_descent() {
        let spec = star(&[5e6; 30]);
        let mut net = Network::new(&spec);
        let config = OvercastConfig {
            max_children: 2,
            ..OvercastConfig::default()
        };
        let tree = overcast_tree(&mut net, 30, 0, &config);
        assert!(tree.max_degree() <= 2);
        assert!(tree.height() >= 4, "height {}", tree.height());
    }

    #[test]
    fn nodes_descend_when_bandwidth_is_comparable() {
        // Everyone shares the same hub, so bandwidth through any node is
        // comparable and joiners should sink below earlier joiners rather
        // than all crowding the root.
        let spec = star(&[10e6; 12]);
        let mut net = Network::new(&spec);
        let config = OvercastConfig {
            max_children: 10,
            relocation_threshold: 0.5,
            ..OvercastConfig::default()
        };
        let tree = overcast_tree(&mut net, 12, 0, &config);
        assert!(
            tree.children(0).len() < 11,
            "expected some nodes to migrate below the root's children"
        );
    }

    #[test]
    fn batched_and_pairwise_strategies_build_the_same_tree() {
        let spec = star(&[9e6, 2e6, 7e6, 4e6, 11e6, 3e6, 6e6, 1e6, 8e6, 5e6]);
        let config = OvercastConfig {
            max_children: 3,
            ..OvercastConfig::default()
        };
        let batched = overcast_tree_with(
            &mut Network::new(&spec),
            10,
            0,
            &config,
            OracleStrategy::Batched,
        );
        let pairwise = overcast_tree_with(
            &mut Network::new(&spec),
            10,
            0,
            &config,
            OracleStrategy::Pairwise,
        );
        assert_eq!(batched.parents(), pairwise.parents());
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let spec = star(&[3e6; 20]);
        let a = overcast_tree(&mut Network::new(&spec), 20, 0, &OvercastConfig::default());
        let b = overcast_tree(&mut Network::new(&spec), 20, 0, &OvercastConfig::default());
        assert_eq!(a.parents(), b.parents());
    }
}
