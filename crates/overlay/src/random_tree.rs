//! Degree-constrained random overlay trees.
//!
//! The paper's headline results run Bullet over a *random* tree: nodes are
//! attached in random order to a random already-joined node with spare
//! degree. Such trees are cheap to build online and make no attempt to be
//! bandwidth-aware, which is exactly why they make a good substrate for
//! showing how much bandwidth the mesh adds back.

use bullet_netsim::{OverlayId, SimRng};

use crate::tree::Tree;

/// Builds a random tree over `n` participants rooted at `root`, where no
/// node has more than `max_children` children.
///
/// # Panics
///
/// Panics if `n == 0`, `root >= n`, or `max_children == 0`.
pub fn random_tree(n: usize, root: OverlayId, max_children: usize, rng: &mut SimRng) -> Tree {
    assert!(n > 0, "cannot build an empty tree");
    assert!(root < n, "root {root} out of range for {n} participants");
    assert!(max_children > 0, "nodes must be allowed at least one child");
    let mut order: Vec<OverlayId> = (0..n).filter(|&i| i != root).collect();
    rng.shuffle(&mut order);
    let mut parents: Vec<Option<OverlayId>> = vec![None; n];
    let mut child_count = vec![0usize; n];
    // Nodes already in the tree that still have spare degree.
    let mut open: Vec<OverlayId> = vec![root];
    for node in order {
        let slot = rng.range_usize(0, open.len());
        let parent = open[slot];
        parents[node] = Some(parent);
        child_count[parent] += 1;
        if child_count[parent] >= max_children {
            open.swap_remove(slot);
        }
        open.push(node);
    }
    Tree::from_parents(parents).expect("construction preserves tree invariants")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_a_valid_tree_of_the_right_size() {
        let mut rng = SimRng::new(1);
        let tree = random_tree(100, 0, 6, &mut rng);
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.subtree_size(0), 100);
    }

    #[test]
    fn respects_the_degree_bound() {
        let mut rng = SimRng::new(2);
        for max_children in [1, 2, 5, 10] {
            let tree = random_tree(200, 3, max_children, &mut rng);
            assert!(tree.max_degree() <= max_children);
        }
    }

    #[test]
    fn degree_one_yields_a_chain() {
        let mut rng = SimRng::new(3);
        let tree = random_tree(50, 0, 1, &mut rng);
        assert_eq!(tree.height(), 49);
    }

    #[test]
    fn different_seeds_give_different_trees() {
        let mut a = SimRng::new(4);
        let mut b = SimRng::new(5);
        let ta = random_tree(64, 0, 4, &mut a);
        let tb = random_tree(64, 0, 4, &mut b);
        assert_ne!(ta.parents(), tb.parents());
    }

    #[test]
    fn same_seed_is_deterministic() {
        let ta = random_tree(64, 0, 4, &mut SimRng::new(9));
        let tb = random_tree(64, 0, 4, &mut SimRng::new(9));
        assert_eq!(ta.parents(), tb.parents());
    }

    #[test]
    fn singleton_tree_is_just_the_root() {
        let mut rng = SimRng::new(6);
        let tree = random_tree(1, 0, 4, &mut rng);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.children(0), &[] as &[usize]);
    }

    #[test]
    fn custom_root_is_honoured() {
        let mut rng = SimRng::new(7);
        let tree = random_tree(20, 13, 3, &mut rng);
        assert_eq!(tree.root(), 13);
        assert_eq!(tree.parent(13), None);
    }
}
