//! The offline greedy Overlay Maximum Bottleneck Tree (paper §4.1).
//!
//! Given complete knowledge of the topology (link bandwidths, loss rates, and
//! propagation delays) the algorithm greedily grows a tree from the source,
//! always attaching the outside node reachable through the overlay link with
//! the highest estimated throughput. Overlay link throughput is estimated as
//! the minimum of the TCP steady-state rate for the path's RTT and loss, and
//! the fair share of every physical link on the path given the tree flows
//! already routed across it. The paper uses this tree as the strongest
//! tree-based competitor to Bullet; it is explicitly an oracle (it needs
//! global topology information no online protocol has).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use bullet_netsim::{DirectedLinkId, Network, OverlayId};
use bullet_transport::tcp_throughput_bps;

use crate::tree::Tree;

/// Configuration of the greedy OMBT construction.
#[derive(Clone, Copy, Debug)]
pub struct OmbtConfig {
    /// Packet size used in the TCP steady-state formula, in bytes.
    pub packet_size: u32,
    /// Maximum children per node (degree constraint).
    pub max_children: usize,
}

impl Default for OmbtConfig {
    fn default() -> Self {
        OmbtConfig {
            packet_size: 1_500,
            max_children: 10,
        }
    }
}

/// A candidate overlay edge in the greedy frontier.
struct Candidate {
    throughput_bps: f64,
    from: OverlayId,
    to: OverlayId,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.throughput_bps == other.throughput_bps
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.throughput_bps
            .partial_cmp(&other.throughput_bps)
            .unwrap_or(Ordering::Equal)
            .then_with(|| (other.from, other.to).cmp(&(self.from, self.to)))
    }
}

/// How a [`ThroughputOracle`] acquires the unicast routes it inspects.
///
/// Both strategies return the same canonical paths (the guarantee lives in
/// `bullet_netsim::routing`), so the trees built on top of them are
/// bit-identical; they differ only in how much search work a cache-missing
/// pair costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OracleStrategy {
    /// One point-to-point computation per (source, destination) pair — the
    /// pre-batching behaviour, kept as the reference baseline for the
    /// `micro_oracles` benchmark and the equivalence goldens.
    Pairwise,
    /// Batched one-to-many queries: the first miss on a source's row fills
    /// the network's flat participant route table with a single forward
    /// search ([`Network::route_all_from`]). Tree constructions evaluate a
    /// candidate source against many destinations (and, over their run, the
    /// reverse pair of every participant), so this turns their
    /// O(participants²) point searches into O(participants) batched ones.
    #[default]
    Batched,
}

/// Oracle estimator for overlay link throughput.
pub struct ThroughputOracle<'a> {
    net: &'a mut Network,
    packet_size: u32,
    /// Number of tree flows currently routed over each directed link.
    flows: HashMap<DirectedLinkId, u32>,
    strategy: OracleStrategy,
}

impl<'a> ThroughputOracle<'a> {
    /// Creates an oracle over the given network with the default
    /// ([`OracleStrategy::Batched`]) route acquisition.
    pub fn new(net: &'a mut Network, packet_size: u32) -> Self {
        Self::with_strategy(net, packet_size, OracleStrategy::default())
    }

    /// Creates an oracle with an explicit route-acquisition strategy.
    pub fn with_strategy(net: &'a mut Network, packet_size: u32, strategy: OracleStrategy) -> Self {
        ThroughputOracle {
            net,
            packet_size,
            flows: HashMap::new(),
            strategy,
        }
    }

    /// Batch-computes the routes from `from` to every participant up front
    /// (one one-to-many search), regardless of strategy. Useful when the
    /// caller knows it will evaluate `from` against many destinations but
    /// wants single-target reverse pairs to stay point queries.
    pub fn prefetch_from(&mut self, from: OverlayId) {
        self.net.route_all_from(from);
    }

    fn route(&mut self, from: OverlayId, to: OverlayId) -> Option<bullet_netsim::RouteId> {
        match self.strategy {
            OracleStrategy::Pairwise => self.net.route(from, to),
            OracleStrategy::Batched => self.net.route_batched(from, to),
        }
    }

    /// Estimates the throughput (bits/second) of the overlay link
    /// `from -> to` under the current tree flows, per the paper's §4.1 model:
    /// `min(formula rate, min over links of capacity / (flows + 1))`.
    pub fn estimate_bps(&mut self, from: OverlayId, to: OverlayId) -> Option<f64> {
        let fwd = self.route(from, to)?;
        let rev = self.route(to, from)?;
        let mut loss_survive = 1.0;
        let mut fair_share = f64::INFINITY;
        let mut delay = 0.0;
        for &link_id in self.net.route_links(fwd) {
            let link = self.net.link(link_id);
            loss_survive *= 1.0 - link.loss;
            delay += link.delay.as_secs_f64();
            let flows = *self.flows.get(&link_id).unwrap_or(&0);
            fair_share = fair_share.min(link.bandwidth_bps / (flows + 1) as f64);
        }
        let mut reverse_delay = 0.0;
        for &link_id in self.net.route_links(rev) {
            reverse_delay += self.net.link(link_id).delay.as_secs_f64();
        }
        let rtt = (delay + reverse_delay).max(1e-4);
        let loss = 1.0 - loss_survive;
        let formula = if loss > 0.0 {
            tcp_throughput_bps(self.packet_size as f64, rtt, loss)
        } else {
            f64::INFINITY
        };
        Some(formula.min(fair_share))
    }

    /// Marks the overlay link `from -> to` as carrying one more tree flow.
    pub fn commit_flow(&mut self, from: OverlayId, to: OverlayId) {
        let Some(id) = self.route(from, to) else {
            return;
        };
        for &link_id in self.net.route_links(id) {
            *self.flows.entry(link_id).or_insert(0) += 1;
        }
    }
}

/// Builds the greedy offline bottleneck-bandwidth tree over `participants`
/// overlay nodes rooted at `root`, batching its candidate-evaluation rounds
/// through the network's one-to-many query path.
pub fn bottleneck_tree(
    net: &mut Network,
    participants: usize,
    root: OverlayId,
    config: &OmbtConfig,
) -> Tree {
    bottleneck_tree_with(net, participants, root, config, OracleStrategy::default())
}

/// [`bottleneck_tree`] with an explicit [`OracleStrategy`]. Both strategies
/// build bit-identical trees; `Pairwise` exists as the baseline for the
/// `micro_oracles` benchmark and the equivalence goldens.
pub fn bottleneck_tree_with(
    net: &mut Network,
    participants: usize,
    root: OverlayId,
    config: &OmbtConfig,
    strategy: OracleStrategy,
) -> Tree {
    assert!(participants > 0, "need at least one participant");
    assert!(root < participants, "root out of range");
    let mut oracle = ThroughputOracle::with_strategy(net, config.packet_size, strategy);
    let mut parents: Vec<Option<OverlayId>> = vec![None; participants];
    let mut in_tree = vec![false; participants];
    let mut child_count = vec![0usize; participants];
    in_tree[root] = true;

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    for to in 0..participants {
        if to != root {
            if let Some(bps) = oracle.estimate_bps(root, to) {
                heap.push(Candidate {
                    throughput_bps: bps,
                    from: root,
                    to,
                });
            }
        }
    }

    let mut attached = 1;
    while attached < participants {
        let Some(candidate) = heap.pop() else {
            // Disconnected participants: attach them directly to the root so
            // the result is still a valid tree.
            for (node, parent) in parents.iter_mut().enumerate() {
                if node != root && parent.is_none() {
                    *parent = Some(root);
                }
            }
            break;
        };
        if in_tree[candidate.to] || child_count[candidate.from] >= config.max_children {
            continue;
        }
        // Lazy re-evaluation: the fair shares may have changed since the
        // candidate was pushed. Recompute; if it is no longer competitive,
        // push the refreshed value back instead of accepting it.
        let Some(current) = oracle.estimate_bps(candidate.from, candidate.to) else {
            continue;
        };
        let next_best = heap.peek().map(|c| c.throughput_bps).unwrap_or(0.0);
        if current + 1e-6 < next_best && current + 1e-6 < candidate.throughput_bps {
            heap.push(Candidate {
                throughput_bps: current,
                from: candidate.from,
                to: candidate.to,
            });
            continue;
        }
        // Accept.
        parents[candidate.to] = Some(candidate.from);
        in_tree[candidate.to] = true;
        child_count[candidate.from] += 1;
        oracle.commit_flow(candidate.from, candidate.to);
        attached += 1;
        for to in (0..participants).filter(|&to| !in_tree[to]) {
            if let Some(bps) = oracle.estimate_bps(candidate.to, to) {
                heap.push(Candidate {
                    throughput_bps: bps,
                    from: candidate.to,
                    to,
                });
            }
        }
    }

    Tree::from_parents(parents).expect("greedy construction yields a tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::{LinkSpec, NetworkSpec, SimDuration};

    /// Star of routers around one hub; participant i attaches to router i+1
    /// whose access link bandwidth is `bw[i]`.
    fn star(bw: &[f64]) -> NetworkSpec {
        let mut spec = NetworkSpec::new(bw.len() + 1);
        for (i, &b) in bw.iter().enumerate() {
            spec.add_link(LinkSpec::new(0, i + 1, b, SimDuration::from_millis(10)));
            spec.attach(i + 1);
        }
        spec
    }

    #[test]
    fn prefers_high_bandwidth_interior_nodes() {
        // Participant 0 is the source (fast access). Participant 1 is fast,
        // participant 2 is slow. With max 1 child per node, the tree should
        // chain source -> fast -> slow, never slow -> fast.
        let spec = star(&[10e6, 10e6, 0.5e6]);
        let mut net = Network::new(&spec);
        let config = OmbtConfig {
            packet_size: 1_500,
            max_children: 1,
        };
        let tree = bottleneck_tree(&mut net, 3, 0, &config);
        assert_eq!(tree.parent(1), Some(0));
        assert_eq!(tree.parent(2), Some(1));
    }

    #[test]
    fn respects_the_degree_constraint() {
        let spec = star(&[10e6; 20]);
        let mut net = Network::new(&spec);
        let config = OmbtConfig {
            packet_size: 1_500,
            max_children: 3,
        };
        let tree = bottleneck_tree(&mut net, 20, 0, &config);
        assert!(tree.max_degree() <= 3);
        assert_eq!(tree.subtree_size(0), 20);
    }

    #[test]
    fn oracle_accounts_for_shared_bottlenecks() {
        // All participants share the hub's access links; committing flows on
        // a path must reduce the fair share reported afterwards.
        let spec = star(&[10e6, 10e6, 10e6]);
        let mut net = Network::new(&spec);
        let mut oracle = ThroughputOracle::new(&mut net, 1_500);
        let before = oracle.estimate_bps(0, 1).unwrap();
        oracle.commit_flow(0, 1);
        let after = oracle.estimate_bps(0, 1).unwrap();
        assert!(
            after < before,
            "fair share should shrink: {before} -> {after}"
        );
        assert!((before / after - 2.0).abs() < 0.2);
    }

    #[test]
    fn lossy_paths_are_penalized() {
        let mut spec = NetworkSpec::new(3);
        spec.add_link(LinkSpec::new(0, 1, 10e6, SimDuration::from_millis(10)));
        spec.add_link(LinkSpec::new(0, 2, 10e6, SimDuration::from_millis(10)).with_loss(0.05));
        spec.attach(0);
        spec.attach(1);
        spec.attach(2);
        let mut net = Network::new(&spec);
        let mut oracle = ThroughputOracle::new(&mut net, 1_500);
        let clean = oracle.estimate_bps(0, 1).unwrap();
        let lossy = oracle.estimate_bps(0, 2).unwrap();
        assert!(lossy < clean, "lossy {lossy} should be below clean {clean}");
    }

    #[test]
    fn batched_and_pairwise_strategies_build_the_same_tree() {
        let spec = star(&[10e6, 3e6, 7e6, 1e6, 12e6, 5e6, 2e6, 9e6]);
        let config = OmbtConfig {
            packet_size: 1_500,
            max_children: 2,
        };
        let batched = bottleneck_tree_with(
            &mut Network::new(&spec),
            8,
            0,
            &config,
            OracleStrategy::Batched,
        );
        let pairwise = bottleneck_tree_with(
            &mut Network::new(&spec),
            8,
            0,
            &config,
            OracleStrategy::Pairwise,
        );
        assert_eq!(batched.parents(), pairwise.parents());
    }

    #[test]
    fn batched_estimates_match_pairwise_estimates() {
        let spec = star(&[10e6, 10e6, 4e6]);
        let mut net_a = Network::new(&spec);
        let mut net_b = Network::new(&spec);
        let mut batched =
            ThroughputOracle::with_strategy(&mut net_a, 1_500, OracleStrategy::Batched);
        let mut pairwise =
            ThroughputOracle::with_strategy(&mut net_b, 1_500, OracleStrategy::Pairwise);
        for from in 0..3 {
            for to in 0..3 {
                if from == to {
                    continue;
                }
                assert_eq!(
                    batched.estimate_bps(from, to),
                    pairwise.estimate_bps(from, to),
                    "{from}->{to}"
                );
                batched.commit_flow(from, to);
                pairwise.commit_flow(from, to);
            }
        }
    }

    #[test]
    fn single_participant_tree_is_trivial() {
        let spec = star(&[10e6]);
        let mut net = Network::new(&spec);
        let tree = bottleneck_tree(&mut net, 1, 0, &OmbtConfig::default());
        assert_eq!(tree.len(), 1);
    }
}
