//! # bullet-overlay
//!
//! Overlay tree construction for the Bullet reproduction.
//!
//! Bullet runs over an arbitrary underlying tree; the paper evaluates it over
//! random trees and compares it against streaming over the offline greedy
//! bottleneck-bandwidth tree (§4.1), an Overcast-style online tree (§4.2) and
//! hand-crafted good/worst trees on PlanetLab (§4.7). This crate provides the
//! [`Tree`] representation plus all four constructions:
//!
//! * [`random_tree`] — degree-constrained random attachment,
//! * [`bottleneck_tree`] — the greedy offline OMBT oracle,
//! * [`overcast_tree`] — the online bandwidth-optimizing comparison tree,
//! * [`good_tree`] / [`worst_tree`] — hand-crafted layered trees driven by a
//!   per-node bandwidth metric.

#![warn(missing_docs)]

pub mod handcrafted;
pub mod ombt;
pub mod overcast;
pub mod random_tree;
pub mod tree;

pub use handcrafted::{good_tree, layered_tree, worst_tree};
pub use ombt::{
    bottleneck_tree, bottleneck_tree_with, OmbtConfig, OracleStrategy, ThroughputOracle,
};
pub use overcast::{overcast_tree, overcast_tree_with, OvercastConfig};
pub use random_tree::random_tree;
pub use tree::{Tree, TreeError};
