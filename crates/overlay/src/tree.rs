//! Overlay tree representation.
//!
//! Bullet layers its mesh on top of an arbitrary overlay tree; the tree is
//! used for baseline streaming and for RanSub's collect/distribute phases.
//! This module holds the tree structure itself plus the queries the rest of
//! the system needs (children, depth, subtree sizes, ancestor tests).

use bullet_netsim::OverlayId;

/// Errors produced when constructing a [`Tree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// No node had a `None` parent.
    MissingRoot,
    /// More than one node had a `None` parent.
    MultipleRoots {
        /// The two roots found.
        roots: (OverlayId, OverlayId),
    },
    /// A parent index referred to a node outside the tree.
    ParentOutOfRange {
        /// The offending node.
        node: OverlayId,
        /// Its out-of-range parent index.
        parent: OverlayId,
    },
    /// Following parent pointers from `node` never reached the root.
    Cycle {
        /// A node on the cycle.
        node: OverlayId,
    },
}

/// A rooted overlay tree over participants `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tree {
    parents: Vec<Option<OverlayId>>,
    children: Vec<Vec<OverlayId>>,
    root: OverlayId,
}

impl Tree {
    /// Builds a tree from a parent array (`parents[i]` is `i`'s parent,
    /// `None` for the root). Validates that the result is a single rooted
    /// tree.
    pub fn from_parents(parents: Vec<Option<OverlayId>>) -> Result<Tree, TreeError> {
        let n = parents.len();
        let mut root = None;
        for (node, parent) in parents.iter().enumerate() {
            match parent {
                None => match root {
                    None => root = Some(node),
                    Some(existing) => {
                        return Err(TreeError::MultipleRoots {
                            roots: (existing, node),
                        })
                    }
                },
                Some(p) if *p >= n => return Err(TreeError::ParentOutOfRange { node, parent: *p }),
                Some(_) => {}
            }
        }
        let root = root.ok_or(TreeError::MissingRoot)?;
        let mut children = vec![Vec::new(); n];
        for (node, parent) in parents.iter().enumerate() {
            if let Some(p) = parent {
                children[*p].push(node);
            }
        }
        let tree = Tree {
            parents,
            children,
            root,
        };
        // Cycle/connectivity check: every node must reach the root.
        for node in 0..n {
            let mut cur = node;
            let mut hops = 0;
            while let Some(p) = tree.parents[cur] {
                cur = p;
                hops += 1;
                if hops > n {
                    return Err(TreeError::Cycle { node });
                }
            }
            if cur != root {
                return Err(TreeError::Cycle { node });
            }
        }
        Ok(tree)
    }

    /// Number of participants in the tree.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The root participant.
    pub fn root(&self) -> OverlayId {
        self.root
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: OverlayId) -> Option<OverlayId> {
        self.parents[node]
    }

    /// The children of `node`.
    pub fn children(&self, node: OverlayId) -> &[OverlayId] {
        &self.children[node]
    }

    /// The parent array (useful for serialization and tests).
    pub fn parents(&self) -> &[Option<OverlayId>] {
        &self.parents
    }

    /// Depth of `node` (the root has depth 0).
    pub fn depth(&self, node: OverlayId) -> usize {
        let mut depth = 0;
        let mut cur = node;
        while let Some(p) = self.parents[cur] {
            cur = p;
            depth += 1;
        }
        depth
    }

    /// The maximum depth over all nodes (tree height).
    pub fn height(&self) -> usize {
        (0..self.len()).map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Number of nodes in the subtree rooted at `node` (including itself).
    pub fn subtree_size(&self, node: OverlayId) -> usize {
        let mut count = 0;
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            count += 1;
            stack.extend_from_slice(&self.children[n]);
        }
        count
    }

    /// All nodes in the subtree rooted at `node` (including itself).
    pub fn subtree(&self, node: OverlayId) -> Vec<OverlayId> {
        let mut nodes = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            nodes.push(n);
            stack.extend_from_slice(&self.children[n]);
        }
        nodes
    }

    /// Whether `ancestor` lies on the path from `node` to the root
    /// (a node is considered its own ancestor).
    pub fn is_ancestor(&self, ancestor: OverlayId, node: OverlayId) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n == ancestor {
                return true;
            }
            cur = self.parents[n];
        }
        false
    }

    /// Maximum number of children any node has (the tree's fan-out).
    pub fn max_degree(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean depth over all non-root nodes; a proxy for how "long and skinny"
    /// the tree is (the paper notes its offline bottleneck trees are long and
    /// skinny while Bullet's mesh has much lower effective depth).
    pub fn mean_depth(&self) -> f64 {
        if self.len() <= 1 {
            return 0.0;
        }
        let total: usize = (0..self.len()).map(|n| self.depth(n)).sum();
        total as f64 / (self.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Tree {
        let parents = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        Tree::from_parents(parents).unwrap()
    }

    #[test]
    fn builds_a_simple_tree() {
        let tree = Tree::from_parents(vec![None, Some(0), Some(0), Some(1)]).unwrap();
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.children(0), &[1, 2]);
        assert_eq!(tree.parent(3), Some(1));
        assert_eq!(tree.depth(3), 2);
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn rejects_missing_root() {
        let err = Tree::from_parents(vec![Some(1), Some(0)]).unwrap_err();
        assert!(matches!(
            err,
            TreeError::MissingRoot | TreeError::Cycle { .. }
        ));
    }

    #[test]
    fn rejects_multiple_roots() {
        let err = Tree::from_parents(vec![None, None]).unwrap_err();
        assert!(matches!(err, TreeError::MultipleRoots { .. }));
    }

    #[test]
    fn rejects_out_of_range_parent() {
        let err = Tree::from_parents(vec![None, Some(9)]).unwrap_err();
        assert_eq!(err, TreeError::ParentOutOfRange { node: 1, parent: 9 });
    }

    #[test]
    fn rejects_cycles() {
        let err = Tree::from_parents(vec![None, Some(2), Some(1)]).unwrap_err();
        assert!(matches!(err, TreeError::Cycle { .. }));
    }

    #[test]
    fn subtree_queries() {
        let tree = Tree::from_parents(vec![None, Some(0), Some(0), Some(1), Some(1)]).unwrap();
        assert_eq!(tree.subtree_size(1), 3);
        assert_eq!(tree.subtree_size(2), 1);
        let mut sub = tree.subtree(1);
        sub.sort_unstable();
        assert_eq!(sub, vec![1, 3, 4]);
        assert!(tree.is_ancestor(0, 4));
        assert!(tree.is_ancestor(1, 4));
        assert!(!tree.is_ancestor(2, 4));
        assert!(tree.is_ancestor(4, 4));
    }

    #[test]
    fn chain_metrics() {
        let tree = chain(10);
        assert_eq!(tree.height(), 9);
        assert_eq!(tree.max_degree(), 1);
        assert!((tree.mean_depth() - 5.0).abs() < 1e-9);
    }
}
