//! The RanSub collect/distribute protocol (paper §2.2, Fig. 2).
//!
//! Once per epoch the root initiates a *distribute* phase: every node sends
//! each child a fixed-size, uniformly random subset of the nodes **outside**
//! that child's subtree (the RanSub-nondescendants option), built by
//! compacting its own distribute set, its own state, and the collect sets its
//! other children supplied in the previous epoch. When the distribute wave
//! reaches the leaves, a *collect* phase flows back up: each node sends its
//! parent a compacted random subset of its subtree along with the subtree's
//! size. The root starts the next epoch when all collect sets have returned,
//! or — when failure detection is enabled — when the epoch timeout expires.
//!
//! The struct below is a pure state machine: the embedding protocol (Bullet)
//! forwards messages to it and sends whatever it returns.

use std::collections::HashMap;

use bullet_netsim::{OverlayId, SimRng};

use crate::compact::{compact, Member, WeightedSet};

/// Configuration for one RanSub instance.
#[derive(Clone, Copy, Debug)]
pub struct RanSubConfig {
    /// Number of members carried in each collect/distribute set
    /// (paper default: 10, so a set fits in one IP packet).
    pub set_size: usize,
    /// Whether the root may start a new epoch before all collect sets have
    /// returned (the failure-detection mode of §4.6).
    pub failure_detection: bool,
}

impl Default for RanSubConfig {
    fn default() -> Self {
        RanSubConfig {
            set_size: 10,
            failure_detection: true,
        }
    }
}

/// A RanSub wire message.
#[derive(Clone, Debug, PartialEq)]
pub enum RanSubMsg<T> {
    /// Sent from parent to child during the distribute phase.
    Distribute {
        /// Epoch number.
        epoch: u64,
        /// Random subset of the child's non-descendants.
        set: WeightedSet<T>,
    },
    /// Sent from child to parent during the collect phase.
    Collect {
        /// Epoch number.
        epoch: u64,
        /// Random subset representing the child's subtree, with its size.
        set: WeightedSet<T>,
    },
}

/// What the state machine wants done after handling an input.
#[derive(Clone, Debug, PartialEq)]
pub enum RanSubEvent<T> {
    /// Transmit `msg` to overlay participant `to`.
    Send {
        /// Destination.
        to: OverlayId,
        /// Message to transmit.
        msg: RanSubMsg<T>,
    },
    /// A fresh random subset arrived for this node; hand it to the
    /// application (Bullet uses it to look for new peers).
    Deliver {
        /// Epoch the subset belongs to.
        epoch: u64,
        /// The subset members (never includes this node itself).
        members: Vec<Member<T>>,
    },
}

/// The per-node RanSub state machine.
#[derive(Clone, Debug)]
pub struct RanSub<T> {
    config: RanSubConfig,
    me: OverlayId,
    parent: Option<OverlayId>,
    children: Vec<OverlayId>,
    state: T,
    current_epoch: u64,
    /// The distribute set received from the parent in the current epoch.
    my_distribute: Option<WeightedSet<T>>,
    /// Collect sets received from children in the current epoch.
    collects: HashMap<OverlayId, WeightedSet<T>>,
    /// Collect sets from the most recently completed collect phase; used to
    /// build the next epoch's distribute sets and to answer descendant-count
    /// queries.
    prev_collects: HashMap<OverlayId, WeightedSet<T>>,
    collect_sent: bool,
    /// Root only: whether the current epoch's collect phase finished.
    epoch_complete: bool,
    /// Number of epochs the root skipped because collects were missing and
    /// failure detection was disabled.
    pub stalled_epochs: u64,
}

impl<T: Clone> RanSub<T> {
    /// Creates a RanSub instance for one node of the tree.
    pub fn new(
        config: RanSubConfig,
        me: OverlayId,
        parent: Option<OverlayId>,
        children: Vec<OverlayId>,
        initial_state: T,
    ) -> Self {
        RanSub {
            config,
            me,
            parent,
            children,
            state: initial_state,
            current_epoch: 0,
            my_distribute: None,
            collects: HashMap::new(),
            prev_collects: HashMap::new(),
            collect_sent: false,
            epoch_complete: true,
            stalled_epochs: 0,
        }
    }

    /// Updates the state snapshot (e.g. the node's current summary ticket)
    /// carried in future collect/distribute sets.
    pub fn set_state(&mut self, state: T) {
        self.state = state;
    }

    /// Whether this node is the tree root.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// The node's children in the underlying tree.
    pub fn children(&self) -> &[OverlayId] {
        &self.children
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Number of descendants of `child` (the population its last collect set
    /// represented), if a collect has been seen from it.
    pub fn descendants_of(&self, child: OverlayId) -> Option<u64> {
        self.collects
            .get(&child)
            .or_else(|| self.prev_collects.get(&child))
            .map(|s| s.population)
    }

    /// Size of the subtree rooted at this node, as of the last collect phase
    /// it participated in (including the node itself).
    pub fn subtree_size(&self) -> u64 {
        1 + self
            .children
            .iter()
            .filter_map(|&c| self.descendants_of(c))
            .sum::<u64>()
    }

    /// Membership repair: a child departed (crash or graceful leave).
    ///
    /// The child is removed from the tree view and *both* collect
    /// generations are pruned, so its stale subtree can no longer be
    /// double-counted in descendant queries or compacted into future
    /// distribute sets from this node. If the departed child was the only
    /// collect still outstanding this epoch, the collect phase completes:
    /// a non-root node emits its collect-up message, the root marks the
    /// epoch complete (so the next epoch starts on time even without
    /// failure detection).
    pub fn remove_child(&mut self, child: OverlayId) -> Vec<RanSubEvent<T>> {
        let before = self.children.len();
        self.children.retain(|&c| c != child);
        self.collects.remove(&child);
        self.prev_collects.remove(&child);
        if before == self.children.len() {
            return Vec::new();
        }
        // Vacuously true for a node left childless: it behaves like a leaf.
        let all_in = self.children.iter().all(|c| self.collects.contains_key(c));
        if !all_in {
            return Vec::new();
        }
        if self.is_root() {
            self.epoch_complete = true;
            Vec::new()
        } else {
            self.send_collect_up()
        }
    }

    /// Membership repair: adopt `child` (e.g. a grandchild handed over by a
    /// gracefully leaving node). No collect state exists for it yet, so
    /// descendant queries answer `None` until its first collect arrives.
    pub fn add_child(&mut self, child: OverlayId) {
        if child != self.me && !self.children.contains(&child) {
            self.children.push(child);
        }
    }

    /// Membership repair: the node was handed to a new parent (or became
    /// detached). Collect messages flow to the new parent from the next
    /// phase on.
    pub fn set_parent(&mut self, parent: Option<OverlayId>) {
        self.parent = parent;
    }

    /// Root only: starts a new epoch. Returns the distribute messages to
    /// send, or an empty vector if the previous epoch has not completed and
    /// failure detection is disabled (RanSub stalls, §4.6).
    pub fn start_epoch(&mut self, rng: &mut SimRng) -> Vec<RanSubEvent<T>> {
        assert!(self.is_root(), "only the root starts epochs");
        if !self.epoch_complete && !self.config.failure_detection {
            self.stalled_epochs += 1;
            return Vec::new();
        }
        // Freeze the last collect round for use in this distribute phase.
        if !self.collects.is_empty() {
            self.prev_collects = std::mem::take(&mut self.collects);
        } else {
            self.collects.clear();
        }
        self.current_epoch += 1;
        self.epoch_complete = self.children.is_empty();
        self.collect_sent = false;
        self.my_distribute = None;
        self.distribute_to_children(rng)
    }

    /// Handles an incoming RanSub message from `from`.
    pub fn on_message(
        &mut self,
        from: OverlayId,
        msg: RanSubMsg<T>,
        rng: &mut SimRng,
    ) -> Vec<RanSubEvent<T>> {
        match msg {
            RanSubMsg::Distribute { epoch, set } => self.on_distribute(from, epoch, set, rng),
            RanSubMsg::Collect { epoch, set } => self.on_collect(from, epoch, set, rng),
        }
    }

    fn on_distribute(
        &mut self,
        from: OverlayId,
        epoch: u64,
        set: WeightedSet<T>,
        rng: &mut SimRng,
    ) -> Vec<RanSubEvent<T>> {
        if Some(from) != self.parent || epoch < self.current_epoch {
            return Vec::new();
        }
        // Entering a new epoch: roll the collect state forward.
        if epoch > self.current_epoch {
            if !self.collects.is_empty() {
                self.prev_collects = std::mem::take(&mut self.collects);
            }
            self.current_epoch = epoch;
            self.collect_sent = false;
        }
        self.my_distribute = Some(set.clone());
        let mut events = Vec::new();
        let members: Vec<Member<T>> = set
            .members
            .iter()
            .filter(|m| m.node != self.me)
            .cloned()
            .collect();
        if !members.is_empty() {
            events.push(RanSubEvent::Deliver { epoch, members });
        }
        events.extend(self.distribute_to_children(rng));
        // Leaves answer immediately with their collect set.
        if self.children.is_empty() {
            events.extend(self.send_collect_up());
        }
        events
    }

    fn on_collect(
        &mut self,
        from: OverlayId,
        epoch: u64,
        set: WeightedSet<T>,
        rng: &mut SimRng,
    ) -> Vec<RanSubEvent<T>> {
        let _ = rng;
        if epoch != self.current_epoch || !self.children.contains(&from) {
            return Vec::new();
        }
        self.collects.insert(from, set);
        let all_in = self.children.iter().all(|c| self.collects.contains_key(c));
        if !all_in {
            return Vec::new();
        }
        if self.is_root() {
            self.epoch_complete = true;
            Vec::new()
        } else {
            self.send_collect_up()
        }
    }

    /// Builds and emits this epoch's distribute messages for every child.
    fn distribute_to_children(&mut self, rng: &mut SimRng) -> Vec<RanSubEvent<T>> {
        let children = self.children.clone();
        let mut events = Vec::with_capacity(children.len());
        for &child in &children {
            // RanSub-nondescendants: everything except the child's subtree.
            let mut inputs: Vec<WeightedSet<T>> = Vec::new();
            if let Some(ds) = &self.my_distribute {
                inputs.push(ds.clone());
            }
            inputs.push(WeightedSet::singleton(self.me, self.state.clone()));
            for &sibling in &children {
                if sibling == child {
                    continue;
                }
                if let Some(cs) = self.prev_collects.get(&sibling) {
                    inputs.push(cs.clone());
                }
            }
            let set = compact(&inputs, self.config.set_size, rng);
            events.push(RanSubEvent::Send {
                to: child,
                msg: RanSubMsg::Distribute {
                    epoch: self.current_epoch,
                    set,
                },
            });
        }
        events
    }

    /// Builds this node's collect set from its own state plus its children's
    /// collect sets and sends it to the parent.
    fn send_collect_up(&mut self) -> Vec<RanSubEvent<T>> {
        let Some(parent) = self.parent else {
            return Vec::new();
        };
        if self.collect_sent {
            return Vec::new();
        }
        self.collect_sent = true;
        let mut inputs: Vec<WeightedSet<T>> =
            vec![WeightedSet::singleton(self.me, self.state.clone())];
        for &child in &self.children {
            if let Some(cs) = self.collects.get(&child) {
                inputs.push(cs.clone());
            }
        }
        // Use a cheap deterministic mix for the sampling inside the collect
        // compaction; the embedding protocol supplies real randomness on the
        // distribute path where uniformity matters most.
        let mut rng = SimRng::new(self.me as u64 ^ (self.current_epoch << 20));
        let set = compact(&inputs, self.config.set_size, &mut rng);
        vec![RanSubEvent::Send {
            to: parent,
            msg: RanSubMsg::Collect {
                epoch: self.current_epoch,
                set,
            },
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a full RanSub epoch over an in-memory tree (no network), with
    /// every node's state being its own id.
    struct Harness {
        nodes: Vec<RanSub<usize>>,
        rng: SimRng,
    }

    impl Harness {
        /// `parents[i]` is the parent of node `i` (`None` for the root).
        fn new(parents: &[Option<usize>], config: RanSubConfig) -> Self {
            let n = parents.len();
            let mut children = vec![Vec::new(); n];
            for (node, parent) in parents.iter().enumerate() {
                if let Some(p) = parent {
                    children[*p].push(node);
                }
            }
            let nodes = (0..n)
                .map(|i| RanSub::new(config, i, parents[i], children[i].clone(), i))
                .collect();
            Harness {
                nodes,
                rng: SimRng::new(7),
            }
        }

        /// Runs one epoch to completion; returns the sets delivered per node.
        fn run_epoch(&mut self, root: usize) -> Vec<Vec<usize>> {
            let mut delivered = vec![Vec::new(); self.nodes.len()];
            let mut queue: Vec<(usize, usize, RanSubMsg<usize>)> = Vec::new();
            for ev in self.nodes[root].start_epoch(&mut self.rng) {
                match ev {
                    RanSubEvent::Send { to, msg } => queue.push((root, to, msg)),
                    RanSubEvent::Deliver { .. } => {}
                }
            }
            while let Some((from, to, msg)) = queue.pop() {
                for ev in self.nodes[to].on_message(from, msg, &mut self.rng) {
                    match ev {
                        RanSubEvent::Send { to: next, msg } => queue.push((to, next, msg)),
                        RanSubEvent::Deliver { members, .. } => {
                            delivered[to].extend(members.iter().map(|m| m.node));
                        }
                    }
                }
            }
            delivered
        }
    }

    /// A three-level tree: 0 is the root, 1 and 2 its children, 3..7 leaves.
    fn seven_node_parents() -> Vec<Option<usize>> {
        vec![None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]
    }

    #[test]
    fn first_epoch_delivers_ancestors_only() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        let delivered = h.run_epoch(0);
        // In epoch 1 no collect info exists yet, so children see only the
        // root's state and grandchildren see the root and their parent.
        assert!(delivered[1].contains(&0));
        assert!(delivered[3].contains(&0));
        assert!(delivered[3].contains(&1));
        assert!(!delivered[3].contains(&3), "a node never receives itself");
    }

    #[test]
    fn second_epoch_excludes_descendants() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        let delivered = h.run_epoch(0);
        // Node 1's distribute set must exclude its own subtree {1, 3, 4} but
        // should include nodes from the sibling subtree.
        assert!(!delivered[1].contains(&1));
        assert!(!delivered[1].contains(&3));
        assert!(!delivered[1].contains(&4));
        assert!(
            delivered[1].iter().any(|n| [2, 5, 6].contains(n)),
            "expected some non-descendant, got {:?}",
            delivered[1]
        );
        // Leaves should now see members of other subtrees too.
        assert!(
            delivered[3].iter().any(|n| [2, 5, 6].contains(n)),
            "leaf 3 saw {:?}",
            delivered[3]
        );
    }

    #[test]
    fn descendant_counts_reach_the_root() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        assert_eq!(h.nodes[0].descendants_of(1), Some(3));
        assert_eq!(h.nodes[0].descendants_of(2), Some(3));
        assert_eq!(h.nodes[0].subtree_size(), 7);
        assert_eq!(h.nodes[1].descendants_of(3), Some(1));
    }

    #[test]
    fn set_size_is_respected() {
        // A wide tree: root with 30 leaf children; set size 10.
        let mut parents = vec![None];
        for _ in 0..30 {
            parents.push(Some(0));
        }
        let mut h = Harness::new(&parents, RanSubConfig::default());
        h.run_epoch(0);
        let delivered = h.run_epoch(0);
        for sets in delivered.iter().skip(1) {
            assert!(sets.len() <= 10, "delivered {} members", sets.len());
        }
    }

    #[test]
    fn stalls_without_failure_detection_when_a_collect_is_missing() {
        let config = RanSubConfig {
            set_size: 10,
            failure_detection: false,
        };
        let parents = seven_node_parents();
        let mut h = Harness::new(&parents, config);
        h.run_epoch(0);
        // Simulate node 1 failing: drop its collect by replacing it with a
        // node that never responds. Here we simply mark epoch incomplete by
        // starting an epoch and never delivering node 1's messages.
        let events = h.nodes[0].start_epoch(&mut h.rng);
        assert!(!events.is_empty());
        // Root now waits for collects that never arrive; the next start is
        // refused.
        let events = h.nodes[0].start_epoch(&mut h.rng);
        assert!(events.is_empty());
        assert_eq!(h.nodes[0].stalled_epochs, 1);
    }

    #[test]
    fn proceeds_with_failure_detection_when_a_collect_is_missing() {
        let config = RanSubConfig {
            set_size: 10,
            failure_detection: true,
        };
        let mut h = Harness::new(&seven_node_parents(), config);
        h.run_epoch(0);
        let _ = h.nodes[0].start_epoch(&mut h.rng);
        // Even though no collect returned (we never delivered messages), the
        // root may start the next epoch.
        let events = h.nodes[0].start_epoch(&mut h.rng);
        assert!(!events.is_empty());
        assert_eq!(h.nodes[0].stalled_epochs, 0);
    }

    #[test]
    fn epochs_are_numbered_monotonically() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        assert_eq!(h.nodes[0].epoch(), 1);
        h.run_epoch(0);
        assert_eq!(h.nodes[0].epoch(), 2);
        assert_eq!(h.nodes[6].epoch(), 2);
    }

    #[test]
    fn departed_child_is_pruned_from_both_collect_generations() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        h.run_epoch(0);
        assert_eq!(h.nodes[0].subtree_size(), 7);
        // Child 1 (subtree {1, 3, 4}) departs.
        let events = h.nodes[0].remove_child(1);
        assert!(events.is_empty(), "root emits nothing on repair");
        assert_eq!(h.nodes[0].descendants_of(1), None, "stale counts pruned");
        assert_eq!(h.nodes[0].subtree_size(), 4, "no double-count after repair");
        assert_eq!(h.nodes[0].children(), &[2]);
        // The next epochs run cleanly over the remaining tree and the
        // departed subtree no longer reaches anyone's distribute sets.
        h.run_epoch(0);
        let delivered = h.run_epoch(0);
        for (node, sets) in delivered.iter().enumerate() {
            if [0, 2, 5, 6].contains(&node) {
                for member in sets {
                    assert!(
                        ![1, 3, 4].contains(member),
                        "node {node} still sees departed subtree member {member}"
                    );
                }
            }
        }
    }

    #[test]
    fn mid_epoch_departure_completes_the_collect_phase() {
        // Root with children 1 and 2; child 2's collect arrives, child 1
        // departs before answering. Without failure detection the root
        // would stall forever; repair must complete the epoch instead.
        let config = RanSubConfig {
            set_size: 10,
            failure_detection: false,
        };
        let parents = vec![None, Some(0), Some(0)];
        let mut h = Harness::new(&parents, config);
        h.run_epoch(0);
        // Start an epoch manually and deliver only child 2's messages.
        let events = h.nodes[0].start_epoch(&mut h.rng);
        let to_child2: Vec<RanSubMsg<usize>> = events
            .iter()
            .filter_map(|e| match e {
                RanSubEvent::Send { to: 2, msg } => Some(msg.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(to_child2.len(), 1);
        for msg in to_child2 {
            for ev in h.nodes[2].on_message(0, msg, &mut h.rng) {
                if let RanSubEvent::Send { to: 0, msg } = ev {
                    h.nodes[0].on_message(2, msg, &mut h.rng);
                }
            }
        }
        // Child 1 never answered; the root refuses to start the next epoch.
        assert!(h.nodes[0].start_epoch(&mut h.rng).is_empty());
        assert_eq!(h.nodes[0].stalled_epochs, 1);
        // Repair: removing the dead child completes the collect phase.
        assert!(h.nodes[0].remove_child(1).is_empty());
        let events = h.nodes[0].start_epoch(&mut h.rng);
        assert!(!events.is_empty(), "epoch must start after repair");
        assert_eq!(h.nodes[0].subtree_size(), 2);
    }

    #[test]
    fn interior_node_departure_triggers_collect_up() {
        // Node 1 (children 3 and 4): 3's collect is in, 4 departs. The
        // repair must emit node 1's own collect to the root, with node 4's
        // subtree excluded from the population count.
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        let events = h.nodes[0].start_epoch(&mut h.rng);
        // Deliver the distribute wave to node 1 only (not its children), so
        // node 1 sits mid-epoch waiting for collects.
        for ev in events {
            if let RanSubEvent::Send { to: 1, msg } = ev {
                h.nodes[1].on_message(0, msg, &mut h.rng);
            }
        }
        // Child 3 answers; child 4 never does.
        let collect3 = RanSubMsg::Collect {
            epoch: h.nodes[1].epoch(),
            set: WeightedSet::singleton(3, 3usize),
        };
        assert!(h.nodes[1].on_message(3, collect3, &mut h.rng).is_empty());
        let events = h.nodes[1].remove_child(4);
        match events.as_slice() {
            [RanSubEvent::Send {
                to: 0,
                msg: RanSubMsg::Collect { set, .. },
            }] => {
                assert_eq!(set.population, 2, "population is self + child 3 only");
                assert!(
                    set.members.iter().all(|m| m.node != 4),
                    "departed child leaked into the collect set"
                );
            }
            other => panic!("expected a collect-up, got {other:?}"),
        }
    }

    #[test]
    fn adopted_children_join_the_tree_view() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        // Node 1 leaves gracefully: the root adopts its children 3 and 4.
        h.nodes[0].remove_child(1);
        h.nodes[0].add_child(3);
        h.nodes[0].add_child(4);
        h.nodes[0].add_child(4); // idempotent
        h.nodes[3].set_parent(Some(0));
        h.nodes[4].set_parent(Some(0));
        assert_eq!(h.nodes[0].children(), &[2, 3, 4]);
        // A full epoch over the repaired tree restores the counts.
        h.run_epoch(0);
        assert_eq!(h.nodes[0].subtree_size(), 6, "everyone but the leaver");
        assert_eq!(h.nodes[0].descendants_of(3), Some(1));
    }

    #[test]
    fn stale_messages_are_ignored() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        h.run_epoch(0);
        // Replay an epoch-1 distribute to node 1: it must be ignored.
        let stale = RanSubMsg::Distribute {
            epoch: 1,
            set: WeightedSet::singleton(0, 0usize),
        };
        let events = h.nodes[1].on_message(0, stale, &mut h.rng);
        assert!(events.is_empty());
    }
}
