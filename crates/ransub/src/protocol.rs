//! The RanSub collect/distribute protocol (paper §2.2, Fig. 2).
//!
//! Once per epoch the root initiates a *distribute* phase: every node sends
//! each child a fixed-size, uniformly random subset of the nodes **outside**
//! that child's subtree (the RanSub-nondescendants option), built by
//! compacting its own distribute set, its own state, and the collect sets its
//! other children supplied in the previous epoch. When the distribute wave
//! reaches the leaves, a *collect* phase flows back up: each node sends its
//! parent a compacted random subset of its subtree along with the subtree's
//! size. The root starts the next epoch when all collect sets have returned,
//! or — when failure detection is enabled — when the epoch timeout expires.
//!
//! The struct below is a pure state machine: the embedding protocol (Bullet)
//! forwards messages to it and sends whatever it returns.

use std::collections::HashMap;

use bullet_netsim::{OverlayId, SimRng};

use crate::compact::{compact, Member, WeightedSet};

/// Configuration for one RanSub instance.
#[derive(Clone, Copy, Debug)]
pub struct RanSubConfig {
    /// Number of members carried in each collect/distribute set
    /// (paper default: 10, so a set fits in one IP packet).
    pub set_size: usize,
    /// Whether the root may start a new epoch before all collect sets have
    /// returned (the failure-detection mode of §4.6).
    pub failure_detection: bool,
}

impl Default for RanSubConfig {
    fn default() -> Self {
        RanSubConfig {
            set_size: 10,
            failure_detection: true,
        }
    }
}

/// A RanSub wire message.
#[derive(Clone, Debug, PartialEq)]
pub enum RanSubMsg<T> {
    /// Sent from parent to child during the distribute phase.
    Distribute {
        /// Epoch number.
        epoch: u64,
        /// Random subset of the child's non-descendants.
        set: WeightedSet<T>,
    },
    /// Sent from child to parent during the collect phase.
    Collect {
        /// Epoch number.
        epoch: u64,
        /// Random subset representing the child's subtree, with its size.
        set: WeightedSet<T>,
    },
}

/// What the state machine wants done after handling an input.
#[derive(Clone, Debug, PartialEq)]
pub enum RanSubEvent<T> {
    /// Transmit `msg` to overlay participant `to`.
    Send {
        /// Destination.
        to: OverlayId,
        /// Message to transmit.
        msg: RanSubMsg<T>,
    },
    /// A fresh random subset arrived for this node; hand it to the
    /// application (Bullet uses it to look for new peers).
    Deliver {
        /// Epoch the subset belongs to.
        epoch: u64,
        /// The subset members (never includes this node itself).
        members: Vec<Member<T>>,
    },
}

/// The per-node RanSub state machine.
#[derive(Clone, Debug)]
pub struct RanSub<T> {
    config: RanSubConfig,
    me: OverlayId,
    parent: Option<OverlayId>,
    children: Vec<OverlayId>,
    state: T,
    current_epoch: u64,
    /// The distribute set received from the parent in the current epoch.
    my_distribute: Option<WeightedSet<T>>,
    /// Collect sets received from children in the current epoch.
    collects: HashMap<OverlayId, WeightedSet<T>>,
    /// Collect sets from the most recently completed collect phase; used to
    /// build the next epoch's distribute sets and to answer descendant-count
    /// queries.
    prev_collects: HashMap<OverlayId, WeightedSet<T>>,
    collect_sent: bool,
    /// Root only: whether the current epoch's collect phase finished.
    epoch_complete: bool,
    /// Number of epochs the root skipped because collects were missing and
    /// failure detection was disabled.
    pub stalled_epochs: u64,
}

impl<T: Clone> RanSub<T> {
    /// Creates a RanSub instance for one node of the tree.
    pub fn new(
        config: RanSubConfig,
        me: OverlayId,
        parent: Option<OverlayId>,
        children: Vec<OverlayId>,
        initial_state: T,
    ) -> Self {
        RanSub {
            config,
            me,
            parent,
            children,
            state: initial_state,
            current_epoch: 0,
            my_distribute: None,
            collects: HashMap::new(),
            prev_collects: HashMap::new(),
            collect_sent: false,
            epoch_complete: true,
            stalled_epochs: 0,
        }
    }

    /// Updates the state snapshot (e.g. the node's current summary ticket)
    /// carried in future collect/distribute sets.
    pub fn set_state(&mut self, state: T) {
        self.state = state;
    }

    /// Whether this node is the tree root.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// The node's children in the underlying tree.
    pub fn children(&self) -> &[OverlayId] {
        &self.children
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Number of descendants of `child` (the population its last collect set
    /// represented), if a collect has been seen from it.
    pub fn descendants_of(&self, child: OverlayId) -> Option<u64> {
        self.collects
            .get(&child)
            .or_else(|| self.prev_collects.get(&child))
            .map(|s| s.population)
    }

    /// Size of the subtree rooted at this node, as of the last collect phase
    /// it participated in (including the node itself).
    pub fn subtree_size(&self) -> u64 {
        1 + self
            .children
            .iter()
            .filter_map(|&c| self.descendants_of(c))
            .sum::<u64>()
    }

    /// Root only: starts a new epoch. Returns the distribute messages to
    /// send, or an empty vector if the previous epoch has not completed and
    /// failure detection is disabled (RanSub stalls, §4.6).
    pub fn start_epoch(&mut self, rng: &mut SimRng) -> Vec<RanSubEvent<T>> {
        assert!(self.is_root(), "only the root starts epochs");
        if !self.epoch_complete && !self.config.failure_detection {
            self.stalled_epochs += 1;
            return Vec::new();
        }
        // Freeze the last collect round for use in this distribute phase.
        if !self.collects.is_empty() {
            self.prev_collects = std::mem::take(&mut self.collects);
        } else {
            self.collects.clear();
        }
        self.current_epoch += 1;
        self.epoch_complete = self.children.is_empty();
        self.collect_sent = false;
        self.my_distribute = None;
        self.distribute_to_children(rng)
    }

    /// Handles an incoming RanSub message from `from`.
    pub fn on_message(
        &mut self,
        from: OverlayId,
        msg: RanSubMsg<T>,
        rng: &mut SimRng,
    ) -> Vec<RanSubEvent<T>> {
        match msg {
            RanSubMsg::Distribute { epoch, set } => self.on_distribute(from, epoch, set, rng),
            RanSubMsg::Collect { epoch, set } => self.on_collect(from, epoch, set, rng),
        }
    }

    fn on_distribute(
        &mut self,
        from: OverlayId,
        epoch: u64,
        set: WeightedSet<T>,
        rng: &mut SimRng,
    ) -> Vec<RanSubEvent<T>> {
        if Some(from) != self.parent || epoch < self.current_epoch {
            return Vec::new();
        }
        // Entering a new epoch: roll the collect state forward.
        if epoch > self.current_epoch {
            if !self.collects.is_empty() {
                self.prev_collects = std::mem::take(&mut self.collects);
            }
            self.current_epoch = epoch;
            self.collect_sent = false;
        }
        self.my_distribute = Some(set.clone());
        let mut events = Vec::new();
        let members: Vec<Member<T>> = set
            .members
            .iter()
            .filter(|m| m.node != self.me)
            .cloned()
            .collect();
        if !members.is_empty() {
            events.push(RanSubEvent::Deliver { epoch, members });
        }
        events.extend(self.distribute_to_children(rng));
        // Leaves answer immediately with their collect set.
        if self.children.is_empty() {
            events.extend(self.send_collect_up());
        }
        events
    }

    fn on_collect(
        &mut self,
        from: OverlayId,
        epoch: u64,
        set: WeightedSet<T>,
        rng: &mut SimRng,
    ) -> Vec<RanSubEvent<T>> {
        let _ = rng;
        if epoch != self.current_epoch || !self.children.contains(&from) {
            return Vec::new();
        }
        self.collects.insert(from, set);
        let all_in = self.children.iter().all(|c| self.collects.contains_key(c));
        if !all_in {
            return Vec::new();
        }
        if self.is_root() {
            self.epoch_complete = true;
            Vec::new()
        } else {
            self.send_collect_up()
        }
    }

    /// Builds and emits this epoch's distribute messages for every child.
    fn distribute_to_children(&mut self, rng: &mut SimRng) -> Vec<RanSubEvent<T>> {
        let children = self.children.clone();
        let mut events = Vec::with_capacity(children.len());
        for &child in &children {
            // RanSub-nondescendants: everything except the child's subtree.
            let mut inputs: Vec<WeightedSet<T>> = Vec::new();
            if let Some(ds) = &self.my_distribute {
                inputs.push(ds.clone());
            }
            inputs.push(WeightedSet::singleton(self.me, self.state.clone()));
            for &sibling in &children {
                if sibling == child {
                    continue;
                }
                if let Some(cs) = self.prev_collects.get(&sibling) {
                    inputs.push(cs.clone());
                }
            }
            let set = compact(&inputs, self.config.set_size, rng);
            events.push(RanSubEvent::Send {
                to: child,
                msg: RanSubMsg::Distribute {
                    epoch: self.current_epoch,
                    set,
                },
            });
        }
        events
    }

    /// Builds this node's collect set from its own state plus its children's
    /// collect sets and sends it to the parent.
    fn send_collect_up(&mut self) -> Vec<RanSubEvent<T>> {
        let Some(parent) = self.parent else {
            return Vec::new();
        };
        if self.collect_sent {
            return Vec::new();
        }
        self.collect_sent = true;
        let mut inputs: Vec<WeightedSet<T>> =
            vec![WeightedSet::singleton(self.me, self.state.clone())];
        for &child in &self.children {
            if let Some(cs) = self.collects.get(&child) {
                inputs.push(cs.clone());
            }
        }
        // Use a cheap deterministic mix for the sampling inside the collect
        // compaction; the embedding protocol supplies real randomness on the
        // distribute path where uniformity matters most.
        let mut rng = SimRng::new(self.me as u64 ^ (self.current_epoch << 20));
        let set = compact(&inputs, self.config.set_size, &mut rng);
        vec![RanSubEvent::Send {
            to: parent,
            msg: RanSubMsg::Collect {
                epoch: self.current_epoch,
                set,
            },
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a full RanSub epoch over an in-memory tree (no network), with
    /// every node's state being its own id.
    struct Harness {
        nodes: Vec<RanSub<usize>>,
        rng: SimRng,
    }

    impl Harness {
        /// `parents[i]` is the parent of node `i` (`None` for the root).
        fn new(parents: &[Option<usize>], config: RanSubConfig) -> Self {
            let n = parents.len();
            let mut children = vec![Vec::new(); n];
            for (node, parent) in parents.iter().enumerate() {
                if let Some(p) = parent {
                    children[*p].push(node);
                }
            }
            let nodes = (0..n)
                .map(|i| RanSub::new(config, i, parents[i], children[i].clone(), i))
                .collect();
            Harness {
                nodes,
                rng: SimRng::new(7),
            }
        }

        /// Runs one epoch to completion; returns the sets delivered per node.
        fn run_epoch(&mut self, root: usize) -> Vec<Vec<usize>> {
            let mut delivered = vec![Vec::new(); self.nodes.len()];
            let mut queue: Vec<(usize, usize, RanSubMsg<usize>)> = Vec::new();
            for ev in self.nodes[root].start_epoch(&mut self.rng) {
                match ev {
                    RanSubEvent::Send { to, msg } => queue.push((root, to, msg)),
                    RanSubEvent::Deliver { .. } => {}
                }
            }
            while let Some((from, to, msg)) = queue.pop() {
                for ev in self.nodes[to].on_message(from, msg, &mut self.rng) {
                    match ev {
                        RanSubEvent::Send { to: next, msg } => queue.push((to, next, msg)),
                        RanSubEvent::Deliver { members, .. } => {
                            delivered[to].extend(members.iter().map(|m| m.node));
                        }
                    }
                }
            }
            delivered
        }
    }

    /// A three-level tree: 0 is the root, 1 and 2 its children, 3..7 leaves.
    fn seven_node_parents() -> Vec<Option<usize>> {
        vec![None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]
    }

    #[test]
    fn first_epoch_delivers_ancestors_only() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        let delivered = h.run_epoch(0);
        // In epoch 1 no collect info exists yet, so children see only the
        // root's state and grandchildren see the root and their parent.
        assert!(delivered[1].contains(&0));
        assert!(delivered[3].contains(&0));
        assert!(delivered[3].contains(&1));
        assert!(!delivered[3].contains(&3), "a node never receives itself");
    }

    #[test]
    fn second_epoch_excludes_descendants() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        let delivered = h.run_epoch(0);
        // Node 1's distribute set must exclude its own subtree {1, 3, 4} but
        // should include nodes from the sibling subtree.
        assert!(!delivered[1].contains(&1));
        assert!(!delivered[1].contains(&3));
        assert!(!delivered[1].contains(&4));
        assert!(
            delivered[1].iter().any(|n| [2, 5, 6].contains(n)),
            "expected some non-descendant, got {:?}",
            delivered[1]
        );
        // Leaves should now see members of other subtrees too.
        assert!(
            delivered[3].iter().any(|n| [2, 5, 6].contains(n)),
            "leaf 3 saw {:?}",
            delivered[3]
        );
    }

    #[test]
    fn descendant_counts_reach_the_root() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        assert_eq!(h.nodes[0].descendants_of(1), Some(3));
        assert_eq!(h.nodes[0].descendants_of(2), Some(3));
        assert_eq!(h.nodes[0].subtree_size(), 7);
        assert_eq!(h.nodes[1].descendants_of(3), Some(1));
    }

    #[test]
    fn set_size_is_respected() {
        // A wide tree: root with 30 leaf children; set size 10.
        let mut parents = vec![None];
        for _ in 0..30 {
            parents.push(Some(0));
        }
        let mut h = Harness::new(&parents, RanSubConfig::default());
        h.run_epoch(0);
        let delivered = h.run_epoch(0);
        for sets in delivered.iter().skip(1) {
            assert!(sets.len() <= 10, "delivered {} members", sets.len());
        }
    }

    #[test]
    fn stalls_without_failure_detection_when_a_collect_is_missing() {
        let config = RanSubConfig {
            set_size: 10,
            failure_detection: false,
        };
        let parents = seven_node_parents();
        let mut h = Harness::new(&parents, config);
        h.run_epoch(0);
        // Simulate node 1 failing: drop its collect by replacing it with a
        // node that never responds. Here we simply mark epoch incomplete by
        // starting an epoch and never delivering node 1's messages.
        let events = h.nodes[0].start_epoch(&mut h.rng);
        assert!(!events.is_empty());
        // Root now waits for collects that never arrive; the next start is
        // refused.
        let events = h.nodes[0].start_epoch(&mut h.rng);
        assert!(events.is_empty());
        assert_eq!(h.nodes[0].stalled_epochs, 1);
    }

    #[test]
    fn proceeds_with_failure_detection_when_a_collect_is_missing() {
        let config = RanSubConfig {
            set_size: 10,
            failure_detection: true,
        };
        let mut h = Harness::new(&seven_node_parents(), config);
        h.run_epoch(0);
        let _ = h.nodes[0].start_epoch(&mut h.rng);
        // Even though no collect returned (we never delivered messages), the
        // root may start the next epoch.
        let events = h.nodes[0].start_epoch(&mut h.rng);
        assert!(!events.is_empty());
        assert_eq!(h.nodes[0].stalled_epochs, 0);
    }

    #[test]
    fn epochs_are_numbered_monotonically() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        assert_eq!(h.nodes[0].epoch(), 1);
        h.run_epoch(0);
        assert_eq!(h.nodes[0].epoch(), 2);
        assert_eq!(h.nodes[6].epoch(), 2);
    }

    #[test]
    fn stale_messages_are_ignored() {
        let mut h = Harness::new(&seven_node_parents(), RanSubConfig::default());
        h.run_epoch(0);
        h.run_epoch(0);
        // Replay an epoch-1 distribute to node 1: it must be ignored.
        let stale = RanSubMsg::Distribute {
            epoch: 1,
            set: WeightedSet::singleton(0, 0usize),
        };
        let events = h.nodes[1].on_message(0, stale, &mut h.rng);
        assert!(events.is_empty());
    }
}
