//! # bullet-ransub
//!
//! RanSub (paper §2.2): epoch-based dissemination of changing, uniformly
//! random subsets of global state to every node of an overlay tree, using
//! collect messages that flow from the leaves to the root and distribute
//! messages that flow back down.
//!
//! Bullet uses RanSub to deliver, once per epoch, a random subset of other
//! participants' summary tickets to every node, which is how nodes discover
//! peers holding disjoint data without any global membership view. The
//! descendant counts gathered during the collect phase also drive Bullet's
//! per-child sending factors.
//!
//! The crate is runtime-agnostic: [`RanSub`] is a state machine that consumes
//! messages and returns [`RanSubEvent`]s for the embedding protocol to act
//! on.

#![warn(missing_docs)]

pub mod compact;
pub mod protocol;

pub use compact::{compact, Member, WeightedSet};
pub use protocol::{RanSub, RanSubConfig, RanSubEvent, RanSubMsg};
