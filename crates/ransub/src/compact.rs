//! The Compact operation (paper §2.2).
//!
//! Compact takes several fixed-size subsets, each representing a population
//! of known size, and produces a new fixed-size subset whose members are
//! uniformly random representatives of the combined population. It is the
//! primitive that keeps collect and distribute sets both small and unbiased
//! as they move through the tree.

use bullet_netsim::{OverlayId, SimRng};

/// One entry of a collect or distribute set: a node plus the piece of its
/// state being disseminated (for Bullet, its summary ticket).
#[derive(Clone, Debug, PartialEq)]
pub struct Member<T> {
    /// The overlay participant this entry describes.
    pub node: OverlayId,
    /// The state snapshot carried for that participant.
    pub state: T,
}

/// A fixed-size subset together with the size of the population it
/// represents (which is usually much larger than the subset itself).
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedSet<T> {
    /// The sampled members.
    pub members: Vec<Member<T>>,
    /// Total number of nodes this subset stands for.
    pub population: u64,
}

impl<T> WeightedSet<T> {
    /// A subset representing a single node (its own state).
    pub fn singleton(node: OverlayId, state: T) -> Self {
        WeightedSet {
            members: vec![Member { node, state }],
            population: 1,
        }
    }

    /// An empty subset representing nobody.
    pub fn empty() -> Self {
        WeightedSet {
            members: Vec::new(),
            population: 0,
        }
    }
}

/// Combines `inputs` into a subset of at most `set_size` members, where each
/// input population is represented in proportion to its size.
///
/// Sampling is without replacement over the union of the input members: the
/// output never contains the same node twice, and if the union holds fewer
/// than `set_size` distinct nodes all of them are returned.
pub fn compact<T: Clone>(
    inputs: &[WeightedSet<T>],
    set_size: usize,
    rng: &mut SimRng,
) -> WeightedSet<T> {
    let total_population: u64 = inputs.iter().map(|s| s.population).sum();
    // Collect candidate members with their per-slot selection weight: a
    // subset of size m representing a population P gives each of its members
    // weight P / m, so that picking a member is equivalent to first picking
    // the subset with probability P / total and then one member uniformly.
    let mut candidates: Vec<(f64, &Member<T>)> = Vec::new();
    for set in inputs {
        if set.members.is_empty() || set.population == 0 {
            continue;
        }
        let weight = set.population as f64 / set.members.len() as f64;
        for member in &set.members {
            candidates.push((weight, member));
        }
    }
    let mut chosen: Vec<Member<T>> = Vec::new();
    let mut chosen_nodes: Vec<OverlayId> = Vec::new();
    while chosen.len() < set_size && !candidates.is_empty() {
        let total_weight: f64 = candidates.iter().map(|(w, _)| *w).sum();
        if total_weight <= 0.0 {
            break;
        }
        let mut pick = rng.next_f64() * total_weight;
        let mut index = candidates.len() - 1;
        for (i, (w, _)) in candidates.iter().enumerate() {
            if pick < *w {
                index = i;
                break;
            }
            pick -= *w;
        }
        let (_, member) = candidates.swap_remove(index);
        if !chosen_nodes.contains(&member.node) {
            chosen_nodes.push(member.node);
            chosen.push(member.clone());
        }
    }
    WeightedSet {
        members: chosen,
        population: total_population,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(nodes: &[OverlayId], population: u64) -> WeightedSet<u32> {
        WeightedSet {
            members: nodes
                .iter()
                .map(|&n| Member {
                    node: n,
                    state: n as u32,
                })
                .collect(),
            population,
        }
    }

    #[test]
    fn output_size_is_bounded() {
        let mut rng = SimRng::new(1);
        let out = compact(&[set(&[1, 2, 3], 3), set(&[4, 5, 6], 3)], 4, &mut rng);
        assert_eq!(out.members.len(), 4);
        assert_eq!(out.population, 6);
    }

    #[test]
    fn small_union_returns_everyone() {
        let mut rng = SimRng::new(2);
        let out = compact(&[set(&[1, 2], 2)], 10, &mut rng);
        assert_eq!(out.members.len(), 2);
    }

    #[test]
    fn no_duplicate_nodes_in_output() {
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            let out = compact(&[set(&[1, 2, 3], 3), set(&[3, 4, 5], 3)], 5, &mut rng);
            let mut nodes: Vec<_> = out.members.iter().map(|m| m.node).collect();
            nodes.sort_unstable();
            let before = nodes.len();
            nodes.dedup();
            assert_eq!(nodes.len(), before);
        }
    }

    #[test]
    fn representation_is_proportional_to_population() {
        // Subset A stands for 900 nodes, subset B for 100; with one output
        // slot, A's members should be chosen about 90% of the time.
        let mut rng = SimRng::new(4);
        let a = set(&[1, 2, 3], 900);
        let b = set(&[11, 12, 13], 100);
        let mut a_hits = 0;
        for _ in 0..5_000 {
            let out = compact(&[a.clone(), b.clone()], 1, &mut rng);
            if out.members[0].node <= 3 {
                a_hits += 1;
            }
        }
        let fraction = a_hits as f64 / 5_000.0;
        assert!((0.85..0.95).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn members_within_a_subset_are_picked_uniformly() {
        let mut rng = SimRng::new(5);
        let input = set(&[1, 2, 3, 4, 5], 5);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let out = compact(std::slice::from_ref(&input), 1, &mut rng);
            counts[out.members[0].node - 1] += 1;
        }
        for &c in &counts {
            assert!((1_700..=2_300).contains(&c), "count {c} not uniform");
        }
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let mut rng = SimRng::new(6);
        let out: WeightedSet<u32> = compact(&[WeightedSet::empty()], 5, &mut rng);
        assert!(out.members.is_empty());
        assert_eq!(out.population, 0);
    }

    #[test]
    fn singleton_builder_represents_one_node() {
        let s = WeightedSet::singleton(7, "ticket");
        assert_eq!(s.population, 1);
        assert_eq!(s.members.len(), 1);
        assert_eq!(s.members[0].node, 7);
    }
}
