//! Tree streaming with epidemic anti-entropy recovery (paper §4.4).
//!
//! A pbcast-style comparison: nodes receive most of their data from their
//! tree parent (plain TFRC streaming) and periodically run anti-entropy with
//! a few randomly chosen peers to repair whatever the tree dropped. Each
//! round, a node sends a digest — a Bloom filter over its working set plus
//! the sequence range it covers — to `peers_per_round` random nodes; a
//! recipient answers with packets the digest shows as missing, as fast as its
//! TFRC connection allows. As in the paper, nodes are granted full group
//! membership and the epoch is long enough (20 s) for TFRC to ramp up.

use std::collections::{HashMap, HashSet};

use bullet_content::{missing_keys, BloomFilter, ReconcileRequest, WorkingSet};
use bullet_netsim::{Agent, Context, OverlayId, SimDuration, SimTime};
use bullet_overlay::Tree;
use bullet_transport::{TfrcConfig, TfrcFeedback, TfrcHeader, TfrcReceiver, TfrcSender};

use crate::metrics::DeliveryMetrics;

/// Configuration of the anti-entropy baseline.
#[derive(Clone, Debug)]
pub struct AntiEntropyConfig {
    /// Target streaming rate at the source, in bits per second.
    pub stream_rate_bps: f64,
    /// Data packet size in bytes.
    pub packet_size: u32,
    /// Time at which the source starts streaming.
    pub stream_start: SimTime,
    /// Anti-entropy round period (paper: 20 s so TFRC can ramp up).
    pub epoch: SimDuration,
    /// Number of random peers contacted per round (paper: 5).
    pub peers_per_round: usize,
    /// Bloom filter size in bits for digests.
    pub bloom_bits: usize,
    /// Bloom filter hash count.
    pub bloom_hashes: u32,
    /// Number of recent packets kept for repair.
    pub working_set_window: usize,
    /// Maximum repair packets sent in response to one digest.
    pub repair_batch: usize,
    /// TFRC parameters for every connection.
    pub tfrc: TfrcConfig,
}

impl Default for AntiEntropyConfig {
    fn default() -> Self {
        let packet_size = 1_500;
        AntiEntropyConfig {
            stream_rate_bps: 600_000.0,
            packet_size,
            stream_start: SimTime::from_secs(10),
            epoch: SimDuration::from_secs(20),
            peers_per_round: 5,
            bloom_bits: 16_384,
            bloom_hashes: 6,
            working_set_window: 1_500,
            repair_batch: 256,
            tfrc: TfrcConfig {
                packet_size,
                ..TfrcConfig::default()
            },
        }
    }
}

impl AntiEntropyConfig {
    /// Interval between packet generations at the source.
    pub fn packet_interval(&self) -> SimDuration {
        let per_sec = self.stream_rate_bps / (self.packet_size as f64 * 8.0);
        SimDuration::from_secs_f64(1.0 / per_sec.max(0.01))
    }
}

/// Wire messages of the anti-entropy baseline.
#[derive(Clone, Debug)]
pub enum AntiEntropyMsg {
    /// A data packet (parent stream or repair).
    Data {
        /// TFRC header of the connection it travelled on.
        header: TfrcHeader,
        /// Application sequence number.
        seq: u64,
    },
    /// TFRC feedback.
    Feedback(TfrcFeedback),
    /// An anti-entropy digest: "here is what I have, send me the rest".
    Digest {
        /// Bloom filter plus range describing the sender's working set.
        request: ReconcileRequest,
    },
}

const TIMER_GENERATE: u64 = 1;
const TIMER_ANTI_ENTROPY: u64 = 2;
const TIMER_HOUSEKEEPING: u64 = 3;

/// One node running tree streaming plus anti-entropy repair.
pub struct AntiEntropyNode {
    id: OverlayId,
    parent: Option<OverlayId>,
    children: Vec<OverlayId>,
    membership: Vec<OverlayId>,
    config: AntiEntropyConfig,
    next_seq: u64,
    working_set: WorkingSet,
    out_conns: HashMap<OverlayId, TfrcSender>,
    in_conns: HashMap<OverlayId, TfrcReceiver>,
    /// Keys already repaired toward a given peer this round (avoid repeats).
    repaired: HashMap<OverlayId, HashSet<u64>>,
    /// Cumulative delivery counters.
    pub metrics: DeliveryMetrics,
}

impl AntiEntropyNode {
    /// Creates a node for participant `id` of `tree`; `participants` is the
    /// total group size (full membership is assumed, as in the paper).
    pub fn new(id: OverlayId, tree: &Tree, participants: usize, config: AntiEntropyConfig) -> Self {
        AntiEntropyNode {
            id,
            parent: tree.parent(id),
            children: tree.children(id).to_vec(),
            membership: (0..participants).filter(|&n| n != id).collect(),
            config,
            next_seq: 0,
            working_set: WorkingSet::new(),
            out_conns: HashMap::new(),
            in_conns: HashMap::new(),
            repaired: HashMap::new(),
            metrics: DeliveryMetrics::default(),
        }
    }

    /// Whether this node is the stream source.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// The node's overlay id.
    pub fn id(&self) -> bullet_netsim::OverlayId {
        self.id
    }

    fn forward_to_children(&mut self, ctx: &mut Context<'_, AntiEntropyMsg>, seq: u64) {
        let now = ctx.now();
        let packet_size = self.config.packet_size;
        let tfrc = self.config.tfrc;
        for &child in &self.children.clone() {
            let conn = self
                .out_conns
                .entry(child)
                .or_insert_with(|| TfrcSender::new(tfrc));
            if let Ok(header) = conn.try_send(now, packet_size) {
                ctx.send_data(child, AntiEntropyMsg::Data { header, seq }, packet_size);
            }
        }
    }

    fn build_digest(&self) -> ReconcileRequest {
        let mut filter = BloomFilter::new(self.config.bloom_bits, self.config.bloom_hashes);
        for seq in self.working_set.iter() {
            filter.insert(seq);
        }
        let (low, high) = self.working_set.range();
        ReconcileRequest::new(filter, low, high.max(low), 1, 0)
    }

    fn answer_digest(
        &mut self,
        ctx: &mut Context<'_, AntiEntropyMsg>,
        from: OverlayId,
        request: &ReconcileRequest,
    ) {
        let already = self.repaired.entry(from).or_default();
        let keys: Vec<u64> = missing_keys(&self.working_set, request, self.config.repair_batch * 2)
            .into_iter()
            .filter(|k| !already.contains(k))
            .take(self.config.repair_batch)
            .collect();
        let now = ctx.now();
        let packet_size = self.config.packet_size;
        let tfrc = self.config.tfrc;
        for key in keys {
            let conn = self
                .out_conns
                .entry(from)
                .or_insert_with(|| TfrcSender::new(tfrc));
            match conn.try_send(now, packet_size) {
                Ok(header) => {
                    ctx.send_data(from, AntiEntropyMsg::Data { header, seq: key }, packet_size);
                    self.repaired.entry(from).or_default().insert(key);
                }
                Err(_) => break,
            }
        }
    }
}

impl Agent for AntiEntropyNode {
    type Msg = AntiEntropyMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, AntiEntropyMsg>) {
        if self.is_root() {
            let delay = self.config.stream_start - ctx.now();
            ctx.set_timer(delay, TIMER_GENERATE);
        }
        let jitter = self.config.epoch.mul_f64(ctx.rng().range_f64(0.5, 1.5));
        ctx.set_timer(jitter, TIMER_ANTI_ENTROPY);
        ctx.set_timer(SimDuration::from_secs(1), TIMER_HOUSEKEEPING);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, AntiEntropyMsg>,
        from: OverlayId,
        msg: AntiEntropyMsg,
    ) {
        match msg {
            AntiEntropyMsg::Data { header, seq } => {
                let feedback = self.in_conns.entry(from).or_default().on_data(
                    ctx.now(),
                    header,
                    self.config.packet_size,
                );
                if let Some(feedback) = feedback {
                    ctx.send_control(from, AntiEntropyMsg::Feedback(feedback), 60);
                }
                let duplicate =
                    self.working_set.contains(seq) || seq < self.working_set.low_watermark();
                let from_parent = Some(from) == self.parent;
                self.metrics
                    .record_receive(self.config.packet_size, from_parent, duplicate);
                if !duplicate {
                    self.working_set.insert(seq);
                    self.forward_to_children(ctx, seq);
                }
            }
            AntiEntropyMsg::Feedback(feedback) => {
                if let Some(conn) = self.out_conns.get_mut(&from) {
                    conn.on_feedback(ctx.now(), &feedback);
                }
            }
            AntiEntropyMsg::Digest { request } => {
                self.answer_digest(ctx, from, &request);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, AntiEntropyMsg>, tag: u64) {
        match tag {
            TIMER_GENERATE => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.metrics.packets_generated += 1;
                self.working_set.insert(seq);
                self.forward_to_children(ctx, seq);
                ctx.set_timer(self.config.packet_interval(), TIMER_GENERATE);
            }
            TIMER_ANTI_ENTROPY => {
                let peers = {
                    let count = self.config.peers_per_round.min(self.membership.len());
                    ctx.rng().sample(&self.membership, count)
                };
                let request = self.build_digest();
                let size = 40 + request.wire_bytes();
                for peer in peers {
                    ctx.send_control(
                        peer,
                        AntiEntropyMsg::Digest {
                            request: request.clone(),
                        },
                        size,
                    );
                }
                self.repaired.clear();
                ctx.set_timer(self.config.epoch, TIMER_ANTI_ENTROPY);
            }
            TIMER_HOUSEKEEPING => {
                self.working_set
                    .prune_to_len(self.config.working_set_window);
                let now = ctx.now();
                for conn in self.out_conns.values_mut() {
                    conn.maybe_nofeedback_timeout(now);
                }
                ctx.set_timer(SimDuration::from_secs(1), TIMER_HOUSEKEEPING);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::{LinkSpec, NetworkSpec, Sim, SimRng};
    use bullet_overlay::random_tree;

    fn hub(n: usize, access_bps: f64) -> NetworkSpec {
        let mut spec = NetworkSpec::new(n + 1);
        for i in 0..n {
            spec.add_link(
                LinkSpec::new(n, i, access_bps, SimDuration::from_millis(10)).with_loss(0.02),
            );
            spec.attach(i);
        }
        spec
    }

    fn run(n: usize, secs: u64) -> Sim<AntiEntropyNode> {
        let spec = hub(n, 2_000_000.0);
        let mut rng = SimRng::new(5);
        let tree = random_tree(n, 0, 3, &mut rng);
        let config = AntiEntropyConfig {
            stream_rate_bps: 300_000.0,
            stream_start: SimTime::from_secs(2),
            epoch: SimDuration::from_secs(5),
            ..AntiEntropyConfig::default()
        };
        let agents = (0..n)
            .map(|i| AntiEntropyNode::new(i, &tree, n, config.clone()))
            .collect();
        let mut sim = Sim::new(&spec, agents, 5);
        sim.run_until(SimTime::from_secs(secs));
        sim
    }

    #[test]
    fn repairs_losses_from_the_tree() {
        let sim = run(12, 40);
        let generated = sim.agent(0).metrics.packets_generated;
        assert!(generated > 400);
        // With 2% per-hop loss and no repair, deep nodes would miss a
        // noticeable share; anti-entropy should bring everyone close to the
        // full stream.
        for node in 1..12 {
            let got = sim.agent(node).metrics.useful_packets;
            assert!(
                got as f64 > generated as f64 * 0.75,
                "node {node} got {got}/{generated}"
            );
        }
    }

    #[test]
    fn some_recovery_traffic_flows_outside_the_tree() {
        let sim = run(12, 40);
        let repaired_nodes = (1..12)
            .filter(|&n| {
                let m = &sim.agent(n).metrics;
                m.raw_bytes > m.from_parent_bytes
            })
            .count();
        assert!(
            repaired_nodes >= 4,
            "expected anti-entropy repairs at several nodes, saw {repaired_nodes}"
        );
    }

    #[test]
    fn digest_answer_respects_batch_limit() {
        let mut tree_rng = SimRng::new(1);
        let tree = random_tree(2, 0, 2, &mut tree_rng);
        let config = AntiEntropyConfig {
            repair_batch: 10,
            ..AntiEntropyConfig::default()
        };
        let mut node = AntiEntropyNode::new(0, &tree, 2, config);
        for seq in 0..100 {
            node.working_set.insert(seq);
        }
        // An empty digest from peer 1 asks for everything; only the batch
        // limit may be sent.
        let request = ReconcileRequest::new(BloomFilter::new(1_024, 4), 0, 99, 1, 0);
        let mut rng = SimRng::new(2);
        let mut actions = Vec::new();
        let mut timers = bullet_netsim::TimerAlloc::new();
        let mut ctx = Context::new(
            SimTime::from_secs(1),
            0,
            &mut rng,
            &mut actions,
            &mut timers,
        );
        node.answer_digest(&mut ctx, 1, &request);
        let data_sends = actions
            .iter()
            .filter(|a| matches!(a, bullet_netsim::Action::Send { .. }))
            .count();
        assert!(data_sends <= 10, "sent {data_sends} repairs");
        assert!(
            data_sends >= 4,
            "transport should allow at least the burst, sent {data_sends}"
        );
    }
}
