//! Delivery metrics shared by the baseline protocols.
//!
//! The baselines keep the same cumulative delivery counters Bullet keeps so
//! the experiment harness can build the same bandwidth-over-time series for
//! every system under comparison. Since PR 9 the counter struct itself lives
//! in `bullet-telemetry` ([`bullet_telemetry::DeliveryCounters`]) and is
//! shared verbatim with `bullet-core`; this module re-exports it under the
//! historical name.

pub use bullet_telemetry::DeliveryCounters as DeliveryMetrics;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_matches_expectations() {
        let mut m = DeliveryMetrics::default();
        m.record_receive(1_000, true, false);
        m.record_receive(1_000, false, true);
        assert_eq!(m.useful_bytes, 1_000);
        assert_eq!(m.raw_bytes, 2_000);
        assert_eq!(m.from_parent_bytes, 1_000);
        assert_eq!(m.duplicate_packets, 1);
        assert!((m.duplicate_fraction() - 0.5).abs() < 1e-12);
    }
}
