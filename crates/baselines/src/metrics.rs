//! Delivery metrics shared by the baseline protocols.
//!
//! Mirrors the counters Bullet keeps so the experiment harness can build the
//! same bandwidth-over-time series for every system under comparison.

/// Cumulative per-node delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryMetrics {
    /// Bytes received for the first time.
    pub useful_bytes: u64,
    /// Bytes received in total, including duplicates.
    pub raw_bytes: u64,
    /// Bytes received from the tree parent (zero for protocols without a
    /// tree).
    pub from_parent_bytes: u64,
    /// Packets received more than once.
    pub duplicate_packets: u64,
    /// Packets received in total.
    pub total_packets: u64,
    /// Distinct sequence numbers received.
    pub useful_packets: u64,
    /// Packets generated (source only).
    pub packets_generated: u64,
}

impl DeliveryMetrics {
    /// Records the reception of one data packet.
    pub fn record_receive(&mut self, bytes: u32, from_parent: bool, duplicate: bool) {
        self.raw_bytes += bytes as u64;
        self.total_packets += 1;
        if from_parent {
            self.from_parent_bytes += bytes as u64;
        }
        if duplicate {
            self.duplicate_packets += 1;
        } else {
            self.useful_bytes += bytes as u64;
            self.useful_packets += 1;
        }
    }

    /// Fraction of received packets that were duplicates.
    pub fn duplicate_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            0.0
        } else {
            self.duplicate_packets as f64 / self.total_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_matches_expectations() {
        let mut m = DeliveryMetrics::default();
        m.record_receive(1_000, true, false);
        m.record_receive(1_000, false, true);
        assert_eq!(m.useful_bytes, 1_000);
        assert_eq!(m.raw_bytes, 2_000);
        assert_eq!(m.from_parent_bytes, 1_000);
        assert_eq!(m.duplicate_packets, 1);
        assert!((m.duplicate_fraction() - 0.5).abs() < 1e-12);
    }
}
