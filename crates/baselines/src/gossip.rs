//! Push gossip dissemination (paper §4.4).
//!
//! An lpbcast-style epidemic: the source sends each fresh packet to a few
//! randomly chosen nodes, and every node forwards each *non-duplicate* packet
//! it receives to a randomly chosen set of peers from its membership view as
//! soon as it arrives (no dissemination tree and no per-round batching). As
//! in the paper's conservative comparison, nodes are given full group
//! membership and reuse the TFRC transport.

use std::collections::{HashMap, HashSet};

use bullet_netsim::{Agent, Context, OverlayId, SimDuration, SimTime};
use bullet_transport::{TfrcConfig, TfrcFeedback, TfrcHeader, TfrcReceiver, TfrcSender};

use crate::metrics::DeliveryMetrics;

/// Configuration of the push-gossip baseline.
#[derive(Clone, Debug)]
pub struct GossipConfig {
    /// Target streaming rate at the source, in bits per second.
    pub stream_rate_bps: f64,
    /// Data packet size in bytes.
    pub packet_size: u32,
    /// Time at which the source starts streaming.
    pub stream_start: SimTime,
    /// Number of peers each packet is forwarded to (the paper found 5 to be
    /// the best-performing, lowest-overhead setting).
    pub fanout: usize,
    /// TFRC parameters for every connection.
    pub tfrc: TfrcConfig,
}

impl Default for GossipConfig {
    fn default() -> Self {
        let packet_size = 1_500;
        GossipConfig {
            stream_rate_bps: 600_000.0,
            packet_size,
            stream_start: SimTime::from_secs(10),
            fanout: 5,
            tfrc: TfrcConfig {
                packet_size,
                ..TfrcConfig::default()
            },
        }
    }
}

impl GossipConfig {
    /// Interval between packet generations at the source.
    pub fn packet_interval(&self) -> SimDuration {
        let per_sec = self.stream_rate_bps / (self.packet_size as f64 * 8.0);
        SimDuration::from_secs_f64(1.0 / per_sec.max(0.01))
    }
}

/// Wire messages of the gossip baseline.
#[derive(Clone, Debug)]
pub enum GossipMsg {
    /// A pushed data packet.
    Data {
        /// TFRC header of the connection it travelled on.
        header: TfrcHeader,
        /// Application sequence number.
        seq: u64,
    },
    /// TFRC feedback.
    Feedback(TfrcFeedback),
}

const TIMER_GENERATE: u64 = 1;

/// One gossiping node.
pub struct GossipNode {
    id: OverlayId,
    membership: Vec<OverlayId>,
    is_source: bool,
    config: GossipConfig,
    next_seq: u64,
    seen: HashSet<u64>,
    out_conns: HashMap<OverlayId, TfrcSender>,
    in_conns: HashMap<OverlayId, TfrcReceiver>,
    /// Cumulative delivery counters.
    pub metrics: DeliveryMetrics,
}

impl GossipNode {
    /// The node's overlay id.
    pub fn id(&self) -> OverlayId {
        self.id
    }

    /// Creates a gossip node. `membership` is the full participant list (the
    /// paper's conservative full-membership assumption).
    pub fn new(
        id: OverlayId,
        source: OverlayId,
        participants: usize,
        config: GossipConfig,
    ) -> Self {
        GossipNode {
            id,
            membership: (0..participants).filter(|&n| n != id).collect(),
            is_source: id == source,
            config,
            next_seq: 0,
            seen: HashSet::new(),
            out_conns: HashMap::new(),
            in_conns: HashMap::new(),
            metrics: DeliveryMetrics::default(),
        }
    }

    fn push_to_random_peers(
        &mut self,
        ctx: &mut Context<'_, GossipMsg>,
        seq: u64,
        exclude: Option<OverlayId>,
    ) {
        let mut candidates = self.membership.clone();
        if let Some(exclude) = exclude {
            candidates.retain(|&n| n != exclude);
        }
        let fanout = self.config.fanout.min(candidates.len());
        let targets = ctx.rng().sample(&candidates, fanout);
        let now = ctx.now();
        let packet_size = self.config.packet_size;
        let tfrc = self.config.tfrc;
        for target in targets {
            let conn = self
                .out_conns
                .entry(target)
                .or_insert_with(|| TfrcSender::new(tfrc));
            if let Ok(header) = conn.try_send(now, packet_size) {
                ctx.send_data(target, GossipMsg::Data { header, seq }, packet_size);
            }
        }
    }
}

impl Agent for GossipNode {
    type Msg = GossipMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        if self.is_source {
            let delay = self.config.stream_start - ctx.now();
            ctx.set_timer(delay, TIMER_GENERATE);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, GossipMsg>, from: OverlayId, msg: GossipMsg) {
        match msg {
            GossipMsg::Data { header, seq } => {
                let feedback = self.in_conns.entry(from).or_default().on_data(
                    ctx.now(),
                    header,
                    self.config.packet_size,
                );
                if let Some(feedback) = feedback {
                    ctx.send_control(from, GossipMsg::Feedback(feedback), 60);
                }
                let duplicate = !self.seen.insert(seq);
                self.metrics
                    .record_receive(self.config.packet_size, false, duplicate);
                if !duplicate {
                    self.push_to_random_peers(ctx, seq, Some(from));
                }
            }
            GossipMsg::Feedback(feedback) => {
                if let Some(conn) = self.out_conns.get_mut(&from) {
                    conn.on_feedback(ctx.now(), &feedback);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, GossipMsg>, tag: u64) {
        if tag == TIMER_GENERATE {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.metrics.packets_generated += 1;
            self.seen.insert(seq);
            self.push_to_random_peers(ctx, seq, None);
            ctx.set_timer(self.config.packet_interval(), TIMER_GENERATE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::{LinkSpec, NetworkSpec, Sim};

    fn hub(n: usize, access_bps: f64) -> NetworkSpec {
        let mut spec = NetworkSpec::new(n + 1);
        for i in 0..n {
            spec.add_link(LinkSpec::new(
                n,
                i,
                access_bps,
                SimDuration::from_millis(10),
            ));
            spec.attach(i);
        }
        spec
    }

    fn run(n: usize, access_bps: f64, secs: u64) -> Sim<GossipNode> {
        let spec = hub(n, access_bps);
        let config = GossipConfig {
            stream_rate_bps: 300_000.0,
            stream_start: SimTime::from_secs(2),
            ..GossipConfig::default()
        };
        let agents = (0..n)
            .map(|i| GossipNode::new(i, 0, n, config.clone()))
            .collect();
        let mut sim = Sim::new(&spec, agents, 3);
        sim.run_until(SimTime::from_secs(secs));
        sim
    }

    #[test]
    fn gossip_spreads_data_to_most_nodes() {
        let sim = run(15, 4_000_000.0, 25);
        let generated = sim.agent(0).metrics.packets_generated;
        assert!(generated > 300);
        let mut reached = 0;
        for node in 1..15 {
            if sim.agent(node).metrics.useful_packets as f64 > generated as f64 * 0.5 {
                reached += 1;
            }
        }
        assert!(reached >= 10, "only {reached} nodes got most of the stream");
    }

    #[test]
    fn gossip_produces_duplicates() {
        let sim = run(15, 4_000_000.0, 25);
        let total_dups: u64 = (1..15)
            .map(|n| sim.agent(n).metrics.duplicate_packets)
            .sum();
        assert!(
            total_dups > 100,
            "push gossip should waste bandwidth on duplicates, saw {total_dups}"
        );
    }

    #[test]
    fn fanout_bounds_forwarding() {
        let config = GossipConfig::default();
        assert_eq!(config.fanout, 5);
        let node = GossipNode::new(1, 0, 20, config);
        assert_eq!(node.membership.len(), 19);
        assert!(!node.membership.contains(&1));
    }
}
