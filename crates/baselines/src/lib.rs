//! # bullet-baselines
//!
//! The comparison systems the paper evaluates Bullet against:
//!
//! * [`streaming`] — traditional tree streaming over TFRC or UDP (Fig. 6,
//!   and the tree half of Figs. 9 and 12),
//! * [`gossip`] — push-gossip epidemic dissemination (Fig. 11),
//! * [`antientropy`] — tree streaming plus pbcast-style anti-entropy
//!   recovery (Fig. 11).
//!
//! All three reuse the same transports, content-description primitives and
//! simulator as Bullet itself, so differences in the results reflect the
//! algorithms rather than implementation details (the role MACEDON plays in
//! the paper).

#![warn(missing_docs)]

pub mod antientropy;
pub mod gossip;
pub mod metrics;
pub mod streaming;

pub use antientropy::{AntiEntropyConfig, AntiEntropyMsg, AntiEntropyNode};
pub use gossip::{GossipConfig, GossipMsg, GossipNode};
pub use metrics::DeliveryMetrics;
pub use streaming::{StreamConfig, StreamMsg, StreamTransport, StreamingNode};

// The baselines run under scenario scripts with the default (no-op)
// lifecycle hooks: their nodes fail and revive silently. Link and router
// dynamics still apply in full, which is all the comparative
// time-varying-link figures need.
impl bullet_dynamics::ScenarioAgent for StreamingNode {}
impl bullet_dynamics::ScenarioAgent for GossipNode {}
impl bullet_dynamics::ScenarioAgent for AntiEntropyNode {}
