//! Traditional tree streaming (paper §4.2, Fig. 6).
//!
//! The source streams every packet to all of its children; each interior node
//! forwards every packet it receives to all of its own children. The
//! transport (TFRC or application-paced UDP) throttles each child link
//! independently, so bandwidth is monotonically non-increasing down the tree
//! — the limitation Bullet exists to remove. This is the "streaming"
//! comparison used against both the random tree and the offline bottleneck
//! tree.

use std::collections::{HashMap, HashSet};

use bullet_netsim::{Agent, Context, OverlayId, SimDuration, SimTime};
use bullet_overlay::Tree;
use bullet_transport::{TfrcConfig, TfrcFeedback, TfrcHeader, TfrcReceiver, TfrcSender, UdpSender};

use crate::metrics::DeliveryMetrics;

/// Which transport the streaming tree uses on every overlay link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamTransport {
    /// TCP-friendly rate control (the paper's default).
    Tfrc,
    /// Application-paced best-effort UDP.
    Udp,
}

/// Configuration of the streaming application.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Target streaming rate at the source, in bits per second.
    pub stream_rate_bps: f64,
    /// Data packet size in bytes.
    pub packet_size: u32,
    /// Time at which the source starts streaming.
    pub stream_start: SimTime,
    /// Transport used on every parent-child link.
    pub transport: StreamTransport,
    /// TFRC parameters (ignored for UDP).
    pub tfrc: TfrcConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        let packet_size = 1_500;
        StreamConfig {
            stream_rate_bps: 600_000.0,
            packet_size,
            stream_start: SimTime::from_secs(10),
            transport: StreamTransport::Tfrc,
            tfrc: TfrcConfig {
                packet_size,
                ..TfrcConfig::default()
            },
        }
    }
}

impl StreamConfig {
    /// Interval between packet generations at the source.
    pub fn packet_interval(&self) -> SimDuration {
        let per_sec = self.stream_rate_bps / (self.packet_size as f64 * 8.0);
        SimDuration::from_secs_f64(1.0 / per_sec.max(0.01))
    }
}

/// Wire messages of the streaming application.
#[derive(Clone, Debug)]
pub enum StreamMsg {
    /// One data packet. The TFRC header is absent under UDP.
    Data {
        /// Transport header when running over TFRC.
        header: Option<TfrcHeader>,
        /// Application sequence number.
        seq: u64,
    },
    /// TFRC feedback for the reverse direction of a data connection.
    Feedback(TfrcFeedback),
}

enum OutConn {
    Tfrc(TfrcSender),
    Udp(UdpSender),
}

const TIMER_GENERATE: u64 = 1;

/// One node of the streaming tree.
pub struct StreamingNode {
    id: OverlayId,
    parent: Option<OverlayId>,
    children: Vec<OverlayId>,
    config: StreamConfig,
    next_seq: u64,
    seen: HashSet<u64>,
    out_conns: HashMap<OverlayId, OutConn>,
    in_conns: HashMap<OverlayId, TfrcReceiver>,
    /// Cumulative delivery counters sampled by the harness.
    pub metrics: DeliveryMetrics,
}

impl StreamingNode {
    /// Creates the streaming node for participant `id` of `tree`.
    pub fn new(id: OverlayId, tree: &Tree, config: StreamConfig) -> Self {
        StreamingNode {
            id,
            parent: tree.parent(id),
            children: tree.children(id).to_vec(),
            config,
            next_seq: 0,
            seen: HashSet::new(),
            out_conns: HashMap::new(),
            in_conns: HashMap::new(),
            metrics: DeliveryMetrics::default(),
        }
    }

    /// Whether this node is the stream source.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// The node's overlay id.
    pub fn id(&self) -> OverlayId {
        self.id
    }

    fn forward_to_children(&mut self, ctx: &mut Context<'_, StreamMsg>, seq: u64) {
        let now = ctx.now();
        let packet_size = self.config.packet_size;
        let tfrc = self.config.tfrc;
        let transport = self.config.transport;
        let per_child_rate = self.config.stream_rate_bps / 8.0;
        for &child in &self.children.clone() {
            let conn = self
                .out_conns
                .entry(child)
                .or_insert_with(|| match transport {
                    StreamTransport::Tfrc => OutConn::Tfrc(TfrcSender::new(tfrc)),
                    StreamTransport::Udp => OutConn::Udp(UdpSender::new(per_child_rate)),
                });
            let header = match conn {
                OutConn::Tfrc(sender) => match sender.try_send(now, packet_size) {
                    Ok(header) => Some(Some(header)),
                    Err(_) => None,
                },
                OutConn::Udp(sender) => match sender.try_send(now, packet_size) {
                    Ok(_) => Some(None),
                    Err(_) => None,
                },
            };
            if let Some(header) = header {
                ctx.send_data(child, StreamMsg::Data { header, seq }, packet_size);
            }
        }
    }
}

impl Agent for StreamingNode {
    type Msg = StreamMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, StreamMsg>) {
        if self.is_root() {
            let delay = self.config.stream_start - ctx.now();
            ctx.set_timer(delay, TIMER_GENERATE);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, StreamMsg>, from: OverlayId, msg: StreamMsg) {
        match msg {
            StreamMsg::Data { header, seq } => {
                if let Some(header) = header {
                    let feedback = self.in_conns.entry(from).or_default().on_data(
                        ctx.now(),
                        header,
                        self.config.packet_size,
                    );
                    if let Some(feedback) = feedback {
                        ctx.send_control(from, StreamMsg::Feedback(feedback), 60);
                    }
                }
                let duplicate = !self.seen.insert(seq);
                let from_parent = Some(from) == self.parent;
                self.metrics
                    .record_receive(self.config.packet_size, from_parent, duplicate);
                if !duplicate {
                    self.forward_to_children(ctx, seq);
                }
            }
            StreamMsg::Feedback(feedback) => {
                if let Some(OutConn::Tfrc(sender)) = self.out_conns.get_mut(&from) {
                    sender.on_feedback(ctx.now(), &feedback);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, StreamMsg>, tag: u64) {
        if tag == TIMER_GENERATE {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.metrics.packets_generated += 1;
            self.seen.insert(seq);
            self.forward_to_children(ctx, seq);
            ctx.set_timer(self.config.packet_interval(), TIMER_GENERATE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::{LinkSpec, NetworkSpec, Sim, SimRng};
    use bullet_overlay::random_tree;

    fn hub(n: usize, access_bps: f64) -> NetworkSpec {
        let mut spec = NetworkSpec::new(n + 1);
        for i in 0..n {
            spec.add_link(LinkSpec::new(
                n,
                i,
                access_bps,
                SimDuration::from_millis(10),
            ));
            spec.attach(i);
        }
        spec
    }

    fn run(n: usize, access_bps: f64, transport: StreamTransport, secs: u64) -> Sim<StreamingNode> {
        let spec = hub(n, access_bps);
        let mut rng = SimRng::new(1);
        let tree = random_tree(n, 0, 3, &mut rng);
        let config = StreamConfig {
            stream_rate_bps: 400_000.0,
            stream_start: SimTime::from_secs(2),
            transport,
            ..StreamConfig::default()
        };
        let agents = (0..n)
            .map(|i| StreamingNode::new(i, &tree, config.clone()))
            .collect();
        let mut sim = Sim::new(&spec, agents, 1);
        sim.run_until(SimTime::from_secs(secs));
        sim
    }

    #[test]
    fn ample_bandwidth_delivers_the_full_stream_over_tfrc() {
        let sim = run(10, 4_000_000.0, StreamTransport::Tfrc, 30);
        let generated = sim.agent(0).metrics.packets_generated;
        assert!(generated > 500);
        for node in 1..10 {
            let got = sim.agent(node).metrics.useful_packets;
            assert!(
                got as f64 > generated as f64 * 0.8,
                "node {node} got {got}/{generated}"
            );
        }
    }

    #[test]
    fn constrained_interior_links_throttle_descendants() {
        // Access links at half the stream rate: children of the root get at
        // most ~half the stream, and their own children no more than that.
        let sim = run(10, 200_000.0, StreamTransport::Tfrc, 30);
        let generated = sim.agent(0).metrics.packets_generated;
        for node in 1..10 {
            let got = sim.agent(node).metrics.useful_packets;
            assert!(
                (got as f64) < generated as f64 * 0.8,
                "node {node} unexpectedly received {got}/{generated}"
            );
        }
    }

    #[test]
    fn udp_transport_also_delivers() {
        let sim = run(8, 4_000_000.0, StreamTransport::Udp, 20);
        let generated = sim.agent(0).metrics.packets_generated;
        for node in 1..8 {
            let got = sim.agent(node).metrics.useful_packets;
            assert!(
                got as f64 > generated as f64 * 0.7,
                "node {node}: {got}/{generated}"
            );
        }
    }

    #[test]
    fn no_duplicates_in_a_tree() {
        let sim = run(10, 1_000_000.0, StreamTransport::Tfrc, 20);
        for node in 0..10 {
            assert_eq!(sim.agent(node).metrics.duplicate_packets, 0);
        }
    }
}
