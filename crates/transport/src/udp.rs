//! Best-effort (UDP-like) transport.
//!
//! The paper's streaming application can run over UDP, TFRC, or TCP. The UDP
//! path has no congestion control at all: the application chooses a constant
//! rate and the network drops whatever does not fit. We keep the same
//! non-blocking `try_send` interface so protocols can swap transports without
//! code changes.

use bullet_netsim::SimTime;

use crate::rate::{RateLimiter, SendOutcome};

/// An application-paced, congestion-unaware sender.
#[derive(Clone, Debug)]
pub struct UdpSender {
    limiter: RateLimiter,
    next_seq: u64,
    /// Packets handed to the network.
    pub packets_sent: u64,
}

impl UdpSender {
    /// Creates a sender paced at `rate_bytes_per_sec` (the application's
    /// streaming rate). A rate of `f64::INFINITY` disables pacing entirely.
    pub fn new(rate_bytes_per_sec: f64) -> Self {
        let burst = if rate_bytes_per_sec.is_finite() {
            (rate_bytes_per_sec * 0.02).max(3_000.0)
        } else {
            f64::MAX / 4.0
        };
        UdpSender {
            limiter: RateLimiter::new(
                if rate_bytes_per_sec.is_finite() {
                    rate_bytes_per_sec
                } else {
                    f64::MAX / 4.0
                },
                burst,
            ),
            next_seq: 0,
            packets_sent: 0,
        }
    }

    /// Attempts to send `size_bytes` at `now`; returns the transport sequence
    /// number on success.
    pub fn try_send(&mut self, now: SimTime, size_bytes: u32) -> Result<u64, SendOutcome> {
        match self.limiter.try_consume(now, size_bytes) {
            SendOutcome::Accepted => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.packets_sent += 1;
                Ok(seq)
            }
            SendOutcome::WouldBlock => Err(SendOutcome::WouldBlock),
        }
    }

    /// Changes the pacing rate.
    pub fn set_rate(&mut self, rate_bytes_per_sec: f64) {
        self.limiter.set_rate(rate_bytes_per_sec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::SimDuration;

    #[test]
    fn paces_at_the_configured_rate() {
        let mut udp = UdpSender::new(10_000.0);
        let mut sent = 0u64;
        for i in 0..1_000u64 {
            let now = SimTime::from_millis(i * 10);
            if udp.try_send(now, 1_000).is_ok() {
                sent += 1;
            }
        }
        // 10 seconds at 10 KB/s = 100 KB = about 100 packets (plus burst).
        assert!((95..=110).contains(&sent), "sent={sent}");
    }

    #[test]
    fn unpaced_sender_always_accepts() {
        let mut udp = UdpSender::new(f64::INFINITY);
        for _ in 0..10_000 {
            assert!(udp.try_send(SimTime::ZERO, 1_500).is_ok());
        }
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let mut udp = UdpSender::new(f64::INFINITY);
        let a = udp.try_send(SimTime::ZERO, 100).unwrap();
        let b = udp.try_send(SimTime::ZERO, 100).unwrap();
        assert_eq!(b, a + 1);
        assert_eq!(udp.packets_sent, 2);
    }

    #[test]
    fn rate_change_applies() {
        let mut udp = UdpSender::new(1_000.0);
        udp.set_rate(1_000_000.0);
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        let mut ok = 0;
        for _ in 0..50 {
            if udp.try_send(now, 1_000).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 3, "expected burst at new rate, got {ok}");
    }
}
