//! Loss-event detection and the loss interval history (paper §2.4).
//!
//! A TFRC receiver detects losses from gaps in the transport sequence space,
//! groups losses that occur within one round-trip time into a single *loss
//! event*, and maintains the last eight *loss intervals* (packets received
//! between consecutive loss events). The reported loss event rate is the
//! inverse of the weighted average of those intervals.

use bullet_netsim::{SimDuration, SimTime};

/// TFRC weights for the eight most recent loss intervals, newest first.
const INTERVAL_WEIGHTS: [f64; 8] = [1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2];

/// History of loss intervals with TFRC's weighted averaging.
#[derive(Clone, Debug, Default)]
pub struct LossIntervalHistory {
    /// Closed intervals, newest first; at most eight are kept.
    intervals: Vec<u64>,
}

impl LossIntervalHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the length of a newly closed loss interval (number of packets
    /// between the previous loss event and this one).
    pub fn push(&mut self, interval: u64) {
        self.intervals.insert(0, interval.max(1));
        self.intervals.truncate(INTERVAL_WEIGHTS.len());
    }

    /// Number of intervals currently stored.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns `true` when no loss event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The weighted average loss interval, including the still-open interval
    /// `current` (packets received since the most recent loss event). TFRC
    /// uses the open interval only when doing so *decreases* the loss rate,
    /// so that the estimate reacts quickly to new losses but slowly to the
    /// absence of losses.
    pub fn average_interval(&self, current: u64) -> f64 {
        if self.intervals.is_empty() {
            return f64::INFINITY;
        }
        let closed = self.weighted(&self.intervals);
        // Shift the window by one: treat the open interval as interval 0.
        let mut with_open: Vec<u64> = Vec::with_capacity(self.intervals.len() + 1);
        with_open.push(current.max(1));
        with_open.extend_from_slice(&self.intervals);
        with_open.truncate(INTERVAL_WEIGHTS.len());
        let open = self.weighted(&with_open);
        closed.max(open)
    }

    fn weighted(&self, intervals: &[u64]) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &interval) in intervals.iter().enumerate().take(INTERVAL_WEIGHTS.len()) {
            num += interval as f64 * INTERVAL_WEIGHTS[i];
            den += INTERVAL_WEIGHTS[i];
        }
        num / den
    }

    /// The loss event rate `p` implied by the history.
    pub fn loss_event_rate(&self, current_interval: u64) -> f64 {
        let avg = self.average_interval(current_interval);
        if avg.is_infinite() {
            0.0
        } else {
            (1.0 / avg).min(1.0)
        }
    }
}

/// Per-connection loss-event detector run by the receiver.
#[derive(Clone, Debug)]
pub struct LossDetector {
    history: LossIntervalHistory,
    /// Highest transport sequence number seen so far, if any.
    highest_seq: Option<u64>,
    /// Packets received since the last loss event started.
    packets_since_event: u64,
    /// Start time of the most recent loss event, used for RTT grouping.
    last_event_time: Option<SimTime>,
    /// Total packets received.
    pub packets_received: u64,
    /// Total packets detected as lost.
    pub packets_lost: u64,
}

impl Default for LossDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl LossDetector {
    /// Creates a detector with an empty history.
    pub fn new() -> Self {
        LossDetector {
            history: LossIntervalHistory::new(),
            highest_seq: None,
            packets_since_event: 0,
            last_event_time: None,
            packets_received: 0,
            packets_lost: 0,
        }
    }

    /// Processes the arrival of transport sequence number `seq` at `now`.
    ///
    /// `rtt` is the sender's current RTT estimate (carried in the data packet
    /// header); losses within one RTT of the start of a loss event are folded
    /// into that same event.
    pub fn on_packet(&mut self, now: SimTime, seq: u64, rtt: SimDuration) {
        self.packets_received += 1;
        match self.highest_seq {
            None => {
                self.highest_seq = Some(seq);
                self.packets_since_event += 1;
            }
            Some(highest) if seq > highest => {
                let gap = seq - highest - 1;
                if gap > 0 {
                    self.packets_lost += gap;
                    let new_event = match self.last_event_time {
                        Some(start) => now.saturating_since(start) > rtt,
                        None => true,
                    };
                    if new_event {
                        self.history.push(self.packets_since_event);
                        self.packets_since_event = 0;
                        self.last_event_time = Some(now);
                    }
                }
                self.highest_seq = Some(seq);
                self.packets_since_event += 1;
            }
            Some(_) => {
                // Reordered or duplicate packet; count it but do not reopen
                // the loss accounting (retransmissions do not exist in the
                // unreliable TFRC variant Bullet uses).
                self.packets_since_event += 1;
            }
        }
    }

    /// The current loss event rate `p` reported in feedback packets.
    pub fn loss_event_rate(&self) -> f64 {
        self.history.loss_event_rate(self.packets_since_event)
    }

    /// Fraction of packets lost (raw, not event-based); useful for reports.
    pub fn raw_loss_fraction(&self) -> f64 {
        let total = self.packets_received + self.packets_lost;
        if total == 0 {
            0.0
        } else {
            self.packets_lost as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_means_zero_rate() {
        let mut det = LossDetector::new();
        for seq in 0..100 {
            det.on_packet(
                SimTime::from_millis(seq * 10),
                seq,
                SimDuration::from_millis(50),
            );
        }
        assert_eq!(det.loss_event_rate(), 0.0);
        assert_eq!(det.packets_lost, 0);
    }

    #[test]
    fn single_gap_creates_one_event() {
        let mut det = LossDetector::new();
        let rtt = SimDuration::from_millis(50);
        for seq in 0..50 {
            det.on_packet(SimTime::from_millis(seq * 10), seq, rtt);
        }
        // Sequence 50 is lost.
        det.on_packet(SimTime::from_millis(510), 51, rtt);
        assert_eq!(det.packets_lost, 1);
        let p = det.loss_event_rate();
        assert!(p > 0.0 && p < 0.1, "unexpected loss event rate {p}");
    }

    #[test]
    fn losses_within_one_rtt_fold_into_one_event() {
        let mut det = LossDetector::new();
        let rtt = SimDuration::from_millis(100);
        for seq in 0..20 {
            det.on_packet(SimTime::from_millis(seq), seq, rtt);
        }
        // Two gaps 10 ms apart: both within one RTT of the first event.
        det.on_packet(SimTime::from_millis(30), 21, rtt);
        det.on_packet(SimTime::from_millis(40), 23, rtt);
        assert_eq!(det.history.len(), 1);
        // A gap much later forms a second event.
        det.on_packet(SimTime::from_millis(500), 30, rtt);
        assert_eq!(det.history.len(), 2);
    }

    #[test]
    fn higher_loss_density_gives_higher_rate() {
        let run = |period: u64| {
            let mut det = LossDetector::new();
            let rtt = SimDuration::from_millis(10);
            for i in 0..2_000u64 {
                // Drop every `period`-th packet; the sequence number is `i`.
                if i % period != 0 {
                    det.on_packet(SimTime::from_millis(i * 20), i, rtt);
                }
            }
            det.loss_event_rate()
        };
        let frequent = run(10);
        let rare = run(100);
        assert!(frequent > rare);
        assert!((frequent - 0.1).abs() < 0.05, "p={frequent}");
        assert!((rare - 0.01).abs() < 0.005, "p={rare}");
    }

    #[test]
    fn history_keeps_only_eight_intervals() {
        let mut hist = LossIntervalHistory::new();
        for i in 1..=20 {
            hist.push(i);
        }
        assert_eq!(hist.len(), 8);
        // Most recent intervals dominate the average.
        let avg = hist.average_interval(1);
        assert!(avg > 13.0 && avg < 20.0, "avg={avg}");
    }

    #[test]
    fn open_interval_only_lowers_rate_when_long() {
        let mut hist = LossIntervalHistory::new();
        for _ in 0..8 {
            hist.push(10);
        }
        let base = hist.loss_event_rate(1);
        // A long open interval (no recent losses) should reduce p.
        let with_open = hist.loss_event_rate(1_000);
        assert!(with_open < base);
        // A short open interval must not *increase* p above the closed-history value.
        let with_short_open = hist.loss_event_rate(1);
        assert!(with_short_open <= base + 1e-12);
    }

    #[test]
    fn duplicates_do_not_count_as_losses() {
        let mut det = LossDetector::new();
        let rtt = SimDuration::from_millis(50);
        det.on_packet(SimTime::from_millis(0), 0, rtt);
        det.on_packet(SimTime::from_millis(1), 1, rtt);
        det.on_packet(SimTime::from_millis(2), 1, rtt);
        det.on_packet(SimTime::from_millis(3), 0, rtt);
        assert_eq!(det.packets_lost, 0);
        assert_eq!(det.packets_received, 4);
    }
}
