//! The TCP response function used by TFRC (paper §2.4).
//!
//! TFRC sets its transmission rate to the steady-state sending rate of a TCP
//! flow experiencing the same round-trip time and loss event rate, using the
//! Padhye et al. response function:
//!
//! ```text
//!                        s
//! T = ---------------------------------------------
//!     R*sqrt(2p/3) + t_RTO * 3*sqrt(3p/8) * p * (1 + 32 p^2)
//! ```
//!
//! with `s` the packet size in bytes, `R` the RTT in seconds, `p` the loss
//! event rate and `t_RTO` the retransmission timeout (TFRC uses `4R`).

/// Result of evaluating the response function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TcpRate {
    /// Sending rate in bytes per second.
    pub bytes_per_sec: f64,
}

impl TcpRate {
    /// The rate in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        self.bytes_per_sec * 8.0
    }
}

/// Evaluates the TCP response function.
///
/// Returns `f64::INFINITY` when the loss event rate is zero (TFRC handles
/// that case separately with slow-start doubling), and guards the RTT away
/// from zero so the formula stays finite.
pub fn tcp_throughput(
    packet_size_bytes: f64,
    rtt_secs: f64,
    loss_event_rate: f64,
    t_rto_secs: f64,
) -> TcpRate {
    if loss_event_rate <= 0.0 {
        return TcpRate {
            bytes_per_sec: f64::INFINITY,
        };
    }
    let p = loss_event_rate.min(1.0);
    let r = rtt_secs.max(1e-6);
    let t_rto = t_rto_secs.max(4.0 * r).max(1e-3);
    let term1 = r * (2.0 * p / 3.0).sqrt();
    let term2 = t_rto * (3.0 * (3.0 * p / 8.0).sqrt()) * p * (1.0 + 32.0 * p * p);
    TcpRate {
        bytes_per_sec: packet_size_bytes / (term1 + term2),
    }
}

/// Convenience wrapper returning bits per second with `t_RTO = 4R`,
/// the simple setting the paper says provides the necessary TCP fairness.
pub fn tcp_throughput_bps(packet_size_bytes: f64, rtt_secs: f64, loss_event_rate: f64) -> f64 {
    tcp_throughput(packet_size_bytes, rtt_secs, loss_event_rate, 4.0 * rtt_secs).bits_per_sec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_is_unbounded() {
        let rate = tcp_throughput(1500.0, 0.1, 0.0, 0.4);
        assert!(rate.bytes_per_sec.is_infinite());
    }

    #[test]
    fn rate_decreases_with_loss() {
        let low = tcp_throughput_bps(1500.0, 0.1, 0.001);
        let mid = tcp_throughput_bps(1500.0, 0.1, 0.01);
        let high = tcp_throughput_bps(1500.0, 0.1, 0.1);
        assert!(low > mid && mid > high);
    }

    #[test]
    fn rate_decreases_with_rtt() {
        let short = tcp_throughput_bps(1500.0, 0.01, 0.01);
        let long = tcp_throughput_bps(1500.0, 0.2, 0.01);
        assert!(short > long);
    }

    #[test]
    fn rate_scales_with_packet_size() {
        let small = tcp_throughput_bps(500.0, 0.1, 0.01);
        let large = tcp_throughput_bps(1500.0, 0.1, 0.01);
        assert!((large / small - 3.0).abs() < 1e-9);
    }

    #[test]
    fn matches_simplified_formula_for_small_loss() {
        // For small p the sqrt(3/2p) term dominates: T ≈ s / (R*sqrt(2p/3)).
        let p = 1e-4;
        let s = 1500.0;
        let r = 0.1;
        let exact = tcp_throughput(s, r, p, 0.4).bytes_per_sec;
        let approx = s / (r * (2.0 * p / 3.0_f64).sqrt());
        assert!((exact - approx).abs() / approx < 0.05);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let r = tcp_throughput(1500.0, 0.0, 0.5, 0.0);
        assert!(r.bytes_per_sec.is_finite());
        let r = tcp_throughput(1500.0, 10.0, 1.5, 40.0);
        assert!(r.bytes_per_sec > 0.0);
    }
}
