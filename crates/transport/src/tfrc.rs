//! TCP Friendly Rate Control (paper §2.4), in its unreliable variant.
//!
//! Bullet uses TFRC without retransmissions: lost packets are recovered from
//! other peers rather than from the original sender, so the transport only
//! has to provide a TCP-friendly, smooth sending rate. The sender adjusts its
//! rate from receiver feedback using the TCP response function; the receiver
//! detects loss events and reports the loss event rate and receive rate once
//! per round-trip time.

use bullet_netsim::{SimDuration, SimTime};

use crate::equation::tcp_throughput;
use crate::loss::LossDetector;
use crate::rate::{RateLimiter, SendOutcome};

/// Transport-level header stamped on every TFRC data packet.
///
/// The receiver needs the sender's timestamp (to compute the RTT echoed in
/// feedback) and the sender's current RTT estimate (to group losses into loss
/// events and pace its feedback).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TfrcHeader {
    /// Transport-level sequence number, private to this connection.
    pub seq: u64,
    /// Sender timestamp at transmission time.
    pub timestamp: SimTime,
    /// Sender's current RTT estimate.
    pub rtt_estimate: SimDuration,
}

/// Feedback packet sent by the receiver roughly once per RTT.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TfrcFeedback {
    /// Timestamp of the most recent data packet, echoed for RTT measurement.
    pub echo_timestamp: SimTime,
    /// Receiver processing delay between receiving that packet and sending
    /// this feedback (zero in the simulator, kept for API fidelity).
    pub echo_delay: SimDuration,
    /// Receive rate over the last feedback interval, in bytes per second.
    pub receive_rate: f64,
    /// Loss event rate `p`.
    pub loss_event_rate: f64,
}

/// Wire size of a feedback packet in bytes (IP + UDP + TFRC feedback).
pub const FEEDBACK_PACKET_BYTES: u32 = 60;

/// Configuration shared by TFRC senders.
#[derive(Clone, Copy, Debug)]
pub struct TfrcConfig {
    /// Nominal packet size `s` used in the response function, in bytes.
    pub packet_size: u32,
    /// Initial RTT estimate used before the first feedback arrives.
    pub initial_rtt: SimDuration,
    /// Burst allowance of the token bucket, in packets.
    pub burst_packets: u32,
    /// Upper bound on the sending rate, in bytes per second. Models the
    /// application-limited case (a source never needs to exceed its
    /// streaming rate by much).
    pub max_rate: f64,
}

impl Default for TfrcConfig {
    fn default() -> Self {
        TfrcConfig {
            packet_size: 1_500,
            initial_rtt: SimDuration::from_millis(200),
            burst_packets: 4,
            max_rate: 1e9 / 8.0,
        }
    }
}

/// The sending half of a TFRC connection.
#[derive(Clone, Debug)]
pub struct TfrcSender {
    config: TfrcConfig,
    limiter: RateLimiter,
    /// Smoothed RTT estimate.
    rtt: SimDuration,
    has_rtt_sample: bool,
    /// Current allowed sending rate in bytes per second.
    rate: f64,
    /// True until the first loss is reported (slow-start doubling phase).
    slow_start: bool,
    next_seq: u64,
    last_feedback: Option<SimTime>,
    /// Statistics: accepted sends.
    pub packets_sent: u64,
    /// Statistics: sends refused because the transport would block.
    pub sends_blocked: u64,
}

impl TfrcSender {
    /// Creates a sender with the given configuration.
    pub fn new(config: TfrcConfig) -> Self {
        let initial_rate = config.packet_size as f64 / config.initial_rtt.as_secs_f64().max(1e-3);
        let burst = (config.burst_packets * config.packet_size) as f64;
        TfrcSender {
            config,
            limiter: RateLimiter::new(initial_rate, burst),
            rtt: config.initial_rtt,
            has_rtt_sample: false,
            rate: initial_rate,
            slow_start: true,
            next_seq: 0,
            last_feedback: None,
            packets_sent: 0,
            sends_blocked: 0,
        }
    }

    /// Creates a sender with the default configuration.
    pub fn with_defaults() -> Self {
        TfrcSender::new(TfrcConfig::default())
    }

    /// The current allowed sending rate, in bytes per second.
    pub fn allowed_rate(&self) -> f64 {
        self.rate
    }

    /// The current smoothed RTT estimate.
    pub fn rtt(&self) -> SimDuration {
        self.rtt
    }

    /// Whether the connection is still in the slow-start doubling phase.
    pub fn in_slow_start(&self) -> bool {
        self.slow_start
    }

    /// Attempts to send a packet of `size_bytes` at `now`.
    ///
    /// On success returns the header to stamp on the packet; on failure the
    /// packet is *not* sent and the caller decides what to do (Bullet counts
    /// it as an unsuccessful send attempt and offers the data elsewhere).
    pub fn try_send(&mut self, now: SimTime, size_bytes: u32) -> Result<TfrcHeader, SendOutcome> {
        match self.limiter.try_consume(now, size_bytes) {
            SendOutcome::Accepted => {
                let header = TfrcHeader {
                    seq: self.next_seq,
                    timestamp: now,
                    rtt_estimate: self.rtt,
                };
                self.next_seq += 1;
                self.packets_sent += 1;
                Ok(header)
            }
            SendOutcome::WouldBlock => {
                self.sends_blocked += 1;
                Err(SendOutcome::WouldBlock)
            }
        }
    }

    /// Processes a feedback packet from the receiver.
    pub fn on_feedback(&mut self, now: SimTime, feedback: &TfrcFeedback) {
        // RTT sample: now - echo_timestamp - receiver processing delay.
        let sample = now.saturating_since(feedback.echo_timestamp) - feedback.echo_delay;
        if sample > SimDuration::ZERO {
            if self.has_rtt_sample {
                // Standard EWMA with q = 0.9.
                let smoothed = 0.9 * self.rtt.as_secs_f64() + 0.1 * sample.as_secs_f64();
                self.rtt = SimDuration::from_secs_f64(smoothed);
            } else {
                self.rtt = sample;
                self.has_rtt_sample = true;
            }
        }
        let p = feedback.loss_event_rate;
        if p <= 0.0 && self.slow_start {
            // No loss yet: double the rate each feedback, as TCP slow start
            // does, but never beyond twice the rate the receiver reports.
            let doubled = (self.rate * 2.0).max(self.config.packet_size as f64);
            let cap = (feedback.receive_rate * 2.0).max(self.config.packet_size as f64);
            self.rate = doubled.min(cap);
        } else {
            self.slow_start = false;
            let t_rto = 4.0 * self.rtt.as_secs_f64();
            let eq_rate = tcp_throughput(
                self.config.packet_size as f64,
                self.rtt.as_secs_f64(),
                p.max(1e-6),
                t_rto,
            )
            .bytes_per_sec;
            // TFRC never sends at more than twice the receiver's reported
            // receive rate; this bounds the rate when p is tiny.
            let cap = (feedback.receive_rate * 2.0).max(self.config.packet_size as f64);
            self.rate = eq_rate.min(cap);
        }
        self.rate = self.rate.min(self.config.max_rate);
        self.limiter.set_rate(self.rate);
        self.last_feedback = Some(now);
    }

    /// Handles the expiry of the no-feedback timer.
    ///
    /// Call this periodically (e.g. from a housekeeping timer). If no
    /// feedback has arrived within `4 * RTT` (with a floor of two seconds, as
    /// in the TFRC specification's initial timeout), the sending rate is
    /// halved — the congestion signal for a completely silent path. Returns
    /// `true` if the rate was reduced.
    pub fn maybe_nofeedback_timeout(&mut self, now: SimTime) -> bool {
        let deadline = self.rtt.saturating_mul(4).max(SimDuration::from_secs(2));
        let since = match self.last_feedback {
            Some(t) => now.saturating_since(t),
            // Never had feedback: only back off once we have sent something.
            None if self.packets_sent > 0 => deadline + SimDuration::from_micros(1),
            None => SimDuration::ZERO,
        };
        if since > deadline {
            self.rate = (self.rate / 2.0).max(self.config.packet_size as f64 / 2.0);
            self.limiter.set_rate(self.rate);
            // Restart the timeout window so repeated calls halve gradually.
            self.last_feedback = Some(now);
            true
        } else {
            false
        }
    }
}

/// The receiving half of a TFRC connection.
#[derive(Clone, Debug)]
pub struct TfrcReceiver {
    detector: LossDetector,
    last_feedback_time: Option<SimTime>,
    last_header: Option<TfrcHeader>,
    bytes_since_feedback: u64,
    /// Statistics: total data bytes received on this connection.
    pub bytes_received: u64,
    /// Statistics: total data packets received on this connection.
    pub packets_received: u64,
}

impl Default for TfrcReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl TfrcReceiver {
    /// Creates a receiver.
    pub fn new() -> Self {
        TfrcReceiver {
            detector: LossDetector::new(),
            last_feedback_time: None,
            last_header: None,
            bytes_since_feedback: 0,
            bytes_received: 0,
            packets_received: 0,
        }
    }

    /// Processes an arriving data packet. Returns a feedback packet when one
    /// is due (roughly once per RTT).
    pub fn on_data(
        &mut self,
        now: SimTime,
        header: TfrcHeader,
        size_bytes: u32,
    ) -> Option<TfrcFeedback> {
        self.detector
            .on_packet(now, header.seq, header.rtt_estimate);
        self.bytes_received += size_bytes as u64;
        self.bytes_since_feedback += size_bytes as u64;
        self.packets_received += 1;
        self.last_header = Some(header);
        let due = match self.last_feedback_time {
            None => true,
            Some(last) => now.saturating_since(last) >= header.rtt_estimate,
        };
        if !due {
            return None;
        }
        let interval = match self.last_feedback_time {
            Some(last) => now.saturating_since(last).as_secs_f64(),
            None => header.rtt_estimate.as_secs_f64(),
        }
        .max(1e-3);
        let feedback = TfrcFeedback {
            echo_timestamp: header.timestamp,
            echo_delay: SimDuration::ZERO,
            receive_rate: self.bytes_since_feedback as f64 / interval,
            loss_event_rate: self.detector.loss_event_rate(),
        };
        self.last_feedback_time = Some(now);
        self.bytes_since_feedback = 0;
        Some(feedback)
    }

    /// Current loss event rate estimate.
    pub fn loss_event_rate(&self) -> f64 {
        self.detector.loss_event_rate()
    }

    /// Raw fraction of packets lost on this connection.
    pub fn raw_loss_fraction(&self) -> f64 {
        self.detector.raw_loss_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_lossless(rounds: usize) -> (TfrcSender, TfrcReceiver) {
        // A crude in-test loop: every 100 ms the sender sends as much as it
        // may, packets arrive 50 ms later, feedback returns 50 ms after that.
        let mut sender = TfrcSender::with_defaults();
        let mut receiver = TfrcReceiver::new();
        let mut pending_feedback: Vec<(SimTime, TfrcFeedback)> = Vec::new();
        for round in 0..rounds {
            let now = SimTime::from_millis(round as u64 * 100);
            for (at, fb) in pending_feedback.drain(..) {
                sender.on_feedback(at, &fb);
            }
            while let Ok(header) = sender.try_send(now, 1_500) {
                let arrive = now + SimDuration::from_millis(50);
                if let Some(fb) = receiver.on_data(arrive, header, 1_500) {
                    pending_feedback.push((arrive + SimDuration::from_millis(50), fb));
                }
            }
        }
        (sender, receiver)
    }

    #[test]
    fn slow_start_doubles_until_substantial_rate() {
        let (sender, receiver) = drive_lossless(50);
        // With no loss the sender should have ramped well past its initial
        // one-packet-per-RTT rate.
        assert!(
            sender.allowed_rate() > 50_000.0,
            "rate={}",
            sender.allowed_rate()
        );
        assert!(receiver.loss_event_rate() == 0.0);
        assert!(sender.packets_sent > 100);
    }

    #[test]
    fn rtt_estimate_converges_to_path_rtt() {
        let (sender, _) = drive_lossless(50);
        let rtt = sender.rtt().as_secs_f64();
        assert!((0.08..0.25).contains(&rtt), "rtt={rtt}");
    }

    #[test]
    fn loss_feedback_reduces_rate_to_equation_value() {
        let mut sender = TfrcSender::with_defaults();
        // Ramp up through slow start first: repeated no-loss feedback.
        for i in 1..=10u64 {
            sender.on_feedback(
                SimTime::from_millis(100 * i),
                &TfrcFeedback {
                    echo_timestamp: SimTime::from_millis(100 * (i - 1)),
                    echo_delay: SimDuration::ZERO,
                    receive_rate: 1e6,
                    loss_event_rate: 0.0,
                },
            );
        }
        let before = sender.allowed_rate();
        assert!(
            before > 500_000.0,
            "slow start should have ramped up, rate={before}"
        );
        sender.on_feedback(
            SimTime::from_millis(1_200),
            &TfrcFeedback {
                echo_timestamp: SimTime::from_millis(1_100),
                echo_delay: SimDuration::ZERO,
                receive_rate: 1e6,
                loss_event_rate: 0.05,
            },
        );
        let after = sender.allowed_rate();
        assert!(
            after < before,
            "rate should drop on loss ({before} -> {after})"
        );
        assert!(!sender.in_slow_start());
        // And it should be close to the response-function value.
        let expected = tcp_throughput(
            1_500.0,
            sender.rtt().as_secs_f64(),
            0.05,
            4.0 * sender.rtt().as_secs_f64(),
        )
        .bytes_per_sec;
        let ratio = after / expected;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "after={after} expected={expected}"
        );
    }

    #[test]
    fn would_block_when_rate_exhausted() {
        let mut sender = TfrcSender::with_defaults();
        let now = SimTime::ZERO;
        let mut accepted = 0;
        for _ in 0..100 {
            if sender.try_send(now, 1_500).is_ok() {
                accepted += 1;
            }
        }
        // Only the burst allowance may be accepted instantaneously.
        assert_eq!(accepted, TfrcConfig::default().burst_packets as usize);
        assert!(sender.sends_blocked > 0);
    }

    #[test]
    fn nofeedback_timeout_halves_rate() {
        let mut sender = TfrcSender::with_defaults();
        sender.on_feedback(
            SimTime::from_millis(100),
            &TfrcFeedback {
                echo_timestamp: SimTime::ZERO,
                echo_delay: SimDuration::ZERO,
                receive_rate: 1e6,
                loss_event_rate: 0.0,
            },
        );
        let before = sender.allowed_rate();
        assert!(!sender.maybe_nofeedback_timeout(SimTime::from_millis(600)));
        assert!(sender.maybe_nofeedback_timeout(SimTime::from_secs(10)));
        assert!(sender.allowed_rate() < before);
    }

    #[test]
    fn receiver_paces_feedback_to_about_one_per_rtt() {
        let mut receiver = TfrcReceiver::new();
        let rtt = SimDuration::from_millis(100);
        let mut feedbacks = 0;
        for i in 0..100u64 {
            let now = SimTime::from_millis(i * 10);
            let header = TfrcHeader {
                seq: i,
                timestamp: now,
                rtt_estimate: rtt,
            };
            if receiver.on_data(now, header, 1_500).is_some() {
                feedbacks += 1;
            }
        }
        // 1 second of data, 100 ms RTT: roughly 10 feedback packets.
        assert!((8..=12).contains(&feedbacks), "feedbacks={feedbacks}");
    }

    #[test]
    fn receive_rate_reflects_delivered_bytes() {
        let mut receiver = TfrcReceiver::new();
        let rtt = SimDuration::from_millis(100);
        let mut last_rate = 0.0;
        for i in 0..200u64 {
            let now = SimTime::from_millis(i * 10);
            let header = TfrcHeader {
                seq: i,
                timestamp: now,
                rtt_estimate: rtt,
            };
            if let Some(fb) = receiver.on_data(now, header, 1_500) {
                last_rate = fb.receive_rate;
            }
        }
        // 1500 B every 10 ms = 150 KB/s.
        assert!(
            (100_000.0..200_000.0).contains(&last_rate),
            "rate={last_rate}"
        );
    }
}
