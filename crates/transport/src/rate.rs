//! Token-bucket rate limiting with non-blocking send semantics.
//!
//! Bullet's disjoint-send routine (paper Fig. 5) keys on whether "the
//! transport would block" on a send. We model a non-blocking transport
//! socket as a token bucket refilled at the connection's allowed rate: a send
//! is *accepted* when enough tokens are available and *would block*
//! otherwise.

use bullet_netsim::SimTime;

/// Outcome of offering a packet to a non-blocking transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The transport accepted the packet; it was sent on the wire.
    Accepted,
    /// Sending now would exceed the TCP-friendly fair share; the packet was
    /// not sent (the paper counts this as an unsuccessful send attempt).
    WouldBlock,
}

impl SendOutcome {
    /// Returns `true` when the packet was accepted.
    pub fn is_accepted(self) -> bool {
        matches!(self, SendOutcome::Accepted)
    }
}

/// A token bucket expressed in bytes.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl RateLimiter {
    /// Creates a limiter with the given sustained rate and burst allowance.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64) -> Self {
        RateLimiter {
            rate_bytes_per_sec: rate_bytes_per_sec.max(0.0),
            burst_bytes: burst_bytes.max(1.0),
            tokens: burst_bytes.max(1.0),
            last_refill: SimTime::ZERO,
        }
    }

    /// Current sustained rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate_bytes_per_sec
    }

    /// Updates the sustained rate, keeping accumulated tokens.
    pub fn set_rate(&mut self, rate_bytes_per_sec: f64) {
        self.rate_bytes_per_sec = rate_bytes_per_sec.max(0.0);
    }

    /// Updates the burst allowance.
    pub fn set_burst(&mut self, burst_bytes: f64) {
        self.burst_bytes = burst_bytes.max(1.0);
        self.tokens = self.tokens.min(self.burst_bytes);
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        if elapsed > 0.0 {
            self.tokens = (self.tokens + elapsed * self.rate_bytes_per_sec).min(self.burst_bytes);
            self.last_refill = now;
        }
    }

    /// Attempts to consume `bytes` tokens at time `now`.
    pub fn try_consume(&mut self, now: SimTime, bytes: u32) -> SendOutcome {
        self.refill(now);
        let needed = bytes as f64;
        if self.tokens >= needed {
            self.tokens -= needed;
            SendOutcome::Accepted
        } else {
            SendOutcome::WouldBlock
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::SimDuration;

    #[test]
    fn burst_is_available_immediately() {
        let mut rl = RateLimiter::new(1_000.0, 3_000.0);
        let now = SimTime::ZERO;
        assert!(rl.try_consume(now, 1_500).is_accepted());
        assert!(rl.try_consume(now, 1_500).is_accepted());
        assert_eq!(rl.try_consume(now, 1_500), SendOutcome::WouldBlock);
    }

    #[test]
    fn tokens_refill_at_the_configured_rate() {
        let mut rl = RateLimiter::new(1_000.0, 1_000.0);
        let mut now = SimTime::ZERO;
        assert!(rl.try_consume(now, 1_000).is_accepted());
        assert_eq!(rl.try_consume(now, 500), SendOutcome::WouldBlock);
        now += SimDuration::from_millis(500);
        // 500 ms at 1000 B/s = 500 bytes.
        assert!(rl.try_consume(now, 500).is_accepted());
        assert_eq!(rl.try_consume(now, 100), SendOutcome::WouldBlock);
    }

    #[test]
    fn tokens_cap_at_burst() {
        let mut rl = RateLimiter::new(1_000_000.0, 2_000.0);
        let later = SimTime::from_secs(100);
        assert!((rl.available(later) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_change_takes_effect() {
        let mut rl = RateLimiter::new(0.0, 100.0);
        let mut now = SimTime::ZERO;
        assert!(rl.try_consume(now, 100).is_accepted());
        now += SimDuration::from_secs(10);
        assert_eq!(rl.try_consume(now, 100), SendOutcome::WouldBlock);
        rl.set_rate(1_000.0);
        now += SimDuration::from_secs(1);
        assert!(rl.try_consume(now, 100).is_accepted());
    }

    #[test]
    fn zero_rate_never_accepts_after_burst() {
        let mut rl = RateLimiter::new(0.0, 10.0);
        assert!(rl.try_consume(SimTime::ZERO, 10).is_accepted());
        assert_eq!(
            rl.try_consume(SimTime::from_secs(1_000), 1),
            SendOutcome::WouldBlock
        );
    }
}
