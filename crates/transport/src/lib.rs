//! # bullet-transport
//!
//! Congestion-controlled transports used by Bullet and the baselines.
//!
//! The paper transfers data both down the overlay tree and between mesh
//! peers using an **unreliable variant of TFRC** (§2.4): equation-based, TCP
//! friendly, but without retransmissions because missing data is recovered
//! from other peers instead. This crate implements:
//!
//! * the TCP response function ([`equation::tcp_throughput`]) shared by TFRC
//!   and the offline bottleneck-tree estimator,
//! * loss-event detection and the eight-interval weighted loss history
//!   ([`loss`]),
//! * the TFRC sender/receiver state machines ([`tfrc`]),
//! * a best-effort UDP-like sender ([`udp`]), and
//! * the non-blocking send primitive ([`rate::RateLimiter`]) whose
//!   `WouldBlock` outcome drives Bullet's disjoint-send decisions (Fig. 5).
//!
//! Everything here is a pure state machine: no clocks, no sockets, no
//! simulator types other than `SimTime`/`SimDuration`, which makes the same
//! code usable under the discrete-event simulator and the live runtime.

#![warn(missing_docs)]

pub mod equation;
pub mod loss;
pub mod rate;
pub mod tfrc;
pub mod udp;

pub use equation::{tcp_throughput, tcp_throughput_bps, TcpRate};
pub use loss::{LossDetector, LossIntervalHistory};
pub use rate::{RateLimiter, SendOutcome};
pub use tfrc::{
    TfrcConfig, TfrcFeedback, TfrcHeader, TfrcReceiver, TfrcSender, FEEDBACK_PACKET_BYTES,
};
pub use udp::UdpSender;
