//! The flight recorder: a fixed-capacity ring buffer of structured,
//! sim-time-stamped events.
//!
//! Recording is allocation-free after construction (the ring is
//! pre-allocated, events are plain `Copy` data) and never consults a
//! clock or an RNG: the simulator passes its own `now` in. When the ring
//! fills, the oldest events are evicted — a flight recorder keeps the
//! *end* of the story, which is where a misbehaving run dies.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Simulator data-path events: send / deliver / drop / timer-fire.
pub const CAT_SIM: u32 = 1 << 0;
/// Block-journey events: sealed / tree push / mesh serve / accept.
pub const CAT_JOURNEY: u32 = 1 << 1;
/// Protocol control decisions: re-attach ladder, quarantine, reconcile.
pub const CAT_PROTO: u32 = 1 << 2;
/// Route-repair events recorded when the network mutates mid-run.
pub const CAT_ROUTE: u32 = 1 << 3;
/// Every category.
pub const CAT_ALL: u32 = CAT_SIM | CAT_JOURNEY | CAT_PROTO | CAT_ROUTE;

/// Default ring capacity when the spec does not say `cap=N`.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// The node id used for events that belong to the network itself rather
/// than any one overlay node (route repairs).
pub const NETWORK_NODE: u32 = u32::MAX;

/// Why the simulator dropped a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The sender was marked failed when the send was attempted.
    SrcFailed,
    /// The destination was failed at delivery time.
    DestFailed,
    /// Source and destination were on opposite sides of a partition.
    Partitioned,
    /// A control-message fault plan dropped it.
    Faulted,
    /// An adversarial sender stalled the data path.
    Stalled,
    /// The network had no route between the endpoints.
    NoRoute,
    /// Lost inside the network: queue overflow, random loss, or a dead
    /// router on the path.
    Network,
    /// The destination node's ingress queue budget was exhausted (the
    /// deterministic overload resource model shed it).
    Overload,
}

impl DropReason {
    fn as_str(self) -> &'static str {
        match self {
            DropReason::SrcFailed => "src_failed",
            DropReason::DestFailed => "dest_failed",
            DropReason::Partitioned => "partitioned",
            DropReason::Faulted => "faulted",
            DropReason::Stalled => "stalled",
            DropReason::NoRoute => "no_route",
            DropReason::Network => "network",
            DropReason::Overload => "overload",
        }
    }
}

/// The payload of one recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceData {
    /// A message entered the simulator (recorded at send time).
    Send {
        /// Destination overlay node.
        to: u32,
        /// `true` for control-class traffic, `false` for data.
        control: bool,
        /// Wire size in bytes.
        bytes: u32,
    },
    /// A message reached its destination agent.
    Deliver {
        /// Originating overlay node.
        from: u32,
        /// `true` for control-class traffic, `false` for data.
        control: bool,
        /// Wire size in bytes.
        bytes: u32,
    },
    /// A message was dropped; `node` is the sender.
    Drop {
        /// Destination the message was addressed to.
        to: u32,
        /// Where on the path it died.
        reason: DropReason,
    },
    /// A timer fired and was dispatched to its agent.
    TimerFire {
        /// The agent-chosen timer tag.
        tag: u64,
    },
    /// The network mutated and routes were repaired; `node` is
    /// [`NETWORK_NODE`]. Counters are cumulative for the run.
    RouteRepair {
        /// Route-affecting mutations applied so far.
        mutations: u64,
        /// Memoized routes invalidated so far.
        invalidated: u64,
    },
    /// The source sealed a new block; `node` is the source.
    BlockSealed {
        /// Block sequence number.
        seq: u64,
    },
    /// A node pushed a block down a tree edge to a child.
    TreePush {
        /// Block sequence number.
        seq: u64,
        /// The child the block was pushed to.
        to: u32,
    },
    /// A mesh sender served a block to a recovery receiver.
    MeshServe {
        /// Block sequence number.
        seq: u64,
        /// The receiver being served.
        to: u32,
    },
    /// A node received a data block (duplicate or not).
    BlockAccept {
        /// Block sequence number.
        seq: u64,
        /// The overlay node it arrived from.
        from: u32,
        /// Whether it arrived down the tree edge from the parent.
        from_parent: bool,
        /// Whether the node had already seen this block.
        duplicate: bool,
    },
    /// The re-attach ladder started: the node declared itself orphaned.
    ReattachStart {
        /// The parent that went silent.
        dead_parent: u32,
    },
    /// One rung of the re-attach ladder: a candidate parent was tried.
    ReattachStep {
        /// The candidate being asked.
        candidate: u32,
        /// 1-based attempt number within this ladder.
        attempt: u32,
    },
    /// The ladder finished: a new parent accepted the node.
    ReattachDone {
        /// The accepting parent.
        new_parent: u32,
        /// Sim time spent orphaned, in microseconds.
        wait_us: u64,
    },
    /// A misbehaving peer was quarantined by the integrity layer.
    Quarantine {
        /// The evicted peer.
        peer: u32,
    },
    /// A RanSub-epoch reconciliation round refreshed the sender set.
    ReconcileRound {
        /// Number of mesh senders refreshed this round.
        senders: u32,
    },
}

impl TraceData {
    /// The category bit this event belongs to (for `BULLET_TRACE` masks).
    pub fn category(&self) -> u32 {
        match self {
            TraceData::Send { .. }
            | TraceData::Deliver { .. }
            | TraceData::Drop { .. }
            | TraceData::TimerFire { .. } => CAT_SIM,
            TraceData::BlockSealed { .. }
            | TraceData::TreePush { .. }
            | TraceData::MeshServe { .. }
            | TraceData::BlockAccept { .. } => CAT_JOURNEY,
            TraceData::ReattachStart { .. }
            | TraceData::ReattachStep { .. }
            | TraceData::ReattachDone { .. }
            | TraceData::Quarantine { .. }
            | TraceData::ReconcileRound { .. } => CAT_PROTO,
            TraceData::RouteRepair { .. } => CAT_ROUTE,
        }
    }

    /// The stable `kind` string used in the JSONL schema.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceData::Send { .. } => "send",
            TraceData::Deliver { .. } => "deliver",
            TraceData::Drop { .. } => "drop",
            TraceData::TimerFire { .. } => "timer_fire",
            TraceData::RouteRepair { .. } => "route_repair",
            TraceData::BlockSealed { .. } => "block_sealed",
            TraceData::TreePush { .. } => "tree_push",
            TraceData::MeshServe { .. } => "mesh_serve",
            TraceData::BlockAccept { .. } => "block_accept",
            TraceData::ReattachStart { .. } => "reattach_start",
            TraceData::ReattachStep { .. } => "reattach_step",
            TraceData::ReattachDone { .. } => "reattach_done",
            TraceData::Quarantine { .. } => "quarantine",
            TraceData::ReconcileRound { .. } => "reconcile_round",
        }
    }
}

/// One recorded event: sim time, the node it happened on, the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time in microseconds.
    pub t_us: u64,
    /// The overlay node the event happened on ([`NETWORK_NODE`] for
    /// network-level events).
    pub node: u32,
    /// The event payload.
    pub data: TraceData,
}

impl TraceEvent {
    /// Append this event as one JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_us\":{},\"node\":{},\"kind\":\"{}\"",
            self.t_us,
            self.node,
            self.data.kind()
        );
        match self.data {
            TraceData::Send { to, control, bytes } => {
                let _ = write!(out, ",\"to\":{to},\"control\":{control},\"bytes\":{bytes}");
            }
            TraceData::Deliver {
                from,
                control,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"control\":{control},\"bytes\":{bytes}"
                );
            }
            TraceData::Drop { to, reason } => {
                let _ = write!(out, ",\"to\":{},\"reason\":\"{}\"", to, reason.as_str());
            }
            TraceData::TimerFire { tag } => {
                let _ = write!(out, ",\"tag\":{tag}");
            }
            TraceData::RouteRepair {
                mutations,
                invalidated,
            } => {
                let _ = write!(
                    out,
                    ",\"mutations\":{mutations},\"invalidated\":{invalidated}"
                );
            }
            TraceData::BlockSealed { seq } => {
                let _ = write!(out, ",\"seq\":{seq}");
            }
            TraceData::TreePush { seq, to } | TraceData::MeshServe { seq, to } => {
                let _ = write!(out, ",\"seq\":{seq},\"to\":{to}");
            }
            TraceData::BlockAccept {
                seq,
                from,
                from_parent,
                duplicate,
            } => {
                let _ = write!(
                    out,
                    ",\"seq\":{seq},\"from\":{from},\"from_parent\":{from_parent},\"duplicate\":{duplicate}"
                );
            }
            TraceData::ReattachStart { dead_parent } => {
                let _ = write!(out, ",\"dead_parent\":{dead_parent}");
            }
            TraceData::ReattachStep { candidate, attempt } => {
                let _ = write!(out, ",\"candidate\":{candidate},\"attempt\":{attempt}");
            }
            TraceData::ReattachDone {
                new_parent,
                wait_us,
            } => {
                let _ = write!(out, ",\"new_parent\":{new_parent},\"wait_us\":{wait_us}");
            }
            TraceData::Quarantine { peer } => {
                let _ = write!(out, ",\"peer\":{peer}");
            }
            TraceData::ReconcileRound { senders } => {
                let _ = write!(out, ",\"senders\":{senders}");
            }
        }
        out.push('}');
    }
}

/// A parsed `BULLET_TRACE` spec.
///
/// Grammar (comma-separated, order-free):
///
/// ```text
/// BULLET_TRACE = term ("," term)*
/// term         = "sim" | "journey" | "proto" | "route" | "all"
///              | "cap=" usize          # ring capacity (default 65536)
///              | "node=" u32           # keep only this node's events
/// ```
///
/// Examples: `all`, `journey,proto`, `sim,cap=4096,node=17`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Bitmask of `CAT_*` categories to record.
    pub mask: u32,
    /// Ring capacity (oldest events evicted beyond this).
    pub capacity: usize,
    /// If set, keep only events whose `node` matches.
    pub node: Option<u32>,
}

impl TraceSpec {
    /// Parse a spec string. Errors name the offending term.
    pub fn parse(spec: &str) -> Result<TraceSpec, String> {
        let mut mask = 0u32;
        let mut capacity = DEFAULT_CAPACITY;
        let mut node = None;
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(v) = term.strip_prefix("cap=") {
                capacity = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad capacity in trace spec: {term:?}"))?;
                if capacity == 0 {
                    return Err("trace spec capacity must be nonzero".into());
                }
            } else if let Some(v) = term.strip_prefix("node=") {
                node = Some(
                    v.parse::<u32>()
                        .map_err(|_| format!("bad node filter in trace spec: {term:?}"))?,
                );
            } else {
                mask |= match term {
                    "sim" => CAT_SIM,
                    "journey" => CAT_JOURNEY,
                    "proto" => CAT_PROTO,
                    "route" => CAT_ROUTE,
                    "all" | "1" | "on" | "true" => CAT_ALL,
                    other => return Err(format!("unknown trace spec term: {other:?}")),
                };
            }
        }
        if mask == 0 {
            return Err(format!(
                "trace spec {spec:?} selects no categories (use sim/journey/proto/route/all)"
            ));
        }
        Ok(TraceSpec {
            mask,
            capacity,
            node,
        })
    }

    /// Read `BULLET_TRACE` from the environment. Unset or empty means
    /// tracing stays off; a malformed spec panics with the parse error
    /// (a silently ignored typo would masquerade as "no trace output").
    pub fn from_env() -> Option<TraceSpec> {
        match std::env::var("BULLET_TRACE") {
            Ok(spec) if !spec.trim().is_empty() => {
                Some(TraceSpec::parse(&spec).unwrap_or_else(|e| panic!("BULLET_TRACE: {e}")))
            }
            _ => None,
        }
    }
}

/// The flight recorder ring. See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    mask: u32,
    node_filter: Option<u32>,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    recorded: u64,
}

impl FlightRecorder {
    /// Build a recorder from a parsed spec; the ring is pre-allocated so
    /// recording never allocates.
    pub fn new(spec: &TraceSpec) -> FlightRecorder {
        FlightRecorder {
            mask: spec.mask,
            node_filter: spec.node,
            capacity: spec.capacity,
            events: VecDeque::with_capacity(spec.capacity),
            recorded: 0,
        }
    }

    /// Whether any category in `mask` is being recorded. Callers use this
    /// to skip constructing event payloads entirely when a category is
    /// filtered out.
    #[inline]
    pub fn wants(&self, mask: u32) -> bool {
        self.mask & mask != 0
    }

    /// Record one event (subject to the category mask and node filter).
    #[inline]
    pub fn record(&mut self, t_us: u64, node: u32, data: TraceData) {
        if self.mask & data.category() == 0 {
            return;
        }
        if let Some(only) = self.node_filter {
            if node != only {
                return;
            }
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent { t_us, node, data });
        self.recorded += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events recorded over the run, including any since evicted.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted from the ring to make room.
    pub fn evicted(&self) -> u64 {
        self.recorded - self.events.len() as u64
    }

    /// Render the ring as JSONL, one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for event in &self.events {
            event.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_round_trips() {
        let spec = TraceSpec::parse("journey, proto ,cap=128,node=7").unwrap();
        assert_eq!(spec.mask, CAT_JOURNEY | CAT_PROTO);
        assert_eq!(spec.capacity, 128);
        assert_eq!(spec.node, Some(7));
        assert_eq!(TraceSpec::parse("all").unwrap().mask, CAT_ALL);
        assert_eq!(TraceSpec::parse("1").unwrap().capacity, DEFAULT_CAPACITY);
        assert!(TraceSpec::parse("bogus").is_err());
        assert!(TraceSpec::parse("cap=0").is_err());
        assert!(TraceSpec::parse("cap=12").is_err(), "mask-less spec");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_total() {
        let spec = TraceSpec::parse("sim,cap=2").unwrap();
        let mut rec = FlightRecorder::new(&spec);
        for i in 0..5u64 {
            rec.record(i, 0, TraceData::TimerFire { tag: i });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.evicted(), 3);
        let tags: Vec<_> = rec
            .events()
            .map(|e| match e.data {
                TraceData::TimerFire { tag } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, [3, 4], "the ring keeps the end of the story");
    }

    #[test]
    fn category_mask_and_node_filter_drop_events() {
        let spec = TraceSpec::parse("journey,node=3").unwrap();
        let mut rec = FlightRecorder::new(&spec);
        rec.record(1, 3, TraceData::TimerFire { tag: 9 }); // wrong category
        rec.record(2, 4, TraceData::BlockSealed { seq: 1 }); // wrong node
        rec.record(3, 3, TraceData::BlockSealed { seq: 2 });
        assert_eq!(rec.len(), 1);
        assert!(rec.wants(CAT_JOURNEY));
        assert!(!rec.wants(CAT_SIM));
    }

    #[test]
    fn jsonl_lines_carry_the_schema_fields() {
        let spec = TraceSpec::parse("all").unwrap();
        let mut rec = FlightRecorder::new(&spec);
        rec.record(
            10,
            2,
            TraceData::Send {
                to: 5,
                control: false,
                bytes: 1_500,
            },
        );
        rec.record(
            11,
            5,
            TraceData::Drop {
                to: 2,
                reason: DropReason::Network,
            },
        );
        let jsonl = rec.to_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"t_us\":10,\"node\":2,\"kind\":\"send\",\"to\":5,\"control\":false,\"bytes\":1500}"
        );
        assert_eq!(
            lines[1],
            "{\"t_us\":11,\"node\":5,\"kind\":\"drop\",\"to\":2,\"reason\":\"network\"}"
        );
    }
}
