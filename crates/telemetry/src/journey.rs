//! Block-journey spans: the per-sequence causal story of how each block
//! moved through the overlay.
//!
//! A journey is derived (at export time, never on the hot path) from a
//! recorded trace: the block is sealed at the source, pushed down tree
//! edges, served sideways by mesh senders to recovering receivers, and
//! accepted — once — by each node that gets it. One query then answers
//! "how did block N reach the p95 node": the accept list is in arrival
//! order, each hop labelled with whether it came down the tree edge or
//! across the mesh.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::{TraceData, TraceEvent};

/// One node's first (non-duplicate) acceptance of a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// Arrival time in simulated microseconds.
    pub t_us: u64,
    /// The accepting node.
    pub node: u32,
    /// The overlay node it arrived from.
    pub from: u32,
    /// `true` when the block crossed a mesh edge (recovery fetch or peer
    /// serve) rather than the tree edge from the parent.
    pub via_mesh: bool,
}

/// The full span of one block's dissemination.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockJourney {
    /// Block sequence number.
    pub seq: u64,
    /// When the source sealed it (absent if evicted from the ring).
    pub sealed_us: Option<u64>,
    /// First acceptance per node, in arrival order.
    pub accepts: Vec<HopRecord>,
    /// Tree-push sends observed for this block.
    pub tree_pushes: u64,
    /// Mesh serves observed for this block.
    pub mesh_serves: u64,
    /// Duplicate receptions observed for this block.
    pub duplicates: u64,
}

impl BlockJourney {
    /// How many nodes first got this block across a mesh edge.
    pub fn mesh_recovery_hops(&self) -> usize {
        self.accepts.iter().filter(|h| h.via_mesh).count()
    }

    /// The absolute sim time at which `fraction` of `receivers` nodes had
    /// accepted the block, or `None` if it never reached that many.
    pub fn time_to_fraction_us(&self, receivers: usize, fraction: f64) -> Option<u64> {
        if receivers == 0 {
            return None;
        }
        let need = ((fraction * receivers as f64).ceil() as usize).max(1);
        self.accepts.get(need.saturating_sub(1)).map(|h| h.t_us)
    }

    /// Like [`Self::time_to_fraction_us`] but relative to the sealing
    /// instant — the "time to reach the p-th percentile node" span.
    pub fn reach_delta_us(&self, receivers: usize, fraction: f64) -> Option<u64> {
        let sealed = self.sealed_us?;
        self.time_to_fraction_us(receivers, fraction)
            .map(|t| t.saturating_sub(sealed))
    }
}

/// Fold a recorded trace (oldest event first) into one journey per
/// sequence number, ordered by sequence.
pub fn block_journeys<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> Vec<BlockJourney> {
    let mut journeys: BTreeMap<u64, BlockJourney> = BTreeMap::new();
    fn entry(map: &mut BTreeMap<u64, BlockJourney>, seq: u64) -> &mut BlockJourney {
        map.entry(seq).or_insert_with(|| BlockJourney {
            seq,
            ..BlockJourney::default()
        })
    }
    for event in events {
        match event.data {
            TraceData::BlockSealed { seq } => {
                let j = entry(&mut journeys, seq);
                if j.sealed_us.is_none() {
                    j.sealed_us = Some(event.t_us);
                }
            }
            TraceData::TreePush { seq, .. } => entry(&mut journeys, seq).tree_pushes += 1,
            TraceData::MeshServe { seq, .. } => entry(&mut journeys, seq).mesh_serves += 1,
            TraceData::BlockAccept {
                seq,
                from,
                from_parent,
                duplicate,
            } => {
                let j = entry(&mut journeys, seq);
                if duplicate {
                    j.duplicates += 1;
                } else {
                    j.accepts.push(HopRecord {
                        t_us: event.t_us,
                        node: event.node,
                        from,
                        via_mesh: !from_parent,
                    });
                }
            }
            _ => {}
        }
    }
    journeys.into_values().collect()
}

fn write_opt(out: &mut String, value: Option<u64>) {
    match value {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Render journeys as JSONL: one object per block, with the accept count,
/// hop mix, and time-to-reach percentiles (relative to sealing) against
/// the given receiver population.
pub fn journeys_to_jsonl(journeys: &[BlockJourney], receivers: usize) -> String {
    let mut out = String::with_capacity(journeys.len() * 96);
    for j in journeys {
        let _ = write!(out, "{{\"seq\":{},\"sealed_us\":", j.seq);
        write_opt(&mut out, j.sealed_us);
        let _ = write!(
            out,
            ",\"accepts\":{},\"tree_pushes\":{},\"mesh_serves\":{},\"mesh_recovery_hops\":{},\"duplicates\":{},\"reach_p50_us\":",
            j.accepts.len(),
            j.tree_pushes,
            j.mesh_serves,
            j.mesh_recovery_hops(),
            j.duplicates
        );
        write_opt(&mut out, j.reach_delta_us(receivers, 0.50));
        out.push_str(",\"reach_p95_us\":");
        write_opt(&mut out, j.reach_delta_us(receivers, 0.95));
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_us: u64, node: u32, data: TraceData) -> TraceEvent {
        TraceEvent { t_us, node, data }
    }

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            ev(100, 0, TraceData::BlockSealed { seq: 7 }),
            ev(110, 0, TraceData::TreePush { seq: 7, to: 1 }),
            ev(
                150,
                1,
                TraceData::BlockAccept {
                    seq: 7,
                    from: 0,
                    from_parent: true,
                    duplicate: false,
                },
            ),
            ev(200, 1, TraceData::MeshServe { seq: 7, to: 2 }),
            ev(
                260,
                2,
                TraceData::BlockAccept {
                    seq: 7,
                    from: 1,
                    from_parent: false,
                    duplicate: false,
                },
            ),
            ev(
                300,
                2,
                TraceData::BlockAccept {
                    seq: 7,
                    from: 0,
                    from_parent: true,
                    duplicate: true,
                },
            ),
        ]
    }

    #[test]
    fn journey_reconstructs_the_causal_story() {
        let trace = sample_trace();
        let journeys = block_journeys(trace.iter());
        assert_eq!(journeys.len(), 1);
        let j = &journeys[0];
        assert_eq!(j.seq, 7);
        assert_eq!(j.sealed_us, Some(100));
        assert_eq!(j.tree_pushes, 1);
        assert_eq!(j.mesh_serves, 1);
        assert_eq!(j.duplicates, 1);
        assert_eq!(j.accepts.len(), 2);
        assert!(!j.accepts[0].via_mesh, "node 1 got it down the tree");
        assert!(j.accepts[1].via_mesh, "node 2 recovered it over the mesh");
        assert_eq!(j.mesh_recovery_hops(), 1);
    }

    #[test]
    fn reach_percentiles_are_relative_to_sealing() {
        let trace = sample_trace();
        let journeys = block_journeys(trace.iter());
        let j = &journeys[0];
        // 2 receivers: p50 needs 1 accept (t=150), p95 needs 2 (t=260).
        assert_eq!(j.reach_delta_us(2, 0.50), Some(50));
        assert_eq!(j.reach_delta_us(2, 0.95), Some(160));
        // A fraction the block never reached yields None.
        assert_eq!(j.reach_delta_us(3, 0.95), None);
    }

    #[test]
    fn jsonl_uses_null_for_unreached_fractions() {
        let trace = sample_trace();
        let journeys = block_journeys(trace.iter());
        let line = journeys_to_jsonl(&journeys, 63);
        assert_eq!(
            line.trim(),
            "{\"seq\":7,\"sealed_us\":100,\"accepts\":2,\"tree_pushes\":1,\"mesh_serves\":1,\
             \"mesh_recovery_hops\":1,\"duplicates\":1,\"reach_p50_us\":null,\"reach_p95_us\":null}"
        );
    }
}
