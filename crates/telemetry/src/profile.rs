//! Self-profiling: what did the simulator itself do, and how fast.
//!
//! The profile splits into two halves with different determinism
//! contracts. The **sim-derived** half (events processed, event-queue
//! depth, pool occupancy) is a pure function of the simulation and is
//! byte-identical across hosts and thread counts. The **wall-clock**
//! half (run wall time, events/s, scenario-mutation wall share) is where
//! real-clock readings are quarantined: those fields are excluded from
//! `PartialEq` so a `RunResult` carrying a profile still compares equal
//! across `BULLET_THREADS` settings, and they surface only in BENCH
//! envelopes and probe output.

use std::fmt::Write as _;

/// A per-run simulator profile. See the module docs for the equality
/// contract.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfProfile {
    /// Events dispatched by the event loop (deterministic).
    pub events: u64,
    /// Peak event-queue depth observed, heap + current-instant FIFO
    /// (deterministic).
    pub peak_queue_depth: u64,
    /// Mean event-queue depth over all dispatches (deterministic).
    pub mean_queue_depth: f64,
    /// Flight-slab slots allocated — the in-flight message high-water
    /// mark (deterministic).
    pub flight_slots: u64,
    /// Flight-slab slots free at the end of the run (deterministic).
    pub flight_free_slots: u64,
    /// Timer slots allocated (deterministic).
    pub timer_slots: u64,
    /// Timers still live at the end of the run (deterministic).
    pub live_timers: u64,
    /// Wall-clock seconds the run loop took (wall; excluded from `==`).
    pub wall_secs: f64,
    /// Event-loop throughput, events per wall second (wall; excluded
    /// from `==`).
    pub events_per_sec: f64,
    /// Wall-clock seconds spent applying route-affecting scenario
    /// mutations — the routing-repair share of the run (wall; excluded
    /// from `==`).
    pub repair_wall_secs: f64,
}

impl PartialEq for SelfProfile {
    /// Wall-clock fields are deliberately ignored: two profiles of the
    /// same run on different machines are "equal".
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.peak_queue_depth == other.peak_queue_depth
            && self.mean_queue_depth == other.mean_queue_depth
            && self.flight_slots == other.flight_slots
            && self.flight_free_slots == other.flight_free_slots
            && self.timer_slots == other.timer_slots
            && self.live_timers == other.live_timers
    }
}

impl SelfProfile {
    /// Render as one JSON object (deterministic fields first, wall-clock
    /// fields last).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"events\":{},\"peak_queue_depth\":{},\"mean_queue_depth\":{},\
             \"flight_slots\":{},\"flight_free_slots\":{},\"timer_slots\":{},\"live_timers\":{},\
             \"wall_secs\":{},\"events_per_sec\":{},\"repair_wall_secs\":{}}}",
            self.events,
            self.peak_queue_depth,
            self.mean_queue_depth,
            self.flight_slots,
            self.flight_free_slots,
            self.timer_slots,
            self.live_timers,
            self.wall_secs,
            self.events_per_sec,
            self.repair_wall_secs,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_wall_clock_fields() {
        let a = SelfProfile {
            events: 10,
            peak_queue_depth: 4,
            wall_secs: 1.5,
            events_per_sec: 6.7,
            ..SelfProfile::default()
        };
        let b = SelfProfile {
            wall_secs: 99.0,
            events_per_sec: 0.1,
            ..a
        };
        assert_eq!(a, b, "wall-clock drift must not break thread invariance");
        let c = SelfProfile { events: 11, ..a };
        assert_ne!(a, c, "deterministic fields still compare");
    }

    #[test]
    fn json_carries_every_field() {
        let p = SelfProfile {
            events: 3,
            mean_queue_depth: 1.5,
            ..SelfProfile::default()
        };
        let json = p.to_json();
        assert!(json.starts_with("{\"events\":3,"));
        assert!(json.contains("\"mean_queue_depth\":1.5"));
        assert!(json.contains("\"events_per_sec\":0"));
        assert!(json.ends_with('}'));
    }
}
