//! The metrics hub: a registry of named per-node counters, gauges and
//! histograms sampled into windowed time series.
//!
//! One sampler replaces the ad-hoc cumulative-counter differencing that
//! used to be copied between the experiment harness and the baseline
//! metrics path. A sampling window is driven externally (the harness
//! calls [`MetricsHub::begin_window`] at each sample instant, feeds every
//! channel, then [`MetricsHub::end_window`]); the hub differences counter
//! channels against their previous cumulative values and folds the
//! deltas into one point per window.
//!
//! The arithmetic is deliberately bit-compatible with the historical
//! harness: counter deltas accumulate in node order as `f64`, and rate
//! channels scale by `* 8.0 / dt / 1_000.0 / receivers` — so series built
//! through the hub are byte-identical to the pre-hub output.

use std::fmt::Write as _;

/// Handle to one registered channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelId(usize);

/// One sampled point of a windowed series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Window end, in simulated seconds.
    pub t_secs: f64,
    /// The folded window value (rate, sum, or mean depending on kind).
    pub value: f64,
}

const HIST_BUCKETS: usize = 33;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChannelKind {
    /// Per-node cumulative counter, folded to a per-receiver rate in
    /// Kbps: `sum(deltas) * 8 / dt / 1000 / receivers`.
    CounterRate,
    /// Per-node cumulative counter, folded to the raw summed delta.
    CounterSum,
    /// Point-in-time observations, folded to their window mean.
    Gauge,
    /// Power-of-two bucketed distribution over the whole run (no series).
    Histogram,
}

#[derive(Debug)]
struct Channel {
    name: String,
    kind: ChannelKind,
    prev: Vec<u64>,
    window_sum: f64,
    window_count: u64,
    points: Vec<SeriesPoint>,
    buckets: [u64; HIST_BUCKETS],
    samples: u64,
}

/// The hub. See the module docs.
#[derive(Debug)]
pub struct MetricsHub {
    nodes: usize,
    exclude: Option<usize>,
    receivers: f64,
    channels: Vec<Channel>,
    last_t: f64,
    window_t: f64,
    window_dt: f64,
}

impl MetricsHub {
    /// A hub sampling `nodes` nodes; `exclude` (typically the stream
    /// source) is skipped when summing counter deltas, matching the
    /// harness convention of averaging over receivers only.
    pub fn new(nodes: usize, exclude: Option<usize>) -> MetricsHub {
        let receivers = if exclude.is_some() {
            (nodes.saturating_sub(1)).max(1) as f64
        } else {
            nodes.max(1) as f64
        };
        MetricsHub {
            nodes,
            exclude,
            receivers,
            channels: Vec::new(),
            last_t: 0.0,
            window_t: 0.0,
            window_dt: 1e-9,
        }
    }

    fn register(&mut self, name: &str, kind: ChannelKind) -> ChannelId {
        self.channels.push(Channel {
            name: name.to_string(),
            kind,
            prev: vec![0; self.nodes],
            window_sum: 0.0,
            window_count: 0,
            points: Vec::new(),
            buckets: [0; HIST_BUCKETS],
            samples: 0,
        });
        ChannelId(self.channels.len() - 1)
    }

    /// Register a per-node counter folded to a per-receiver Kbps rate.
    pub fn counter_rate(&mut self, name: &str) -> ChannelId {
        self.register(name, ChannelKind::CounterRate)
    }

    /// Register a per-node counter folded to its raw per-window delta sum.
    pub fn counter_sum(&mut self, name: &str) -> ChannelId {
        self.register(name, ChannelKind::CounterSum)
    }

    /// Register a gauge folded to its per-window observation mean.
    pub fn gauge(&mut self, name: &str) -> ChannelId {
        self.register(name, ChannelKind::Gauge)
    }

    /// Register a run-wide power-of-two histogram.
    pub fn histogram(&mut self, name: &str) -> ChannelId {
        self.register(name, ChannelKind::Histogram)
    }

    /// The receiver count every rate channel divides by.
    pub fn receivers(&self) -> f64 {
        self.receivers
    }

    /// Open a sampling window ending at `t_secs`. The window length is
    /// the distance from the previous window end, floored at 1 ns —
    /// exactly the historical `dt` guard.
    pub fn begin_window(&mut self, t_secs: f64) {
        self.window_dt = (t_secs - self.last_t).max(1e-9);
        self.window_t = t_secs;
        self.last_t = t_secs;
        for ch in &mut self.channels {
            ch.window_sum = 0.0;
            ch.window_count = 0;
        }
    }

    /// Feed one node's cumulative counter value into a counter channel.
    /// Must be called in ascending node order within a window so the
    /// `f64` accumulation order matches the historical sampler.
    #[inline]
    pub fn observe_node(&mut self, ch: ChannelId, node: usize, cumulative: u64) {
        let exclude = self.exclude;
        let ch = &mut self.channels[ch.0];
        debug_assert!(matches!(
            ch.kind,
            ChannelKind::CounterRate | ChannelKind::CounterSum
        ));
        if Some(node) != exclude {
            ch.window_sum += (cumulative - ch.prev[node]) as f64;
        }
        ch.prev[node] = cumulative;
    }

    /// Feed one observation into a gauge channel.
    #[inline]
    pub fn observe_value(&mut self, ch: ChannelId, value: f64) {
        let ch = &mut self.channels[ch.0];
        debug_assert_eq!(ch.kind, ChannelKind::Gauge);
        ch.window_sum += value;
        ch.window_count += 1;
    }

    /// Feed one sample into a histogram channel (bucketed by bit width).
    #[inline]
    pub fn observe_sample(&mut self, ch: ChannelId, value: u64) {
        let ch = &mut self.channels[ch.0];
        debug_assert_eq!(ch.kind, ChannelKind::Histogram);
        let bucket = (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        ch.buckets[bucket] += 1;
        ch.samples += 1;
    }

    /// Close the window: fold every channel's accumulation into a point.
    pub fn end_window(&mut self) {
        let (t, dt, receivers) = (self.window_t, self.window_dt, self.receivers);
        for ch in &mut self.channels {
            let value = match ch.kind {
                ChannelKind::CounterRate => ch.window_sum * 8.0 / dt / 1_000.0 / receivers,
                ChannelKind::CounterSum => ch.window_sum,
                ChannelKind::Gauge => {
                    if ch.window_count == 0 {
                        continue;
                    }
                    ch.window_sum / ch.window_count as f64
                }
                ChannelKind::Histogram => continue,
            };
            ch.points.push(SeriesPoint { t_secs: t, value });
        }
    }

    /// The folded series of one channel (empty for histograms).
    pub fn points(&self, ch: ChannelId) -> &[SeriesPoint] {
        &self.channels[ch.0].points
    }

    /// The registered name of one channel.
    pub fn name(&self, ch: ChannelId) -> &str {
        &self.channels[ch.0].name
    }

    /// Render every channel as JSONL: one line per series point, plus one
    /// summary line per histogram.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ch in &self.channels {
            if ch.kind == ChannelKind::Histogram {
                let _ = write!(
                    out,
                    "{{\"series\":\"{}\",\"kind\":\"histogram\",\"samples\":{},\"buckets\":[",
                    ch.name, ch.samples
                );
                let top = ch
                    .buckets
                    .iter()
                    .rposition(|&c| c != 0)
                    .map_or(0, |i| i + 1);
                for (i, count) in ch.buckets[..top.max(1)].iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{count}");
                }
                out.push_str("]}\n");
                continue;
            }
            for point in &ch.points {
                let _ = writeln!(
                    out,
                    "{{\"series\":\"{}\",\"t_secs\":{},\"value\":{}}}",
                    ch.name, point.t_secs, point.value
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_channel_reproduces_the_harness_formula() {
        let mut hub = MetricsHub::new(3, Some(0));
        let ch = hub.counter_rate("useful_kbps");
        hub.begin_window(2.0);
        hub.observe_node(ch, 0, 9_999); // excluded source
        hub.observe_node(ch, 1, 1_000);
        hub.observe_node(ch, 2, 3_000);
        hub.end_window();
        // Hand-computed: (1000 + 3000) * 8 / 2.0 / 1000 / 2 receivers.
        let expected = 4_000.0 * 8.0 / 2.0 / 1_000.0 / 2.0;
        assert_eq!(
            hub.points(ch),
            &[SeriesPoint {
                t_secs: 2.0,
                value: expected
            }]
        );
        // Second window differences against the stored cumulative values.
        hub.begin_window(4.0);
        hub.observe_node(ch, 0, 9_999);
        hub.observe_node(ch, 1, 1_500);
        hub.observe_node(ch, 2, 3_000);
        hub.end_window();
        let expected2 = 500.0 * 8.0 / 2.0 / 1_000.0 / 2.0;
        assert_eq!(hub.points(ch)[1].value, expected2);
    }

    #[test]
    fn zero_length_window_is_floored_not_divided_by_zero() {
        let mut hub = MetricsHub::new(2, Some(0));
        let ch = hub.counter_rate("r");
        hub.begin_window(0.0);
        hub.observe_node(ch, 0, 0);
        hub.observe_node(ch, 1, 100);
        hub.end_window();
        assert!(hub.points(ch)[0].value.is_finite());
    }

    #[test]
    fn gauge_folds_to_window_mean_and_skips_empty_windows() {
        let mut hub = MetricsHub::new(1, None);
        let ch = hub.gauge("depth");
        hub.begin_window(1.0);
        hub.observe_value(ch, 4.0);
        hub.observe_value(ch, 8.0);
        hub.end_window();
        hub.begin_window(2.0); // no observations
        hub.end_window();
        assert_eq!(
            hub.points(ch),
            &[SeriesPoint {
                t_secs: 1.0,
                value: 6.0
            }]
        );
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut hub = MetricsHub::new(1, None);
        let ch = hub.histogram("h");
        for v in [0u64, 1, 2, 3, 700] {
            hub.observe_sample(ch, v);
        }
        let jsonl = hub.to_jsonl();
        // 0 → bucket 0, 1 → bucket 1, {2,3} → bucket 2, 700 → bucket 10.
        assert_eq!(
            jsonl.trim(),
            "{\"series\":\"h\",\"kind\":\"histogram\",\"samples\":5,\"buckets\":[1,1,2,0,0,0,0,0,0,0,1]}"
        );
    }
}
