//! # bullet-telemetry
//!
//! A deterministic, config-gated observability layer for the Bullet
//! reproduction. Everything in this crate is stamped with **simulated**
//! time only — wall-clock values never enter a trace, a series, or any
//! field that participates in equality comparisons — so telemetry output
//! is byte-identical across hosts, thread counts, and reruns.
//!
//! Four pieces:
//!
//! - [`trace`]: a fixed-capacity **flight recorder** of structured sim
//!   events (sends, deliveries, drops, timer fires, route repairs, and
//!   protocol decisions such as re-attach ladder steps, quarantines and
//!   reconciliation rounds), gated by the `BULLET_TRACE=<spec>` grammar
//!   and exportable as JSONL.
//! - [`journey`]: **block-journey spans** derived from a recorded trace —
//!   the per-sequence causal story (sealed → tree push hops → mesh serve →
//!   accept) with time-to-reach-fraction percentiles per block.
//! - [`hub`]: the **metrics hub** — a registry of named per-node counters,
//!   gauges and histograms sampled into windowed time series; the single
//!   sampler behind the experiment harness's bandwidth series.
//! - [`profile`]: **self-profiling** — per-run event-loop throughput,
//!   event-queue depth, flight-slab occupancy and phase wall times. Wall
//!   clock readings are quarantined here (and excluded from equality).
//!
//! The crate is dependency-free: JSON is written by hand, timestamps are
//! raw `u64` microseconds, and nothing here ever touches an RNG, so
//! installing a recorder cannot perturb a simulation.

#![warn(missing_docs)]

pub mod counters;
pub mod hub;
pub mod journey;
pub mod profile;
pub mod trace;

pub use counters::DeliveryCounters;
pub use hub::{ChannelId, MetricsHub, SeriesPoint};
pub use journey::{block_journeys, journeys_to_jsonl, BlockJourney, HopRecord};
pub use profile::SelfProfile;
pub use trace::{
    DropReason, FlightRecorder, TraceData, TraceEvent, TraceSpec, CAT_ALL, CAT_JOURNEY, CAT_PROTO,
    CAT_ROUTE, CAT_SIM, DEFAULT_CAPACITY, NETWORK_NODE,
};
