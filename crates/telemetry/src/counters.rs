//! The shared per-node delivery counters.
//!
//! The evaluation section plots, per node and over time, the *useful*
//! (new) data rate, the *raw* (total, including duplicates) data rate,
//! and the portion received from the node's tree parent. Bullet and every
//! baseline protocol keep the same cumulative counters so the experiment
//! harness can difference them into identical bandwidth-over-time series;
//! this struct is that common core (Bullet embeds it and adds its
//! recovery/integrity counters on top, the baselines use it as-is).

/// Cumulative per-node delivery counters; all byte counts refer to data
/// packets only (control traffic is accounted separately by the
/// simulator's per-class counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryCounters {
    /// Bytes of data received for the first time (the "useful total").
    pub useful_bytes: u64,
    /// Bytes of data received in total, including duplicates (the "raw
    /// total").
    pub raw_bytes: u64,
    /// Bytes of data received from the tree parent (zero for protocols
    /// without a tree).
    pub from_parent_bytes: u64,
    /// Bytes of data received from non-parent peers (useful or not).
    pub from_peers_bytes: u64,
    /// Data packets received more than once.
    pub duplicate_packets: u64,
    /// Duplicates that arrived from the tree parent (relays of recovered
    /// packets down the tree, the source the paper calls out in §3.2).
    pub duplicate_from_parent: u64,
    /// Data packets received in total.
    pub total_packets: u64,
    /// Distinct sequence numbers received.
    pub useful_packets: u64,
    /// Useful bytes that additionally arrived within the protocol's
    /// freshness deadline of their generation at the source — the
    /// *timely* goodput a live playout can actually use. Protocols that
    /// do not track block age leave this equal to [`useful_bytes`]
    /// (every first delivery counted as timely).
    ///
    /// [`useful_bytes`]: DeliveryCounters::useful_bytes
    pub fresh_bytes: u64,
    /// Packets generated (source only).
    pub packets_generated: u64,
}

impl DeliveryCounters {
    /// Fraction of received data packets that were duplicates.
    pub fn duplicate_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            0.0
        } else {
            self.duplicate_packets as f64 / self.total_packets as f64
        }
    }

    /// Records the reception of a data packet. First deliveries are
    /// counted as timely ([`fresh_bytes`]); a protocol that tracks block
    /// age calls [`record_stale`] afterwards for first deliveries that
    /// missed its freshness deadline.
    ///
    /// [`fresh_bytes`]: DeliveryCounters::fresh_bytes
    /// [`record_stale`]: DeliveryCounters::record_stale
    pub fn record_receive(&mut self, bytes: u32, from_parent: bool, duplicate: bool) {
        self.raw_bytes += bytes as u64;
        self.total_packets += 1;
        if from_parent {
            self.from_parent_bytes += bytes as u64;
        } else {
            self.from_peers_bytes += bytes as u64;
        }
        if duplicate {
            self.duplicate_packets += 1;
            if from_parent {
                self.duplicate_from_parent += 1;
            }
        } else {
            self.useful_bytes += bytes as u64;
            self.useful_packets += 1;
            self.fresh_bytes += bytes as u64;
        }
    }

    /// Reclassifies a just-recorded first delivery as late: the block
    /// arrived past the protocol's freshness deadline, so a live playout
    /// cannot use it. Call immediately after the corresponding
    /// [`record_receive`](DeliveryCounters::record_receive).
    pub fn record_stale(&mut self, bytes: u32) {
        self.fresh_bytes = self.fresh_bytes.saturating_sub(bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receive_accounting() {
        let mut m = DeliveryCounters::default();
        m.record_receive(1_500, true, false);
        m.record_receive(1_500, false, false);
        m.record_receive(1_500, false, true);
        m.record_receive(1_500, true, true);
        assert_eq!(m.useful_bytes, 3_000);
        assert_eq!(m.fresh_bytes, 3_000);
        m.record_stale(1_500);
        assert_eq!(m.fresh_bytes, 1_500);
        assert_eq!(m.raw_bytes, 6_000);
        assert_eq!(m.from_parent_bytes, 3_000);
        assert_eq!(m.from_peers_bytes, 3_000);
        assert_eq!(m.duplicate_packets, 2);
        assert_eq!(m.duplicate_from_parent, 1);
        assert_eq!(m.total_packets, 4);
        assert_eq!(m.useful_packets, 2);
        assert!((m.duplicate_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_fraction_of_empty_counters_is_zero() {
        assert_eq!(DeliveryCounters::default().duplicate_fraction(), 0.0);
    }
}
