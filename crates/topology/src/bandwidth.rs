//! Bandwidth profiles (paper Table 1).
//!
//! Each link class has a bandwidth range; each link's capacity is drawn
//! uniformly at random from the range of its class. The low / medium / high
//! profiles are the three constraint levels the paper sweeps relative to its
//! 600–1000 Kbps streaming rates.

use bullet_netsim::SimRng;

use crate::classes::LinkClass;

/// A half-open bandwidth range in Kbps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KbpsRange {
    /// Lower bound (inclusive), in Kbps.
    pub low: u32,
    /// Upper bound (inclusive), in Kbps.
    pub high: u32,
}

impl KbpsRange {
    /// Creates a range.
    pub const fn new(low: u32, high: u32) -> Self {
        KbpsRange { low, high }
    }

    /// Draws a uniform sample from the range, in bits per second.
    pub fn sample_bps(&self, rng: &mut SimRng) -> f64 {
        let kbps = if self.low == self.high {
            self.low as f64
        } else {
            rng.range_f64(self.low as f64, self.high as f64)
        };
        kbps * 1_000.0
    }

    /// Returns `true` if `bps` lies inside the range (with a small tolerance
    /// for floating point sampling at the boundaries).
    pub fn contains_bps(&self, bps: f64) -> bool {
        let kbps = bps / 1_000.0;
        kbps >= self.low as f64 - 1e-9 && kbps <= self.high as f64 + 1e-9
    }
}

/// The three bandwidth-constraint levels of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BandwidthProfile {
    /// Heavily constrained relative to the 600 Kbps target stream.
    Low,
    /// Slightly insufficient for traditional tree streaming.
    Medium,
    /// More than enough bandwidth for the target rate.
    High,
}

impl BandwidthProfile {
    /// All profiles, in Table 1 row order.
    pub const ALL: [BandwidthProfile; 3] = [
        BandwidthProfile::Low,
        BandwidthProfile::Medium,
        BandwidthProfile::High,
    ];

    /// Human-readable name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            BandwidthProfile::Low => "Low bandwidth",
            BandwidthProfile::Medium => "Medium bandwidth",
            BandwidthProfile::High => "High bandwidth",
        }
    }

    /// The Table 1 bandwidth range for a link class under this profile.
    pub fn range(self, class: LinkClass) -> KbpsRange {
        use BandwidthProfile::*;
        use LinkClass::*;
        match (self, class) {
            (Low, ClientStub) => KbpsRange::new(300, 600),
            (Low, StubStub) => KbpsRange::new(500, 1_000),
            (Low, TransitStub) => KbpsRange::new(1_000, 2_000),
            (Low, TransitTransit) => KbpsRange::new(2_000, 4_000),

            (Medium, ClientStub) => KbpsRange::new(800, 2_800),
            (Medium, StubStub) => KbpsRange::new(1_000, 4_000),
            (Medium, TransitStub) => KbpsRange::new(1_000, 4_000),
            (Medium, TransitTransit) => KbpsRange::new(5_000, 10_000),

            (High, ClientStub) => KbpsRange::new(1_600, 5_600),
            (High, StubStub) => KbpsRange::new(2_000, 8_000),
            (High, TransitStub) => KbpsRange::new(2_000, 8_000),
            (High, TransitTransit) => KbpsRange::new(10_000, 20_000),
        }
    }

    /// Draws a link capacity (bits/second) for a link of the given class.
    pub fn sample_bps(self, class: LinkClass, rng: &mut SimRng) -> f64 {
        self.range(class).sample_bps(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_reproduced() {
        let medium = BandwidthProfile::Medium;
        assert_eq!(
            medium.range(LinkClass::ClientStub),
            KbpsRange::new(800, 2_800)
        );
        assert_eq!(
            medium.range(LinkClass::TransitTransit),
            KbpsRange::new(5_000, 10_000)
        );
        let low = BandwidthProfile::Low;
        assert_eq!(low.range(LinkClass::ClientStub), KbpsRange::new(300, 600));
        let high = BandwidthProfile::High;
        assert_eq!(
            high.range(LinkClass::StubStub),
            KbpsRange::new(2_000, 8_000)
        );
    }

    #[test]
    fn samples_fall_within_the_declared_range() {
        let mut rng = SimRng::new(5);
        for profile in BandwidthProfile::ALL {
            for class in LinkClass::ALL {
                let range = profile.range(class);
                for _ in 0..200 {
                    let bps = profile.sample_bps(class, &mut rng);
                    assert!(
                        range.contains_bps(bps),
                        "{profile:?}/{class:?}: {bps} outside {range:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn profiles_are_ordered_by_capacity() {
        // For every class, low <= medium <= high on both bounds.
        for class in LinkClass::ALL {
            let low = BandwidthProfile::Low.range(class);
            let med = BandwidthProfile::Medium.range(class);
            let high = BandwidthProfile::High.range(class);
            assert!(low.low <= med.low && med.low <= high.low);
            assert!(low.high <= med.high && med.high <= high.high);
        }
    }

    #[test]
    fn degenerate_range_samples_its_single_value() {
        let mut rng = SimRng::new(1);
        let range = KbpsRange::new(500, 500);
        assert_eq!(range.sample_bps(&mut rng), 500_000.0);
    }
}
