//! # bullet-topology
//!
//! Internet-like topology generation for the Bullet reproduction.
//!
//! The paper's ModelNet experiments run over 20,000-node INET-generated
//! topologies whose links are classified as Client-Stub, Stub-Stub,
//! Transit-Stub, or Transit-Transit and assigned bandwidths from the ranges
//! in Table 1 (see [`BandwidthProfile`]). The lossy-network experiments of
//! §4.5 additionally assign random per-link loss rates (see [`LossProfile`]).
//!
//! This crate provides a parameterized transit-stub generator
//! ([`generate`]) that produces a [`bullet_netsim::NetworkSpec`] plus the
//! per-link classification metadata the experiment harnesses need.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod classes;
pub mod generator;
pub mod loss;

pub use bandwidth::{BandwidthProfile, KbpsRange};
pub use classes::{LinkClass, NodeClass};
pub use generator::{generate, BuiltTopology, TopologyConfig, TopologyStats};
pub use loss::LossProfile;
