//! Transit-stub topology generation.
//!
//! The paper evaluates on 20,000-node INET-generated topologies with
//! participants attached to degree-one stub nodes and link bandwidths drawn
//! per class from Table 1. INET itself is a closed tool; we generate
//! transit-stub topologies (the Calvert/Doar/Zegura model the paper's link
//! classification comes from) with routers placed in a plane so that
//! propagation delays follow geometric distance, as the paper's INET
//! placement does. The generator is parameterized so both laptop-scale and
//! paper-scale topologies can be produced.

use bullet_netsim::{LinkSpec, NetworkSpec, OverlayId, RouterId, SimDuration, SimRng};

use crate::bandwidth::BandwidthProfile;
use crate::classes::{LinkClass, NodeClass};
use crate::loss::LossProfile;

/// Configuration for the transit-stub generator.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// Number of transit (backbone) domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_per_domain: usize,
    /// Stub domains hanging off each transit router.
    pub stubs_per_transit: usize,
    /// Routers per stub domain (the connected ring part).
    pub routers_per_stub: usize,
    /// Degree-one leaf routers per stub domain, each hanging off one ring
    /// router by a single link. The paper's INET topologies attach all
    /// overlay participants to degree-one stub nodes; when this is non-zero
    /// clients are attached exclusively to leaf routers.
    pub leaf_routers_per_stub: usize,
    /// Number of overlay participants (clients attached to stub routers).
    pub clients: usize,
    /// Probability of an extra chord between two routers of the same transit
    /// domain (beyond the connecting ring).
    pub transit_chord_prob: f64,
    /// Probability of an extra inter-domain transit link per domain pair
    /// (beyond the connecting ring).
    pub interdomain_link_prob: f64,
    /// Expected number of extra stub-to-stub links per stub domain.
    pub stub_stub_links_per_domain: f64,
    /// Bandwidth profile (Table 1 row).
    pub bandwidth: BandwidthProfile,
    /// Loss profile (§4.5).
    pub loss: LossProfile,
    /// Seed for all topology randomness.
    pub seed: u64,
    /// One-way delay, in milliseconds, corresponding to crossing the entire
    /// placement plane. Link delays scale with Euclidean distance.
    pub plane_delay_ms: f64,
    /// Queue depth expressed as seconds of buffering at the link rate.
    pub queue_seconds: f64,
}

impl TopologyConfig {
    /// A small topology (≈100 routers) suitable for unit tests.
    pub fn small(clients: usize, seed: u64) -> Self {
        TopologyConfig {
            transit_domains: 2,
            transit_per_domain: 4,
            stubs_per_transit: 2,
            routers_per_stub: 4,
            leaf_routers_per_stub: 0,
            clients,
            transit_chord_prob: 0.3,
            interdomain_link_prob: 0.5,
            stub_stub_links_per_domain: 0.5,
            bandwidth: BandwidthProfile::Medium,
            loss: LossProfile::None,
            seed,
            plane_delay_ms: 40.0,
            queue_seconds: 0.2,
        }
    }

    /// A medium topology (≈1,000–2,500 routers) used by the default-scale
    /// experiment harnesses.
    pub fn emulation(clients: usize, seed: u64) -> Self {
        TopologyConfig {
            transit_domains: 4,
            transit_per_domain: 8,
            stubs_per_transit: 4,
            routers_per_stub: 8,
            leaf_routers_per_stub: 0,
            clients,
            transit_chord_prob: 0.3,
            interdomain_link_prob: 0.5,
            stub_stub_links_per_domain: 1.0,
            bandwidth: BandwidthProfile::Medium,
            loss: LossProfile::None,
            seed,
            plane_delay_ms: 40.0,
            queue_seconds: 0.2,
        }
    }

    /// A paper-scale topology (≈20,000 routers, as in the ModelNet runs).
    pub fn paper_scale(clients: usize, seed: u64) -> Self {
        TopologyConfig {
            transit_domains: 10,
            transit_per_domain: 10,
            stubs_per_transit: 10,
            routers_per_stub: 16,
            leaf_routers_per_stub: 4,
            clients,
            transit_chord_prob: 0.3,
            interdomain_link_prob: 0.4,
            stub_stub_links_per_domain: 1.0,
            bandwidth: BandwidthProfile::Medium,
            loss: LossProfile::None,
            seed,
            plane_delay_ms: 40.0,
            queue_seconds: 0.2,
        }
    }

    /// Sets the bandwidth profile.
    pub fn with_bandwidth(mut self, profile: BandwidthProfile) -> Self {
        self.bandwidth = profile;
        self
    }

    /// Sets the loss profile.
    pub fn with_loss(mut self, loss: LossProfile) -> Self {
        self.loss = loss;
        self
    }

    /// Total number of routers the configuration will generate (excluding
    /// client end hosts).
    pub fn router_count(&self) -> usize {
        let transit = self.transit_domains * self.transit_per_domain;
        let per_stub = self.routers_per_stub + self.leaf_routers_per_stub;
        transit + transit * self.stubs_per_transit * per_stub
    }
}

/// Per-class counts, useful for reports and sanity tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopologyStats {
    /// Number of transit routers.
    pub transit_routers: usize,
    /// Number of stub routers.
    pub stub_routers: usize,
    /// Number of client end hosts.
    pub clients: usize,
    /// Links per class, indexed in [`LinkClass::ALL`] order.
    pub links_by_class: [usize; 4],
}

/// A generated topology: the simulator spec plus classification metadata.
#[derive(Clone, Debug)]
pub struct BuiltTopology {
    /// Network spec consumable by `bullet_netsim::Sim`.
    pub spec: NetworkSpec,
    /// Class of every router (indexed by router id).
    pub node_classes: Vec<NodeClass>,
    /// Class of every bidirectional link (parallel to `spec.links`).
    pub link_classes: Vec<LinkClass>,
    /// The access (client-stub) link index of every overlay participant.
    pub access_links: Vec<usize>,
    /// Aggregate statistics.
    pub stats: TopologyStats,
}

impl BuiltTopology {
    /// Number of overlay participants.
    pub fn participants(&self) -> usize {
        self.spec.participants()
    }

    /// Capacity of a participant's access link, in bits per second.
    pub fn access_bandwidth_bps(&self, node: OverlayId) -> f64 {
        self.spec.links[self.access_links[node]].bandwidth_bps
    }
}

struct Position {
    x: f64,
    y: f64,
}

/// Generates a transit-stub topology from `config`.
pub fn generate(config: &TopologyConfig) -> BuiltTopology {
    assert!(
        config.transit_domains > 0,
        "need at least one transit domain"
    );
    assert!(config.transit_per_domain > 0, "need transit routers");
    let mut rng = SimRng::new(config.seed ^ 0x70706F);

    let mut positions: Vec<Position> = Vec::new();
    let mut node_classes: Vec<NodeClass> = Vec::new();
    let mut pending_links: Vec<(RouterId, RouterId)> = Vec::new();

    // 1. Transit domains: routers in a ring plus random chords.
    let mut transit_routers: Vec<Vec<RouterId>> = Vec::new();
    for _ in 0..config.transit_domains {
        let cx = rng.range_f64(0.1, 0.9);
        let cy = rng.range_f64(0.1, 0.9);
        let mut domain = Vec::new();
        for _ in 0..config.transit_per_domain {
            let id = positions.len();
            positions.push(Position {
                x: cx + rng.range_f64(-0.05, 0.05),
                y: cy + rng.range_f64(-0.05, 0.05),
            });
            node_classes.push(NodeClass::Transit);
            domain.push(id);
        }
        for i in 0..domain.len() {
            if domain.len() > 1 {
                pending_links.push((domain[i], domain[(i + 1) % domain.len()]));
            }
            for j in i + 2..domain.len() {
                if rng.chance(config.transit_chord_prob) {
                    pending_links.push((domain[i], domain[j]));
                }
            }
        }
        transit_routers.push(domain);
    }

    // 2. Inter-domain transit links: a ring over domains plus random extras.
    for d in 0..config.transit_domains {
        if config.transit_domains > 1 {
            let next = (d + 1) % config.transit_domains;
            let a = *rng.choose(&transit_routers[d]).expect("non-empty domain");
            let b = *rng
                .choose(&transit_routers[next])
                .expect("non-empty domain");
            pending_links.push((a, b));
        }
        for e in d + 2..config.transit_domains {
            if rng.chance(config.interdomain_link_prob) {
                let a = *rng.choose(&transit_routers[d]).expect("non-empty domain");
                let b = *rng.choose(&transit_routers[e]).expect("non-empty domain");
                pending_links.push((a, b));
            }
        }
    }

    // 3. Stub domains hanging off each transit router.
    let mut stub_domains: Vec<Vec<RouterId>> = Vec::new();
    let mut leaf_routers: Vec<RouterId> = Vec::new();
    for domain in &transit_routers {
        for &transit in domain {
            for _ in 0..config.stubs_per_transit {
                let scx = positions[transit].x + rng.range_f64(-0.08, 0.08);
                let scy = positions[transit].y + rng.range_f64(-0.08, 0.08);
                let mut stub = Vec::new();
                for _ in 0..config.routers_per_stub {
                    let id = positions.len();
                    positions.push(Position {
                        x: scx + rng.range_f64(-0.02, 0.02),
                        y: scy + rng.range_f64(-0.02, 0.02),
                    });
                    node_classes.push(NodeClass::Stub);
                    stub.push(id);
                }
                // Intra-stub ring keeps the domain connected.
                for i in 0..stub.len() {
                    if stub.len() > 1 {
                        pending_links.push((stub[i], stub[(i + 1) % stub.len()]));
                    }
                }
                // One transit-stub uplink.
                let gateway = *rng.choose(&stub).expect("non-empty stub");
                pending_links.push((gateway, transit));
                // Degree-one leaf routers, each hanging off one ring router.
                // They are kept out of `stub` so gateway selection and the
                // stub-to-stub chords below never touch them, preserving
                // their degree-one property (paper client attachment).
                for _ in 0..config.leaf_routers_per_stub {
                    let anchor = *rng.choose(&stub).expect("non-empty stub");
                    let id = positions.len();
                    positions.push(Position {
                        x: positions[anchor].x + rng.range_f64(-0.01, 0.01),
                        y: positions[anchor].y + rng.range_f64(-0.01, 0.01),
                    });
                    node_classes.push(NodeClass::Stub);
                    pending_links.push((id, anchor));
                    leaf_routers.push(id);
                }
                stub_domains.push(stub);
            }
        }
    }

    // 4. Extra stub-to-stub links between different stub domains.
    if stub_domains.len() > 1 {
        let expected = config.stub_stub_links_per_domain * stub_domains.len() as f64;
        let count = expected.round() as usize;
        for _ in 0..count {
            let a_dom = rng.range_usize(0, stub_domains.len());
            let mut b_dom = rng.range_usize(0, stub_domains.len());
            if a_dom == b_dom {
                b_dom = (b_dom + 1) % stub_domains.len();
            }
            let a = *rng.choose(&stub_domains[a_dom]).expect("non-empty stub");
            let b = *rng.choose(&stub_domains[b_dom]).expect("non-empty stub");
            pending_links.push((a, b));
        }
    }

    // 5. Clients: each participant is a new end host attached by a
    //    client-stub access link — to a random degree-one leaf router when
    //    the configuration has them (paper attachment model), otherwise to
    //    a random stub ring router.
    let all_stub_routers: Vec<RouterId> = stub_domains.iter().flatten().copied().collect();
    assert!(
        !all_stub_routers.is_empty(),
        "configuration produced no stub routers to attach clients to"
    );
    let attach_candidates: &[RouterId] = if leaf_routers.is_empty() {
        &all_stub_routers
    } else {
        &leaf_routers
    };
    let mut client_routers = Vec::with_capacity(config.clients);
    for _ in 0..config.clients {
        let stub = *rng.choose(attach_candidates).expect("non-empty stub set");
        let id = positions.len();
        positions.push(Position {
            x: positions[stub].x + rng.range_f64(-0.005, 0.005),
            y: positions[stub].y + rng.range_f64(-0.005, 0.005),
        });
        node_classes.push(NodeClass::Client);
        pending_links.push((id, stub));
        client_routers.push(id);
    }

    // 6. Materialize links: class, bandwidth, delay, loss, queueing.
    let mut spec = NetworkSpec::new(positions.len());
    let mut link_classes = Vec::with_capacity(pending_links.len());
    let mut access_links = vec![usize::MAX; config.clients];
    let mut stats = TopologyStats {
        transit_routers: config.transit_domains * config.transit_per_domain,
        stub_routers: all_stub_routers.len() + leaf_routers.len(),
        clients: config.clients,
        links_by_class: [0; 4],
    };
    for (a, b) in pending_links {
        let class = LinkClass::from_endpoints(node_classes[a], node_classes[b]);
        let bandwidth = config.bandwidth.sample_bps(class, &mut rng);
        let dx = positions[a].x - positions[b].x;
        let dy = positions[a].y - positions[b].y;
        let dist = (dx * dx + dy * dy).sqrt();
        let delay_ms = (dist * config.plane_delay_ms).max(0.5);
        let overloaded = rng.chance(config.loss.overloaded_fraction());
        let loss = config.loss.sample(class, overloaded, &mut rng);
        let queue_bytes = ((bandwidth * config.queue_seconds / 8.0) as u32).max(16_000);
        let link_idx = spec.add_link(
            LinkSpec::new(
                a,
                b,
                bandwidth,
                SimDuration::from_secs_f64(delay_ms / 1_000.0),
            )
            .with_loss(loss)
            .with_queue(queue_bytes),
        );
        link_classes.push(class);
        let class_idx = LinkClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("known class");
        stats.links_by_class[class_idx] += 1;
        if class == LinkClass::ClientStub {
            // Identify which participant this access link belongs to.
            let client = if node_classes[a] == NodeClass::Client {
                a
            } else {
                b
            };
            if let Some(idx) = client_routers.iter().position(|&c| c == client) {
                access_links[idx] = link_idx;
            }
        }
    }

    for &router in &client_routers {
        spec.attach(router);
    }

    BuiltTopology {
        spec,
        node_classes,
        link_classes,
        access_links,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_netsim::Network;

    #[test]
    fn small_topology_has_expected_router_count() {
        let config = TopologyConfig::small(10, 1);
        let topo = generate(&config);
        // Routers = transit + stub; clients are extra end hosts.
        assert_eq!(config.router_count(), 2 * 4 + 2 * 4 * 2 * 4);
        assert_eq!(topo.spec.routers, config.router_count() + 10);
        assert_eq!(topo.participants(), 10);
    }

    #[test]
    fn every_participant_has_an_access_link() {
        let topo = generate(&TopologyConfig::small(25, 3));
        for node in 0..topo.participants() {
            let bw = topo.access_bandwidth_bps(node);
            assert!(bw > 0.0);
            assert_eq!(
                topo.link_classes[topo.access_links[node]],
                LinkClass::ClientStub
            );
        }
    }

    #[test]
    fn all_participant_pairs_are_routable() {
        let topo = generate(&TopologyConfig::small(12, 7));
        let mut net = Network::new(&topo.spec);
        for a in 0..topo.participants() {
            for b in 0..topo.participants() {
                if a != b {
                    assert!(
                        net.path(a, b).is_some(),
                        "no route between participants {a} and {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn link_classes_cover_all_four_types() {
        let topo = generate(&TopologyConfig::emulation(30, 11));
        for (idx, class) in LinkClass::ALL.iter().enumerate() {
            assert!(
                topo.stats.links_by_class[idx] > 0,
                "expected at least one {} link",
                class.name()
            );
        }
    }

    #[test]
    fn bandwidths_respect_the_profile() {
        let config = TopologyConfig::small(10, 5).with_bandwidth(BandwidthProfile::Low);
        let topo = generate(&config);
        for (link, class) in topo.spec.links.iter().zip(&topo.link_classes) {
            let range = BandwidthProfile::Low.range(*class);
            assert!(
                range.contains_bps(link.bandwidth_bps),
                "{:?} link at {} bps outside {:?}",
                class,
                link.bandwidth_bps,
                range
            );
        }
    }

    #[test]
    fn lossy_profile_assigns_losses() {
        let config = TopologyConfig::emulation(20, 9).with_loss(LossProfile::paper_lossy());
        let topo = generate(&config);
        let lossy_links = topo.spec.links.iter().filter(|l| l.loss > 0.0).count();
        assert!(lossy_links > topo.spec.links.len() / 2);
        let max_loss = topo
            .spec
            .links
            .iter()
            .map(|l| l.loss)
            .fold(0.0f64, f64::max);
        assert!(max_loss <= 0.10 + 1e-12);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&TopologyConfig::small(10, 42));
        let b = generate(&TopologyConfig::small(10, 42));
        assert_eq!(a.spec.links.len(), b.spec.links.len());
        for (la, lb) in a.spec.links.iter().zip(&b.spec.links) {
            assert_eq!(la, lb);
        }
        let c = generate(&TopologyConfig::small(10, 43));
        let same = a
            .spec
            .links
            .iter()
            .zip(&c.spec.links)
            .filter(|(x, y)| x == y)
            .count();
        assert!(same < a.spec.links.len());
    }

    #[test]
    fn paper_scale_config_reaches_twenty_thousand_routers() {
        let config = TopologyConfig::paper_scale(1000, 1);
        assert!(config.router_count() >= 20_000);
    }

    #[test]
    fn paper_scale_attaches_clients_to_degree_one_leaf_stubs() {
        let config = TopologyConfig::paper_scale(50, 13);
        let topo = generate(&config);
        assert_eq!(topo.spec.routers, config.router_count() + 50);
        assert!(topo.spec.routers >= 20_000);
        // Router-to-router degree of each attachment router must be exactly
        // one: clients hang off degree-one leaf stubs, as in the paper's
        // INET placement.
        let mut degree = vec![0usize; topo.spec.routers];
        for link in &topo.spec.links {
            if topo.node_classes[link.a] != NodeClass::Client
                && topo.node_classes[link.b] != NodeClass::Client
            {
                degree[link.a] += 1;
                degree[link.b] += 1;
            }
        }
        for node in 0..topo.participants() {
            // The stub end of the participant's access link must be a
            // degree-one leaf router.
            let access = &topo.spec.links[topo.access_links[node]];
            let stub = if topo.node_classes[access.a] == NodeClass::Client {
                access.b
            } else {
                access.a
            };
            assert_eq!(topo.node_classes[stub], NodeClass::Stub);
            assert_eq!(
                degree[stub], 1,
                "participant {node} attached to stub router {stub} of degree {}",
                degree[stub]
            );
        }
    }

    #[test]
    fn leaf_free_configs_are_unchanged_by_the_leaf_extension() {
        // The leaf-router code paths draw no randomness when the count is
        // zero, so pre-existing topology classes stay byte-identical.
        let topo = generate(&TopologyConfig::small(10, 42));
        assert_eq!(topo.stats.stub_routers, 2 * 4 * 2 * 4);
        for node in 0..topo.participants() {
            assert_eq!(
                topo.link_classes[topo.access_links[node]],
                LinkClass::ClientStub
            );
        }
    }
}
