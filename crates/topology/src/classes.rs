//! Router and link classification.
//!
//! The paper classifies every physical link as Client-Stub, Stub-Stub,
//! Transit-Stub, or Transit-Transit (following Calvert/Doar/Zegura) and
//! assigns bandwidth ranges per class (Table 1). We keep the same taxonomy.

/// Role of a router in the transit-stub hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Backbone router inside a transit domain.
    Transit,
    /// Router inside a stub domain.
    Stub,
    /// End host attached to a stub router; overlay participants live here.
    Client,
}

/// Classification of a physical link, after the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Client access link (client ↔ stub router).
    ClientStub,
    /// Link between two stub routers (within or across stub domains).
    StubStub,
    /// Link connecting a stub domain to its transit domain.
    TransitStub,
    /// Backbone link between transit routers.
    TransitTransit,
}

impl LinkClass {
    /// Derives the link class from the classes of its two endpoints.
    pub fn from_endpoints(a: NodeClass, b: NodeClass) -> LinkClass {
        use NodeClass::*;
        match (a, b) {
            (Client, _) | (_, Client) => LinkClass::ClientStub,
            (Transit, Transit) => LinkClass::TransitTransit,
            (Transit, Stub) | (Stub, Transit) => LinkClass::TransitStub,
            (Stub, Stub) => LinkClass::StubStub,
        }
    }

    /// All link classes, in Table 1 order.
    pub const ALL: [LinkClass; 4] = [
        LinkClass::ClientStub,
        LinkClass::StubStub,
        LinkClass::TransitStub,
        LinkClass::TransitTransit,
    ];

    /// Human-readable name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            LinkClass::ClientStub => "Client-Stub",
            LinkClass::StubStub => "Stub-Stub",
            LinkClass::TransitStub => "Transit-Stub",
            LinkClass::TransitTransit => "Transit-Transit",
        }
    }

    /// Whether the link touches the transit backbone. Used by the §4.5 loss
    /// model, which treats transit and non-transit links differently.
    pub fn is_transit(self) -> bool {
        matches!(self, LinkClass::TransitStub | LinkClass::TransitTransit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_from_endpoints() {
        assert_eq!(
            LinkClass::from_endpoints(NodeClass::Client, NodeClass::Stub),
            LinkClass::ClientStub
        );
        assert_eq!(
            LinkClass::from_endpoints(NodeClass::Stub, NodeClass::Client),
            LinkClass::ClientStub
        );
        assert_eq!(
            LinkClass::from_endpoints(NodeClass::Stub, NodeClass::Stub),
            LinkClass::StubStub
        );
        assert_eq!(
            LinkClass::from_endpoints(NodeClass::Transit, NodeClass::Stub),
            LinkClass::TransitStub
        );
        assert_eq!(
            LinkClass::from_endpoints(NodeClass::Transit, NodeClass::Transit),
            LinkClass::TransitTransit
        );
    }

    #[test]
    fn transit_classification() {
        assert!(LinkClass::TransitTransit.is_transit());
        assert!(LinkClass::TransitStub.is_transit());
        assert!(!LinkClass::StubStub.is_transit());
        assert!(!LinkClass::ClientStub.is_transit());
    }

    #[test]
    fn names_match_paper_table() {
        assert_eq!(LinkClass::ClientStub.name(), "Client-Stub");
        assert_eq!(LinkClass::TransitTransit.name(), "Transit-Transit");
        assert_eq!(LinkClass::ALL.len(), 4);
    }
}
