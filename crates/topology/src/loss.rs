//! Link loss profiles (paper §4.5).
//!
//! The lossy-network experiments modify the ModelNet topologies so that
//! non-transit links lose 0–0.3% of packets, transit links lose 0–0.1%, and a
//! randomly chosen 5% of links are "overloaded" with 5–10% loss, modelling
//! queueing under background load.

use bullet_netsim::SimRng;

use crate::classes::LinkClass;

/// How random per-link packet loss is assigned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossProfile {
    /// No random loss; only congestion (queue) loss occurs.
    None,
    /// The §4.5 lossy-network model.
    Lossy {
        /// Maximum loss rate on non-transit links (paper: 0.003).
        non_transit_max: f64,
        /// Maximum loss rate on transit links (paper: 0.001).
        transit_max: f64,
        /// Fraction of links designated overloaded (paper: 0.05).
        overloaded_fraction: f64,
        /// Loss range on overloaded links (paper: 0.05–0.1).
        overloaded_range: (f64, f64),
    },
}

impl LossProfile {
    /// The exact configuration used by the paper's §4.5 experiments.
    pub fn paper_lossy() -> Self {
        LossProfile::Lossy {
            non_transit_max: 0.003,
            transit_max: 0.001,
            overloaded_fraction: 0.05,
            overloaded_range: (0.05, 0.10),
        }
    }

    /// Draws the loss rate for one link.
    ///
    /// `overloaded` should be `true` for links the caller designated as
    /// overloaded (a uniformly random `overloaded_fraction` of all links).
    pub fn sample(&self, class: LinkClass, overloaded: bool, rng: &mut SimRng) -> f64 {
        match *self {
            LossProfile::None => 0.0,
            LossProfile::Lossy {
                non_transit_max,
                transit_max,
                overloaded_range,
                ..
            } => {
                if overloaded {
                    rng.range_f64(overloaded_range.0, overloaded_range.1)
                } else if class.is_transit() {
                    rng.range_f64(0.0, transit_max)
                } else {
                    rng.range_f64(0.0, non_transit_max)
                }
            }
        }
    }

    /// The fraction of links that should be designated overloaded.
    pub fn overloaded_fraction(&self) -> f64 {
        match *self {
            LossProfile::None => 0.0,
            LossProfile::Lossy {
                overloaded_fraction,
                ..
            } => overloaded_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_profile_never_loses() {
        let mut rng = SimRng::new(1);
        for class in LinkClass::ALL {
            assert_eq!(LossProfile::None.sample(class, false, &mut rng), 0.0);
            assert_eq!(LossProfile::None.sample(class, true, &mut rng), 0.0);
        }
        assert_eq!(LossProfile::None.overloaded_fraction(), 0.0);
    }

    #[test]
    fn lossy_profile_respects_class_bounds() {
        let mut rng = SimRng::new(2);
        let profile = LossProfile::paper_lossy();
        for _ in 0..500 {
            let non_transit = profile.sample(LinkClass::ClientStub, false, &mut rng);
            assert!((0.0..=0.003).contains(&non_transit));
            let transit = profile.sample(LinkClass::TransitTransit, false, &mut rng);
            assert!((0.0..=0.001).contains(&transit));
            let overloaded = profile.sample(LinkClass::StubStub, true, &mut rng);
            assert!((0.05..=0.10).contains(&overloaded));
        }
    }

    #[test]
    fn paper_profile_designates_five_percent_overloaded() {
        assert!((LossProfile::paper_lossy().overloaded_fraction() - 0.05).abs() < 1e-12);
    }
}
