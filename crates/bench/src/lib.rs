//! # bullet-bench
//!
//! Benchmark harnesses for the Bullet reproduction.
//!
//! Each `benches/figNN_*.rs` target regenerates one table or figure of the
//! paper's evaluation: it runs the corresponding experiment from
//! `bullet-experiments` at the scale selected by `BULLET_SCALE`
//! (`small`/`default`/`paper`) and prints the same series and scalars the
//! paper reports. `benches/micro_primitives.rs` is a conventional Criterion
//! benchmark of the hot data-plane primitives (Bloom filters, summary
//! tickets, RanSub Compact, LT coding).

#![warn(missing_docs)]

use bullet_experiments::Scale;

/// Prints the standard banner identifying the experiment and the scale it is
/// being run at, and returns that scale.
pub fn announce(figure: &str) -> Scale {
    let scale = Scale::from_env();
    println!();
    println!("################################################################");
    println!("# {figure}");
    println!(
        "# scale: {scale:?} ({} participants, {} s run) — set BULLET_SCALE=small|default|paper",
        scale.participants(),
        scale.duration_secs()
    );
    println!("################################################################");
    scale
}
