//! Failure-recovery benchmark (§4.6): sustained crashes and partitions,
//! recovery subsystem on vs off.
//!
//! Runs the `recovery` (sustained interior-node crashes, one per 10 s)
//! and `partition` (repeated half-overlay partitions plus control-message
//! loss) figures at the selected `BULLET_SCALE` and prints their series
//! plus one `recovery_bench {...}` JSON line per run. Those lines feed
//! `BENCH_recovery.json` at the repository root and the nightly
//! `BENCH_recovery` artifact published by the paper-smoke workflow.
//!
//! The acceptance numbers of the recovery subsystem live in these lines:
//! `median_reattach_secs` (orphans must re-attach within three RanSub
//! epochs) and the recovery-on vs recovery-off `steady_useful_kbps` ratio
//! under sustained churn (at least 2x).

use std::time::Instant;

use bullet_bench::announce;
use bullet_experiments::{report, scenarios, FigureResult, Scale};

fn print_bench_lines(figure: &FigureResult, scale: Scale, wall_ms: f64) {
    for (label, summary) in &figure.summaries {
        println!(
            "recovery_bench {{\"figure\": \"{}\", \"run\": \"{}\", \"scale\": \"{:?}\", \
             \"participants\": {}, \"steady_useful_kbps\": {:.1}, \"steady_raw_kbps\": {:.1}, \
             \"median_delivery_fraction\": {:.4}, \"orphan_detections\": {}, \
             \"reattaches\": {}, \"median_reattach_secs\": {:.2}, \"mean_reattach_secs\": {:.2}, \
             \"orphan_window_packets\": {}, \"control_retries\": {}, \
             \"false_positive_evictions\": {}, \"figure_wall_ms\": {:.0}}}",
            figure.id,
            label,
            scale,
            scale.participants(),
            summary.steady_useful_kbps,
            summary.steady_raw_kbps,
            summary.median_delivery_fraction,
            summary.orphan_detections,
            summary.reattaches,
            summary.median_reattach_secs,
            summary.mean_reattach_secs,
            summary.orphan_window_packets,
            summary.control_retries,
            summary.false_positive_evictions,
            wall_ms,
        );
    }
}

fn main() {
    let scale = announce("Failure recovery — sustained crashes and partitions, §4.6 on vs off");

    for (name, build) in [
        (
            "recovery",
            scenarios::recovery_figure as fn(Scale) -> FigureResult,
        ),
        ("partition", scenarios::partition_figure),
    ] {
        let start = Instant::now();
        let figure = build(scale);
        let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
        println!("\n== {name} ==");
        print!("{}", report::render_figure(&figure));
        print_bench_lines(&figure, scale, wall_ms);
    }
}
