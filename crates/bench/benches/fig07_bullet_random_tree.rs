//! Figure 7: Bullet over a random tree (raw / useful / from-parent bandwidth
//! over time), plus the §4.2 scalars: ~30 Kbps control overhead, <10%
//! duplicates, link stress ≈1.5.

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 7 — Bullet over a random tree");
    let (figure, _run) = figures::fig07(scale);
    print!("{}", report::render_figure(&figure));
}
