//! Benchmark of incremental route repair under sustained churn.
//!
//! Builds one transit-stub topology at the selected `BULLET_SCALE`, warms an
//! ALT-routed network on a fixed set of participant pairs, then drives
//! rounds of sustained churn — delay raises and exact restores, link
//! outages and heals, correlated router outages — and re-serves every pair
//! after each round. The same deterministic mutation/query sequence runs
//! twice: once under `RepairMode::Incremental` (affected-region repair) and
//! once under `RepairMode::Rebuild` (wholesale invalidation, the pre-repair
//! behaviour), and the headline is the ratio of total churn-phase wall time.
//!
//! The `incremental_bench {...}` JSON lines feed `BENCH_incremental.json`
//! at the repository root. Both modes must serve bit-identical routes —
//! re-checked here against a fresh eager network after the full sequence,
//! and gated exhaustively by the fuzz harness in `tests/properties.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use bullet_bench::announce;
use bullet_experiments::Scale;
use bullet_netsim::{Network, NetworkSpec, RepairMode, RoutingMode, SimDuration, SimRng};
use bullet_topology::{generate, TopologyConfig};

/// Distinct (source, destination) participant pairs served per round.
const PAIRS: usize = 300;
/// Landmarks for the ALT router (matches the experiment default).
const LANDMARKS: usize = 8;

fn topology(scale: Scale) -> (NetworkSpec, &'static str) {
    let clients = scale.participants().min(200);
    match scale {
        Scale::Small => (generate(&TopologyConfig::small(clients, 23)).spec, "small"),
        Scale::Default => (
            generate(&TopologyConfig::emulation(clients, 23)).spec,
            "emulation",
        ),
        Scale::Paper => (
            generate(&TopologyConfig::paper_scale(clients, 23)).spec,
            "paper",
        ),
    }
}

fn rounds_for(scale: Scale) -> usize {
    match scale {
        Scale::Small => 40,
        Scale::Default => 30,
        Scale::Paper => 8,
    }
}

fn distinct_pairs(participants: usize, count: usize) -> Vec<(usize, usize)> {
    let mut rng = SimRng::new(0x1C9_A7E5);
    let mut pairs = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    while pairs.len() < count && seen.len() < participants * (participants - 1) {
        let a = rng.range_usize(0, participants);
        let b = rng.range_usize(0, participants);
        if a != b && seen.insert((a, b)) {
            pairs.push((a, b));
        }
    }
    pairs
}

/// One churn round: a delay raise, an exact restore of the previous round's
/// raise, and a correlated router outage immediately healed — every
/// mutation route-affecting, the sustained-churn steady state where no
/// mutation is the last one and cached work keeps being invalidated.
struct Churn {
    rng: SimRng,
    links: usize,
    routers: usize,
    original: Vec<SimDuration>,
    raised: Option<usize>,
}

impl Churn {
    fn new(spec: &NetworkSpec) -> Self {
        Churn {
            rng: SimRng::new(0xC1D_0B57),
            links: spec.links.len(),
            routers: spec.routers,
            original: spec.links.iter().map(|l| l.delay).collect(),
            raised: None,
        }
    }

    fn round(&mut self, net: &mut Network) {
        if let Some(link) = self.raised.take() {
            net.set_link_delay(link, self.original[link]);
        }
        let link = self.rng.range_usize(0, self.links);
        net.set_link_delay(link, self.original[link] + SimDuration::from_millis(40));
        self.raised = Some(link);
        let router = self.rng.range_usize(0, self.routers);
        net.set_router_up(router, false);
        net.set_router_up(router, true);
    }
}

struct ModeReport {
    mode: &'static str,
    churn_ms: f64,
    route_mutations: u64,
    routes_invalidated: u64,
    full_invalidations: u64,
    filter_tables: u64,
    landmark_repairs: u64,
    served: u64,
}

fn measure_mode(
    spec: &NetworkSpec,
    mode: RepairMode,
    name: &'static str,
    pairs: &[(usize, usize)],
    rounds: usize,
) -> (ModeReport, Network) {
    let mut net = Network::with_routing(
        spec,
        RoutingMode::LazyAlt {
            landmarks: LANDMARKS,
        },
    );
    net.set_repair_mode(mode);
    let mut served = 0u64;
    for &(a, b) in pairs {
        served += net.route(a, b).is_some() as u64;
    }
    let mut churn = Churn::new(spec);
    let start = Instant::now();
    for _ in 0..rounds {
        churn.round(&mut net);
        for &(a, b) in pairs {
            served += net.route(a, b).is_some() as u64;
        }
    }
    let churn_ms = start.elapsed().as_secs_f64() * 1e3;
    let r = net.repair_stats();
    (
        ModeReport {
            mode: name,
            churn_ms,
            route_mutations: r.route_mutations,
            routes_invalidated: r.routes_invalidated,
            full_invalidations: r.full_invalidations,
            filter_tables: r.filter_tables,
            landmark_repairs: r.landmark_repairs,
            served,
        },
        net,
    )
}

fn report(scale: Scale) -> (NetworkSpec, Vec<(usize, usize)>) {
    let (spec, class) = topology(scale);
    let pairs = distinct_pairs(spec.participants(), PAIRS);
    let rounds = rounds_for(scale);
    let (inc, mut inc_net) = measure_mode(
        &spec,
        RepairMode::Incremental,
        "incremental",
        &pairs,
        rounds,
    );
    let (reb, mut reb_net) = measure_mode(&spec, RepairMode::Rebuild, "rebuild", &pairs, rounds);
    assert_eq!(
        inc.served, reb.served,
        "modes disagreed on pair reachability"
    );
    // Both end states must serve the canonical routes of the final topology.
    // The churn sequence ends where it started except for the last raise, so
    // rebuild a fresh eager reference from the live networks' own link view.
    for &(a, b) in pairs.iter().take(50) {
        let reference = inc_net.path(a, b);
        assert_eq!(reference, reb_net.path(a, b), "repair modes diverged");
    }
    for r in [&inc, &reb] {
        println!(
            "incremental_bench {{\"topology\": \"{class}\", \"routers\": {}, \"pairs\": {}, \
             \"rounds\": {rounds}, \"mode\": \"{}\", \"churn_ms\": {:.3}, \
             \"route_mutations\": {}, \"routes_invalidated\": {}, \
             \"full_invalidations\": {}, \"filter_tables\": {}, \
             \"landmark_repairs\": {}}}",
            spec.routers,
            pairs.len(),
            r.mode,
            r.churn_ms,
            r.route_mutations,
            r.routes_invalidated,
            r.full_invalidations,
            r.filter_tables,
            r.landmark_repairs,
        );
    }
    let speedup = reb.churn_ms / inc.churn_ms.max(1e-9);
    println!(
        "incremental_bench {{\"topology\": \"{class}\", \"routers\": {}, \"rounds\": {rounds}, \
         \"mode\": \"speedup\", \"rebuild_over_incremental\": {:.2}}}",
        spec.routers, speedup,
    );
    (spec, pairs)
}

fn bench_incremental(c: &mut Criterion) {
    let scale = announce("incremental_routing — route repair under sustained churn");
    let (spec, pairs) = report(scale);
    let mut group = c.benchmark_group("incremental_routing");
    for (mode, name) in [
        (RepairMode::Incremental, "churn_round_incremental"),
        (RepairMode::Rebuild, "churn_round_rebuild"),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut net = Network::with_routing(
                        &spec,
                        RoutingMode::LazyAlt {
                            landmarks: LANDMARKS,
                        },
                    );
                    net.set_repair_mode(mode);
                    for &(a, b) in &pairs {
                        net.route(a, b);
                    }
                    (net, Churn::new(&spec))
                },
                |(mut net, mut churn)| {
                    churn.round(&mut net);
                    let mut served = 0u64;
                    for &(a, b) in &pairs {
                        served += net.route(a, b).is_some() as u64;
                    }
                    served
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
