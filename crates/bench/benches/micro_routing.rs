//! Micro-benchmark of the routing strategies.
//!
//! Builds one transit-stub topology at the selected `BULLET_SCALE` and
//! measures, for each routing mode (eager per-source Dijkstra, lazy
//! bidirectional, lazy ALT):
//!
//! - **setup**: network construction time (includes landmark preprocessing
//!   for ALT — the only precomputation the lazy modes ever do);
//! - **first-contact latency**: time for the first cache-missing `route()`
//!   on a cold network (for the eager reference this includes building the
//!   source's full shortest-path tree);
//! - **paths/sec**: fresh (cache-missing) route computations per second
//!   over a deterministic set of distinct participant pairs.
//!
//! The `routing_bench {...}` JSON lines feed `BENCH_routing.json` at the
//! repository root. All modes return identical canonical paths, which the
//! harness re-checks here on a sample.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use bullet_bench::announce;
use bullet_experiments::Scale;
use bullet_netsim::{Network, NetworkSpec, RoutingMode, SimRng};
use bullet_topology::{generate, TopologyConfig};

/// Distinct (source, destination) participant pairs queried per mode.
const PAIRS: usize = 400;

fn topology(scale: Scale) -> (NetworkSpec, &'static str) {
    let clients = scale.participants().min(200);
    match scale {
        Scale::Small => (generate(&TopologyConfig::small(clients, 11)).spec, "small"),
        Scale::Default => (
            generate(&TopologyConfig::emulation(clients, 11)).spec,
            "emulation",
        ),
        Scale::Paper => (
            generate(&TopologyConfig::paper_scale(clients, 11)).spec,
            "paper",
        ),
    }
}

fn distinct_pairs(participants: usize, count: usize) -> Vec<(usize, usize)> {
    let mut rng = SimRng::new(0x9A175);
    let mut pairs = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    while pairs.len() < count && seen.len() < participants * (participants - 1) {
        let a = (rng.next_u64() % participants as u64) as usize;
        let b = (rng.next_u64() % participants as u64) as usize;
        if a != b && seen.insert((a, b)) {
            pairs.push((a, b));
        }
    }
    pairs
}

struct ModeReport {
    name: &'static str,
    setup_ms: f64,
    first_contact_us: f64,
    paths_per_sec: f64,
    trees_built: u64,
    routers_settled: u64,
}

fn measure_mode(
    spec: &NetworkSpec,
    mode: RoutingMode,
    name: &'static str,
    pairs: &[(usize, usize)],
) -> ModeReport {
    let setup_start = Instant::now();
    let mut net = Network::with_routing(spec, mode);
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

    let (first_a, first_b) = pairs[0];
    let first_start = Instant::now();
    let first = net.route(first_a, first_b);
    let first_contact_us = first_start.elapsed().as_secs_f64() * 1e6;
    assert!(first.is_some(), "first pair must be routable");

    let batch_start = Instant::now();
    for &(a, b) in &pairs[1..] {
        net.route(a, b);
    }
    let batch_secs = batch_start.elapsed().as_secs_f64();
    let stats = net.routing_stats();
    ModeReport {
        name,
        setup_ms,
        first_contact_us,
        paths_per_sec: (pairs.len() - 1) as f64 / batch_secs.max(1e-9),
        trees_built: stats.trees_built,
        routers_settled: stats.routers_settled,
    }
}

fn check_equivalence(spec: &NetworkSpec, pairs: &[(usize, usize)]) {
    let mut eager = Network::with_routing(spec, RoutingMode::EagerPerSource);
    let mut bidi = Network::with_routing(spec, RoutingMode::LazyBidirectional);
    let mut alt = Network::with_routing(spec, RoutingMode::LazyAlt { landmarks: 8 });
    for &(a, b) in pairs.iter().take(50) {
        let reference = eager.path(a, b);
        assert_eq!(reference, bidi.path(a, b), "bidirectional diverged");
        assert_eq!(reference, alt.path(a, b), "ALT diverged");
    }
}

fn report(scale: Scale) -> (NetworkSpec, Vec<(usize, usize)>) {
    let (spec, class) = topology(scale);
    let pairs = distinct_pairs(spec.participants(), PAIRS);
    check_equivalence(&spec, &pairs);
    let modes = [
        (RoutingMode::EagerPerSource, "eager"),
        (RoutingMode::LazyBidirectional, "bidir"),
        (RoutingMode::LazyAlt { landmarks: 8 }, "alt"),
    ];
    for (mode, name) in modes {
        let r = measure_mode(&spec, mode, name, &pairs);
        println!(
            "routing_bench {{\"topology\": \"{class}\", \"routers\": {}, \"pairs\": {}, \
             \"mode\": \"{}\", \"setup_ms\": {:.3}, \"first_contact_us\": {:.1}, \
             \"paths_per_sec\": {:.0}, \"trees_built\": {}, \"routers_settled\": {}}}",
            spec.routers,
            pairs.len(),
            r.name,
            r.setup_ms,
            r.first_contact_us,
            r.paths_per_sec,
            r.trees_built,
            r.routers_settled,
        );
    }
    (spec, pairs)
}

fn bench_routing(c: &mut Criterion) {
    let scale = announce("micro_routing — per-pair route computation");
    let (spec, pairs) = report(scale);
    let mut group = c.benchmark_group("routing");
    group.bench_function("alt_fresh_pairs", |b| {
        b.iter(|| {
            let mut net = Network::with_routing(&spec, RoutingMode::LazyAlt { landmarks: 8 });
            for &(a, b) in &pairs {
                net.route(a, b);
            }
            net.routing_stats().routers_settled
        })
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
