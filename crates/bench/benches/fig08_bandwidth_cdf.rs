//! Figure 8: CDF of instantaneous achieved bandwidth across nodes late in
//! the Bullet run of Figure 7.

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 8 — CDF of instantaneous achieved bandwidth");
    let (figure, cdf) = figures::fig08(scale);
    print!("{}", report::render_figure(&figure));
    print!(
        "{}",
        report::render_cdf("CDF of per-node instantaneous bandwidth (Kbps)", &cdf)
    );
}
