//! Figure 12: Bullet vs the bottleneck tree on lossy topologies (§4.5 loss
//! model: 0–0.3% on non-transit links, 0–0.1% on transit links, 5% of links
//! overloaded at 5–10%).

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 12 — lossy network sweep");
    let figure = figures::fig12(scale);
    print!("{}", report::render_figure(&figure));
}
