//! Ablations of Bullet's design choices (beyond the paper's figures):
//! disjoint send on/off and resemblance-guided vs random peer selection.

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Ablations — disjoint send and resemblance peering");
    let figure = figures::ablations(scale);
    print!("{}", report::render_figure(&figure));
}
