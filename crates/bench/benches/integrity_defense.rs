//! Data-plane integrity benchmark: misbehaving-peer sweep, defense on vs
//! off.
//!
//! Runs the `adversary` figure (0–30% of the overlay corrupting, stalling
//! or falsely advertising mid-stream) at the selected `BULLET_SCALE` and
//! prints its series plus one `integrity_bench {...}` JSON line per run.
//! Those lines feed `BENCH_integrity.json` at the repository root and the
//! nightly `BENCH_integrity` artifact published by the paper-smoke
//! workflow.
//!
//! The acceptance numbers of the integrity layer live in these lines: at
//! 20% adversaries the defense-on `clean_goodput_kbps` must be at least
//! 2x the defense-off value, and defense-on runs must accept zero
//! corrupted blocks (`corrupt_blocks_accepted == 0`).

use std::time::Instant;

use bullet_bench::announce;
use bullet_experiments::{report, scenarios};

fn main() {
    let scale = announce("Data-plane integrity — adversary sweep, defense on vs off");

    let start = Instant::now();
    let figure = scenarios::adversary_figure(scale);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    println!("\n== adversary ==");
    print!("{}", report::render_figure(&figure));
    for (label, summary) in &figure.summaries {
        println!(
            "integrity_bench {{\"figure\": \"{}\", \"run\": \"{}\", \"scale\": \"{:?}\", \
             \"participants\": {}, \"steady_useful_kbps\": {:.1}, \"clean_goodput_kbps\": {:.1}, \
             \"median_delivery_fraction\": {:.4}, \"blocks_verified\": {}, \
             \"corrupt_blocks_rejected\": {}, \"corrupt_blocks_accepted\": {}, \
             \"quarantines\": {}, \"figure_wall_ms\": {:.0}}}",
            figure.id,
            label,
            scale,
            scale.participants(),
            summary.steady_useful_kbps,
            summary.clean_goodput_kbps,
            summary.median_delivery_fraction,
            summary.blocks_verified,
            summary.corrupt_blocks_rejected,
            summary.corrupt_blocks_accepted,
            summary.quarantines,
            wall_ms,
        );
    }
}
