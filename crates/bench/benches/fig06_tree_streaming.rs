//! Figure 6: TFRC streaming over the offline bottleneck-bandwidth tree and a
//! random tree (medium bandwidth profile, 600 Kbps target stream).

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 6 — TFRC streaming over bottleneck vs random tree");
    let figure = figures::fig06(scale);
    print!("{}", report::render_figure(&figure));
}
