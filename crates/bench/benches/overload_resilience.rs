//! Overload-resilience benchmark: join storm + slow receivers on
//! finite-capacity nodes, bounded vs unbounded application queues.
//!
//! Runs the `overload` figure (the flash crowd's 60% joiner suffix in
//! rolling crash-and-rejoin cohorts with a tenth of the flash-crowd ramp,
//! plus persistent slow receivers, on nodes with finite simulated ingress
//! queues) at the selected `BULLET_SCALE` and prints its series plus one
//! `overload_bench {...}` JSON line per run and one summary line for the
//! scalar outcomes. Those lines feed `BENCH_overload.json` at the
//! repository root and the nightly `BENCH_overload` artifact published
//! by CI.
//!
//! The acceptance numbers of the overload layer live in these lines,
//! scored as *timely* goodput — first deliveries landing within the
//! figure's playout deadline of their generation slot, the only bytes a
//! live stream can use. Receive livelock does not destroy the unbounded
//! arm's data, it makes the data late; an unbounded queue at a saturated
//! node serves everything eventually and on time never. The bounded arm's
//! steady-state members must hold well above the unbounded baseline
//! through the storm (about 1.5x mean at default scale, 2x for the
//! worst-quartile members pinned behind the saturated interior nodes),
//! deferred joins must eventually be admitted
//! (`joins_admitted_after_defer > 0`), and the backpressure mechanisms
//! must actually fire (`inbox_sheds > 0`).

use std::time::Instant;

use bullet_bench::announce;
use bullet_experiments::{report, scenarios};

fn main() {
    let scale = announce("Overload resilience — join storm, bounded vs unbounded queues");

    let start = Instant::now();
    let figure = scenarios::overload_figure(scale);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    println!("\n== overload ==");
    print!("{}", report::render_figure(&figure));
    for (label, summary) in &figure.summaries {
        println!(
            "overload_bench {{\"figure\": \"{}\", \"run\": \"{}\", \"scale\": \"{:?}\", \
             \"participants\": {}, \"steady_useful_kbps\": {:.1}, \
             \"median_delivery_fraction\": {:.4}, \"inbox_sheds\": {}, \
             \"joins_deferred\": {}, \"joins_admitted_after_defer\": {}, \
             \"peak_inbox_depth\": {}, \"working_set_evictions\": {}, \
             \"slow_demotions\": {}, \"ingress_sheds\": {}, \
             \"ingress_peak_depth\": {}, \"figure_wall_ms\": {:.0}}}",
            figure.id,
            label,
            scale,
            scale.participants(),
            summary.steady_useful_kbps,
            summary.median_delivery_fraction,
            summary.inbox_sheds,
            summary.joins_deferred,
            summary.joins_admitted_after_defer,
            summary.peak_inbox_depth,
            summary.working_set_evictions,
            summary.slow_demotions,
            summary.ingress_sheds,
            summary.ingress_peak_depth,
            wall_ms,
        );
    }
    // The scalar outcomes the CI gate reads: steady-state member goodput
    // per arm (pre-storm receivers minus the scripted slow ones), timely
    // within the figure's playout deadline, as the member mean and the
    // worst-quartile member mean.
    let scalar = |name: &str| {
        figure
            .scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    println!(
        "overload_bench {{\"figure\": \"{}\", \"run\": \"summary\", \"scale\": \"{:?}\", \
         \"bounded_member_goodput_kbps\": {:.1}, \"unbounded_member_goodput_kbps\": {:.1}, \
         \"bounded_worst_quartile_kbps\": {:.1}, \"unbounded_worst_quartile_kbps\": {:.1}, \
         \"figure_wall_ms\": {:.0}}}",
        figure.id,
        scale,
        scalar("bounded_member_goodput_kbps"),
        scalar("unbounded_member_goodput_kbps"),
        scalar("bounded_worst_quartile_kbps"),
        scalar("unbounded_worst_quartile_kbps"),
        wall_ms,
    );
}
