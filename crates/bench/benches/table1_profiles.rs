//! Table 1: bandwidth ranges per link class, and verification that generated
//! topologies draw link capacities inside them.

use bullet_bench::announce;
use bullet_experiments::{figures, report};
use bullet_netsim::SimRng;
use bullet_topology::{BandwidthProfile, LinkClass};

fn main() {
    announce("Table 1 — bandwidth ranges for link types");
    let rows = figures::table1_rows();
    print!("{}", report::render_table1(&rows));

    // Verify by sampling: every drawn capacity falls inside its class range.
    let mut rng = SimRng::new(1);
    let mut checked = 0u64;
    for profile in BandwidthProfile::ALL {
        for class in LinkClass::ALL {
            let range = profile.range(class);
            for _ in 0..10_000 {
                let bps = profile.sample_bps(class, &mut rng);
                assert!(range.contains_bps(bps));
                checked += 1;
            }
        }
    }
    println!("\nverified {checked} sampled link capacities against their declared ranges");
}
