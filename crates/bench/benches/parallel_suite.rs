//! Parallel figure-suite benchmark: serial vs threaded wall-clock for the
//! whole evaluation grid, plus the per-run setup-sharing win.
//!
//! Prints one `parallel_bench {...}` JSON line per measurement; those lines
//! feed `BENCH_parallel.json` at the repository root and the nightly
//! `BENCH_parallel` artifact.
//!
//! Two measurements:
//!
//! 1. **Suite wall-clock** — the full figure suite run twice through the
//!    flattened grid: once at `BULLET_THREADS=1`-equivalent (one worker, the
//!    reference execution) and once at the threaded width (`BULLET_THREADS`,
//!    default all cores; `--threads` in spirit). The rendered reports are
//!    compared byte for byte — the determinism claim is re-proven on every
//!    benchmark run, not just in the test suite. At `BULLET_SCALE=paper`
//!    the suite measurement is skipped (a full paper-scale suite is a
//!    multi-hour job; the nightly workflow runs the default scale) and only
//!    the setup measurement below runs.
//!
//! 2. **Per-run setup cost** — on this scale's topology class: the
//!    once-per-class cost (generate topology + build the shared
//!    `NetworkSetup`, i.e. adjacency + ALT landmark tables) versus the
//!    per-run cost of a shared-setup `Network` view versus the old
//!    from-scratch `Network::new` per run. At paper scale the from-scratch
//!    path re-runs the landmark Dijkstras over ~20k routers on every run;
//!    the shared view skips all of it.

use std::time::Instant;

use bullet_bench::announce;
use bullet_experiments::{figure_suite, prepare_topology, render_suite, Scale, Sweep};
use bullet_netsim::Network;
use bullet_topology::{BandwidthProfile, LossProfile};

fn main() {
    let scale = announce("Parallel experiment harness — figure suite serial vs threaded");
    let sweep = Sweep::from_env();
    let threads = sweep.pool().threads();
    let seeds = sweep.seeds();

    if scale != Scale::Paper {
        let serial_sweep = Sweep::new(1, seeds);
        println!("\nrunning the figure suite serially (1 worker, {seeds} seed(s))...");
        let start = Instant::now();
        let serial = figure_suite(scale, &serial_sweep);
        let serial_secs = start.elapsed().as_secs_f64();
        println!("serial suite: {serial_secs:.1}s");

        println!("running the figure suite on {threads} worker(s)...");
        let start = Instant::now();
        let threaded = figure_suite(scale, &sweep);
        let threaded_secs = start.elapsed().as_secs_f64();
        println!("threaded suite: {threaded_secs:.1}s");

        let identical = render_suite(&serial) == render_suite(&threaded) && serial == threaded;
        assert!(
            identical,
            "suite output differs between 1 and {threads} threads"
        );
        println!("reports byte-identical across thread counts: {identical}");
        println!(
            "parallel_bench {{\"measurement\": \"suite\", \"scale\": \"{scale:?}\", \
             \"figures\": {}, \"seeds\": {seeds}, \"serial_secs\": {serial_secs:.2}, \
             \"threads\": {threads}, \"threaded_secs\": {threaded_secs:.2}, \
             \"speedup\": {:.2}, \"byte_identical\": {identical}}}",
            serial.len(),
            serial_secs / threaded_secs.max(1e-9),
        );
    } else {
        println!("\nBULLET_SCALE=paper: skipping the full-suite timing (multi-hour);");
        println!("measuring the per-run setup sharing win on the paper topology class.");
    }

    // Setup-sharing measurement on this scale's topology class.
    let participants = scale.participants();
    let start = Instant::now();
    let prepared = prepare_topology(
        scale,
        participants,
        BandwidthProfile::Medium,
        LossProfile::None,
        7,
    );
    let class_setup_secs = start.elapsed().as_secs_f64();

    let runs = 3;
    let start = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(prepared.network());
    }
    let shared_view_secs = start.elapsed().as_secs_f64() / runs as f64;

    let start = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(Network::new(prepared.spec()));
    }
    let scratch_secs = start.elapsed().as_secs_f64() / runs as f64;

    println!(
        "\ntopology class ({} routers, {participants} participants): \
         once-per-class setup {class_setup_secs:.3}s; per-run network view \
         {shared_view_secs:.4}s shared vs {scratch_secs:.4}s from scratch ({:.1}x)",
        prepared.spec().routers,
        scratch_secs / shared_view_secs.max(1e-9),
    );
    println!(
        "parallel_bench {{\"measurement\": \"setup\", \"scale\": \"{scale:?}\", \
         \"routers\": {}, \"participants\": {participants}, \
         \"class_setup_secs\": {class_setup_secs:.4}, \
         \"per_run_shared_secs\": {shared_view_secs:.5}, \
         \"per_run_scratch_secs\": {scratch_secs:.5}, \
         \"per_run_win\": {:.2}}}",
        prepared.spec().routers,
        scratch_secs / shared_view_secs.max(1e-9),
    );
}
