//! Figure 15: the constrained-source experiment standing in for the
//! PlanetLab deployment — Bullet vs streaming over hand-crafted good/worst
//! trees at 1.5 Mbps, with and without the source's uplink constraint.

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 15 — constrained source (PlanetLab stand-in)");
    let figure = figures::fig15(scale);
    print!("{}", report::render_figure(&figure));
}
