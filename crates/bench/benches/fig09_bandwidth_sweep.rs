//! Figure 9: Bullet vs the bottleneck tree across the low / medium / high
//! bandwidth profiles of Table 1.

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 9 — bandwidth sweep (low/medium/high)");
    let figure = figures::fig09(scale);
    print!("{}", report::render_figure(&figure));
}
