//! Telemetry overhead benchmark: events/s with the observability layer
//! off, counters-only (metrics hub + self-profiling), and fully tracing.
//!
//! Runs the bullet64-shaped star workload through `run_metered_with`
//! three ways and prints one `telemetry_bench {...}` JSON line per mode
//! plus a final line with the relative overheads. Those lines feed
//! `BENCH_telemetry.json` at the repository root and the nightly
//! `BENCH_telemetry` artifact published by the paper-smoke workflow.
//!
//! The acceptance number lives in the final line: `counters_overhead_pct`
//! (hub sampling + self-profiling, no flight recorder) must stay within
//! 10% of the telemetry-off event rate. The workload is fixed-size on
//! purpose — overhead ratios, not absolute throughput, are the contract.

use std::time::Instant;

use bullet_bench::announce;
use bullet_core::{BulletConfig, BulletNode};
use bullet_experiments::{run_metered_with, RunSpec, TelemetryConfig};
use bullet_netsim::telemetry::TraceSpec;
use bullet_netsim::{LinkSpec, NetworkSpec, Sim, SimDuration, SimRng, SimTime};
use bullet_overlay::random_tree;

const NODES: usize = 64;
const SEED: u64 = 2003;
const RUN_SECS: u64 = 20;
const ITERATIONS: usize = 3;

fn build_sim() -> Sim<BulletNode> {
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            2_000_000.0,
            SimDuration::from_millis(10),
        ));
        spec.attach(i);
    }
    let mut rng = SimRng::new(SEED);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let config = BulletConfig {
        stream_rate_bps: 500_000.0,
        stream_start: SimTime::from_secs(2),
        ..BulletConfig::default()
    };
    let agents: Vec<BulletNode> = (0..NODES)
        .map(|i| BulletNode::new(i, &tree, config.clone()))
        .collect();
    Sim::new(&spec, agents, SEED)
}

fn run_spec() -> RunSpec {
    RunSpec {
        label: "telemetry_overhead".into(),
        source: 0,
        duration: SimDuration::from_secs(RUN_SECS),
        sample_interval: SimDuration::from_secs(2),
        failure: None,
    }
}

/// Best-of-N events/s for one telemetry configuration (the minimum wall
/// time is the least-noisy estimator on a shared machine).
fn measure(config: &TelemetryConfig) -> (u64, f64) {
    let spec = run_spec();
    // Warmup run, untimed.
    let _ = run_metered_with(build_sim(), &spec, config);
    let mut events = 0u64;
    let mut best_secs = f64::INFINITY;
    for _ in 0..ITERATIONS {
        let sim = build_sim();
        let start = Instant::now();
        let result = run_metered_with(sim, &spec, config);
        let secs = start.elapsed().as_secs_f64();
        events = result.summary.sim_events;
        if secs < best_secs {
            best_secs = secs;
        }
    }
    (events, events as f64 / best_secs)
}

fn main() {
    announce("Telemetry overhead — events/s off vs counters-only vs full trace");
    println!(
        "# fixed workload: {NODES}-node star, 500 Kbps stream, {RUN_SECS} s sim, \
         best of {ITERATIONS} runs"
    );

    let modes: [(&str, TelemetryConfig); 3] = [
        ("off", TelemetryConfig::disabled()),
        (
            "counters",
            TelemetryConfig {
                trace: None,
                profile: true,
            },
        ),
        (
            "trace",
            TelemetryConfig {
                trace: Some(TraceSpec::parse("all,cap=1048576").expect("valid spec")),
                profile: true,
            },
        ),
    ];

    let mut rates = [0.0f64; 3];
    for (i, (name, config)) in modes.iter().enumerate() {
        let (events, rate) = measure(config);
        rates[i] = rate;
        println!(
            "telemetry_bench {{\"mode\": \"{name}\", \"sim_events\": {events}, \
             \"events_per_sec\": {rate:.0}}}"
        );
    }

    let overhead = |rate: f64| (rates[0] / rate - 1.0) * 100.0;
    println!(
        "telemetry_bench {{\"mode\": \"summary\", \"counters_overhead_pct\": {:.2}, \
         \"trace_overhead_pct\": {:.2}, \"budget_counters_pct\": 10.0}}",
        overhead(rates[1]),
        overhead(rates[2]),
    );
}
