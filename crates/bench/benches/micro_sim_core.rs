//! Micro-benchmark of the discrete-event simulator core.
//!
//! Drives a 128-node random-tree streaming workload — a source pushing
//! fixed-size packets down a degree-bounded random tree, every receiver
//! re-arming a per-packet watchdog timer — and reports both mean time per
//! run (Criterion) and raw event-loop throughput in events per second. The
//! workload deliberately uses a payload with no heap data so the measurement
//! isolates the simulator's own per-event costs (routing, queue handling,
//! timer management, action dispatch).
//!
//! The events/sec line feeds `BENCH_simcore.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use bullet_netsim::{
    Agent, Context, LinkSpec, NetworkSpec, OverlayId, Sim, SimDuration, SimRng, SimTime,
};
use bullet_overlay::random_tree;

const NODES: usize = 128;
const PACKET_BYTES: u32 = 1_400;
const PACKET_INTERVAL: SimDuration = SimDuration::from_millis(2);
const RUN_SECS: u64 = 5;

const TAG_GENERATE: u64 = 1;
const TAG_WATCHDOG: u64 = 2;

#[derive(Clone)]
struct Pkt {
    seq: u64,
}

/// One node of the streaming tree: the source generates packets on a timer;
/// every other node forwards each packet to its children and re-arms a
/// watchdog timer per packet (cancelling the previous one), which exercises
/// the simulator's timer set/cancel path the way Bullet's control loops do.
struct StreamNode {
    children: Vec<OverlayId>,
    is_source: bool,
    next_seq: u64,
    received: u64,
    watchdog: Option<bullet_netsim::TimerId>,
    watchdog_fired: u64,
}

impl StreamNode {
    fn new(children: Vec<OverlayId>, is_source: bool) -> Self {
        StreamNode {
            children,
            is_source,
            next_seq: 0,
            received: 0,
            watchdog: None,
            watchdog_fired: 0,
        }
    }

    fn forward(&mut self, ctx: &mut Context<'_, Pkt>, seq: u64) {
        for i in 0..self.children.len() {
            let child = self.children[i];
            ctx.send_data(child, Pkt { seq }, PACKET_BYTES);
        }
    }
}

impl Agent for StreamNode {
    type Msg = Pkt;

    fn on_start(&mut self, ctx: &mut Context<'_, Pkt>) {
        if self.is_source {
            ctx.set_timer(PACKET_INTERVAL, TAG_GENERATE);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Pkt>, _from: OverlayId, msg: Pkt) {
        self.received += 1;
        if let Some(id) = self.watchdog.take() {
            ctx.cancel_timer(id);
        }
        self.watchdog = Some(ctx.set_timer(SimDuration::from_secs(2), TAG_WATCHDOG));
        self.forward(ctx, msg.seq);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Pkt>, tag: u64) {
        match tag {
            TAG_GENERATE => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.forward(ctx, seq);
                ctx.set_timer(PACKET_INTERVAL, TAG_GENERATE);
            }
            _ => self.watchdog_fired += 1,
        }
    }
}

/// Star topology: every participant on its own stub router, all joined
/// through one core router, so every overlay hop crosses two physical links.
fn star_spec(n: usize) -> NetworkSpec {
    let mut spec = NetworkSpec::new(n + 1);
    for i in 0..n {
        spec.add_link(LinkSpec::new(
            n,
            i,
            100_000_000.0,
            SimDuration::from_millis(5),
        ));
        spec.attach(i);
    }
    spec
}

fn build_sim(seed: u64) -> Sim<StreamNode> {
    let spec = star_spec(NODES);
    let mut rng = SimRng::new(seed);
    let tree = random_tree(NODES, 0, 4, &mut rng);
    let agents: Vec<StreamNode> = (0..NODES)
        .map(|i| StreamNode::new(tree.children(i).to_vec(), i == 0))
        .collect();
    Sim::new(&spec, agents, seed)
}

fn run_workload(seed: u64) -> u64 {
    let mut sim = build_sim(seed);
    sim.run_until(SimTime::from_secs(RUN_SECS));
    assert!(
        sim.agent(NODES - 1).received > 0,
        "stream never reached the last node"
    );
    sim.counters().events
}

/// Standalone throughput measurement: total events processed per wall-clock
/// second over several fresh runs. Printed once so the number can be recorded
/// in `BENCH_simcore.json`.
fn report_events_per_sec() {
    // Warm up code and allocator.
    let _ = run_workload(1);
    let mut events = 0u64;
    let start = Instant::now();
    let rounds = 5;
    for seed in 0..rounds {
        events += run_workload(seed + 1);
    }
    let secs = start.elapsed().as_secs_f64();
    let eps = events as f64 / secs;
    println!(
        "sim_core_throughput {{\"nodes\": {NODES}, \"sim_secs_per_run\": {RUN_SECS}, \
         \"runs\": {rounds}, \"events\": {events}, \"wall_secs\": {secs:.3}, \
         \"events_per_sec\": {eps:.0}}}"
    );
}

fn bench_sim_core(c: &mut Criterion) {
    report_events_per_sec();
    let mut group = c.benchmark_group("sim_core");
    group.bench_function("random_tree_stream_128", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_workload(seed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim_core);
criterion_main!(benches);
