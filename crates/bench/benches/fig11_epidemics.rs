//! Figure 11: Bullet vs push gossip vs streaming with anti-entropy recovery
//! (900 Kbps target, loss-free topology, full membership for the epidemics).

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 11 — Bullet vs epidemic approaches");
    let figure = figures::fig11(scale);
    print!("{}", report::render_figure(&figure));
}
