//! Micro-benchmark of the batched tree-oracle setup path.
//!
//! Every figure that compares Bullet against an offline tree (OMBT,
//! Overcast-like, hand-crafted good/worst) first runs a bandwidth oracle
//! over the topology. Before PR 3 those oracles issued one lazy
//! point-to-point search per (source, destination) pair — ~1M searches for a
//! 1,000-participant paper-scale run. This benchmark measures the batched
//! one-to-many path (`Network::route_batched` backed by
//! `LazyRouter::paths_to_many`) against that pairwise baseline:
//!
//! - **ombt**: the greedy offline bottleneck tree of §4.1 (the worst-case
//!   oracle: it evaluates every accepted node against every outside node);
//! - **overcast**: the online bandwidth-optimized join sequence of §4.2;
//! - **metric**: the per-node bandwidth-from-source metric behind the
//!   hand-crafted good/worst trees of §4.7 (forward row prefetched, reverse
//!   pairs left as point queries);
//! - **figure_setup_total**: the sum — the oracle wall time a figure pays
//!   before its first simulated packet.
//!
//! Every comparison asserts the batched and pairwise results are
//! bit-identical (same parents / same estimates); the `oracle_bench {...}`
//! JSON lines feed `BENCH_oracles.json` at the repository root and the
//! nightly `BENCH_oracles` artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use bullet_bench::announce;
use bullet_experiments::Scale;
use bullet_netsim::{Network, RoutingStats};
use bullet_overlay::{
    bottleneck_tree_with, overcast_tree_with, OmbtConfig, OracleStrategy, OvercastConfig,
    ThroughputOracle,
};
use bullet_topology::{generate, BuiltTopology, TopologyConfig};

fn topology(scale: Scale) -> (BuiltTopology, &'static str) {
    let clients = scale.participants();
    match scale {
        Scale::Small => (generate(&TopologyConfig::small(clients, 11)), "small"),
        Scale::Default => (
            generate(&TopologyConfig::emulation(clients, 11)),
            "emulation",
        ),
        Scale::Paper => (generate(&TopologyConfig::paper_scale(clients, 11)), "paper"),
    }
}

struct OracleReport {
    oracle: &'static str,
    batched_ms: f64,
    pairwise_ms: f64,
    identical: bool,
    stats: RoutingStats,
}

impl OracleReport {
    fn print(&self, class: &str, routers: usize, participants: usize) {
        println!(
            "oracle_bench {{\"topology\": \"{class}\", \"routers\": {routers}, \
             \"participants\": {participants}, \"oracle\": \"{}\", \"batched_ms\": {:.1}, \
             \"pairwise_ms\": {:.1}, \"speedup\": {:.2}, \"identical\": {}, \
             \"trees_built\": {}, \"row_fills\": {}, \"point_searches\": {}}}",
            self.oracle,
            self.batched_ms,
            self.pairwise_ms,
            self.pairwise_ms / self.batched_ms.max(1e-9),
            self.identical,
            self.stats.trees_built,
            self.stats.batched_queries,
            self.stats.lazy_searches,
        );
    }
}

fn measure_ombt(topo: &BuiltTopology, participants: usize) -> OracleReport {
    let config = OmbtConfig::default();
    let mut net = Network::new(&topo.spec);
    let start = Instant::now();
    let batched = bottleneck_tree_with(&mut net, participants, 0, &config, OracleStrategy::Batched);
    let batched_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = net.routing_stats();
    drop(net);
    let mut net = Network::new(&topo.spec);
    let start = Instant::now();
    let pairwise =
        bottleneck_tree_with(&mut net, participants, 0, &config, OracleStrategy::Pairwise);
    let pairwise_ms = start.elapsed().as_secs_f64() * 1e3;
    OracleReport {
        oracle: "ombt",
        batched_ms,
        pairwise_ms,
        identical: batched.parents() == pairwise.parents(),
        stats,
    }
}

fn measure_overcast(topo: &BuiltTopology, participants: usize) -> OracleReport {
    let config = OvercastConfig::default();
    let mut net = Network::new(&topo.spec);
    let start = Instant::now();
    let batched = overcast_tree_with(&mut net, participants, 0, &config, OracleStrategy::Batched);
    let batched_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = net.routing_stats();
    drop(net);
    let mut net = Network::new(&topo.spec);
    let start = Instant::now();
    let pairwise = overcast_tree_with(&mut net, participants, 0, &config, OracleStrategy::Pairwise);
    let pairwise_ms = start.elapsed().as_secs_f64() * 1e3;
    OracleReport {
        oracle: "overcast",
        batched_ms,
        pairwise_ms,
        identical: batched.parents() == pairwise.parents(),
        stats,
    }
}

/// The bandwidth-from-source metric behind the good/worst trees: forward row
/// prefetched in one batch, reverse pairs as point queries — against the
/// all-point-query baseline.
fn measure_metric(topo: &BuiltTopology, participants: usize) -> OracleReport {
    let metric = |prefetch: bool| -> (Vec<Option<f64>>, f64, RoutingStats) {
        let mut net = Network::new(&topo.spec);
        let start = Instant::now();
        let mut oracle = ThroughputOracle::with_strategy(&mut net, 1_500, OracleStrategy::Pairwise);
        if prefetch {
            oracle.prefetch_from(0);
        }
        let values = (1..participants)
            .map(|node| oracle.estimate_bps(0, node))
            .collect();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let stats = net.routing_stats();
        (values, ms, stats)
    };
    let (batched_values, batched_ms, stats) = metric(true);
    let (pairwise_values, pairwise_ms, _) = metric(false);
    OracleReport {
        oracle: "metric",
        batched_ms,
        pairwise_ms,
        identical: batched_values == pairwise_values,
        stats,
    }
}

fn report(scale: Scale) -> BuiltTopology {
    let (topo, class) = topology(scale);
    let participants = topo.participants();
    let routers = topo.spec.routers;
    let mut total_batched = 0.0;
    let mut total_pairwise = 0.0;
    let mut all_identical = true;
    let mut total_stats: Option<RoutingStats> = None;
    for measure in [measure_ombt, measure_overcast, measure_metric] {
        let r = measure(&topo, participants);
        r.print(class, routers, participants);
        total_batched += r.batched_ms;
        total_pairwise += r.pairwise_ms;
        all_identical &= r.identical;
        total_stats = Some(match total_stats {
            None => r.stats,
            Some(acc) => RoutingStats {
                route_queries: acc.route_queries + r.stats.route_queries,
                batched_queries: acc.batched_queries + r.stats.batched_queries,
                trees_built: acc.trees_built + r.stats.trees_built,
                lazy_searches: acc.lazy_searches + r.stats.lazy_searches,
                routers_settled: acc.routers_settled + r.stats.routers_settled,
                ..acc
            },
        });
        assert!(
            r.identical,
            "{}: batched oracle diverged from pairwise",
            r.oracle
        );
    }
    let total = OracleReport {
        oracle: "figure_setup_total",
        batched_ms: total_batched,
        pairwise_ms: total_pairwise,
        identical: all_identical,
        stats: total_stats.expect("at least one oracle measured"),
    };
    total.print(class, routers, participants);
    topo
}

fn bench_oracles(c: &mut Criterion) {
    let scale = announce("micro_oracles — batched tree-oracle setup");
    let topo = report(scale);
    // Criterion smoke: one batched OMBT construction end to end, on a small
    // fixed overlay so `cargo bench` stays quick at every scale.
    let smoke = generate(&TopologyConfig::small(24, 7));
    let mut group = c.benchmark_group("oracles");
    group.bench_function("ombt_batched_small", |b| {
        b.iter(|| {
            let mut net = Network::new(&smoke.spec);
            bottleneck_tree_with(
                &mut net,
                smoke.participants(),
                0,
                &OmbtConfig::default(),
                OracleStrategy::Batched,
            )
            .parents()
            .len()
        })
    });
    group.finish();
    drop(topo);
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
