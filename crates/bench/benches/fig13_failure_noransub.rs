//! Figure 13: worst-case failure of a root child with RanSub failure
//! detection disabled (peer relationships are frozen at failure time).

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 13 — worst-case failure, no RanSub recovery");
    let figure = figures::fig13(scale);
    print!("{}", report::render_figure(&figure));
}
