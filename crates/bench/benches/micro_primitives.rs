//! Criterion micro-benchmarks of the hot data-plane primitives: Bloom filter
//! operations, summary-ticket construction and resemblance, RanSub Compact,
//! LT encoding/decoding, and the TFRC response function.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bullet_codec::{LtDecoder, LtEncoder};
use bullet_content::{BloomFilter, PermutationFamily, SummaryTicket};
use bullet_netsim::SimRng;
use bullet_ransub::{compact, Member, WeightedSet};
use bullet_transport::tcp_throughput_bps;

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.bench_function("insert_1k", |b| {
        b.iter_batched(
            || BloomFilter::new(16_384, 6),
            |mut bf| {
                for key in 0..1_000u64 {
                    bf.insert(black_box(key));
                }
                bf
            },
            BatchSize::SmallInput,
        )
    });
    let mut filled = BloomFilter::new(16_384, 6);
    for key in 0..1_500u64 {
        filled.insert(key);
    }
    group.bench_function("query_1k", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for key in 0..1_000u64 {
                if filled.contains(black_box(key * 3)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_summary_ticket(c: &mut Criterion) {
    let family = PermutationFamily::paper_default();
    let mut group = c.benchmark_group("summary_ticket");
    group.bench_function("build_1500", |b| {
        b.iter(|| SummaryTicket::from_elements(&family, black_box(0..1_500u64)))
    });
    let a = SummaryTicket::from_elements(&family, 0..1_500);
    let bticket = SummaryTicket::from_elements(&family, 750..2_250);
    group.bench_function("resemblance", |b| {
        b.iter(|| a.resemblance(black_box(&bticket)))
    });
    group.finish();
}

fn bench_compact(c: &mut Criterion) {
    let mut rng = SimRng::new(7);
    let inputs: Vec<WeightedSet<u64>> = (0..5)
        .map(|set| WeightedSet {
            members: (0..10)
                .map(|i| Member {
                    node: set * 100 + i,
                    state: i as u64,
                })
                .collect(),
            population: 200,
        })
        .collect();
    c.bench_function("ransub_compact_5x10", |b| {
        b.iter(|| compact(black_box(&inputs), 10, &mut rng))
    });
}

fn bench_lt_codes(c: &mut Criterion) {
    let source: Vec<Vec<u8>> = (0..100).map(|i| vec![i as u8; 1_400]).collect();
    let encoder = LtEncoder::new(source, 9);
    let mut group = c.benchmark_group("lt_codes");
    group.bench_function("encode_symbol", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            encoder.symbol(black_box(id))
        })
    });
    group.bench_function("decode_block_k100", |b| {
        b.iter_batched(
            || {
                let symbols: Vec<_> = (0..160).map(|id| encoder.symbol(id)).collect();
                (LtDecoder::new(100, 1_400, 9), symbols)
            },
            |(mut decoder, symbols)| {
                for symbol in &symbols {
                    decoder.add(symbol);
                    if decoder.is_complete() {
                        break;
                    }
                }
                decoder.is_complete()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_tfrc_equation(c: &mut Criterion) {
    c.bench_function("tfrc_response_function", |b| {
        b.iter(|| tcp_throughput_bps(black_box(1_500.0), black_box(0.08), black_box(0.01)))
    });
}

criterion_group!(
    benches,
    bench_bloom,
    bench_summary_ticket,
    bench_compact,
    bench_lt_codes,
    bench_tfrc_equation
);
criterion_main!(benches);
