//! Scenario-dynamics benchmark: churn, flash crowd, oscillating bottleneck.
//!
//! Runs the three scenario figures from `bullet_experiments::scenarios` at
//! the selected `BULLET_SCALE` and prints their series plus one
//! `churn_bench {...}` JSON line per run. Those lines feed
//! `BENCH_churn.json` at the repository root and the nightly `BENCH_churn`
//! artifact published by the paper-smoke workflow.
//!
//! Setting `BULLET_SCENARIO` additionally runs a Bullet random-tree figure
//! under that custom script (see the README's "Scenarios" section for the
//! format) — a harness for one-off what-if runs.

use std::time::Instant;

use bullet_bench::announce;
use bullet_dynamics::ScenarioScript;
use bullet_experiments::{
    build_topology, build_tree, bullet_run_scenario, report, scenarios, FigureResult, RunSpec,
    Scale, TreeKind,
};
use bullet_netsim::{SimDuration, SimTime};
use bullet_topology::{BandwidthProfile, LossProfile};

fn print_bench_lines(figure: &FigureResult, scale: Scale, wall_ms: f64) {
    for (label, summary) in &figure.summaries {
        println!(
            "churn_bench {{\"figure\": \"{}\", \"run\": \"{}\", \"scale\": \"{:?}\", \
             \"participants\": {}, \"steady_useful_kbps\": {:.1}, \"steady_raw_kbps\": {:.1}, \
             \"duplicate_fraction\": {:.4}, \"median_delivery_fraction\": {:.4}, \
             \"control_overhead_kbps\": {:.2}, \"figure_wall_ms\": {:.0}}}",
            figure.id,
            label,
            scale,
            scale.participants(),
            summary.steady_useful_kbps,
            summary.steady_raw_kbps,
            summary.duplicate_fraction,
            summary.median_delivery_fraction,
            summary.control_overhead_kbps,
            wall_ms,
        );
    }
}

fn main() {
    let scale = announce("Scenario dynamics — churn, flash crowd, oscillating bottleneck");

    for (name, build) in [
        (
            "churn",
            scenarios::churn_figure as fn(Scale) -> FigureResult,
        ),
        ("flashcrowd", scenarios::flash_crowd_figure),
        ("oscillation", scenarios::oscillating_bottleneck_figure),
    ] {
        let start = Instant::now();
        let figure = build(scale);
        let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
        println!("\n== {name} ==");
        print!("{}", report::render_figure(&figure));
        print_bench_lines(&figure, scale, wall_ms);
    }

    if let Some(script) = ScenarioScript::from_env() {
        println!("\n== custom BULLET_SCENARIO ==");
        let seed = 99;
        let topo = build_topology(
            scale,
            scale.participants(),
            BandwidthProfile::Medium,
            LossProfile::None,
            seed,
        );
        let tree = build_tree(&topo, TreeKind::Random { max_children: 10 }, 0, seed);
        let config = bullet_core::BulletConfig {
            stream_rate_bps: 600_000.0,
            stream_start: SimTime::from_secs(scale.stream_start_secs()),
            ..bullet_core::BulletConfig::default()
        }
        .churn();
        let run = RunSpec {
            label: format!("Bullet - custom scenario ({} events)", script.len()),
            source: 0,
            duration: SimDuration::from_secs(scale.duration_secs()),
            sample_interval: SimDuration::from_secs(scale.sample_secs()),
            failure: None,
        };
        let result = bullet_run_scenario(&topo.spec, &tree, &config, &run, &script, seed);
        let mut figure = FigureResult {
            id: "custom".into(),
            title: "Bullet under the BULLET_SCENARIO script".into(),
            ..FigureResult::default()
        };
        figure.series.push(result.useful.clone());
        figure
            .summaries
            .push((result.label.clone(), result.summary.clone()));
        print!("{}", report::render_figure(&figure));
        print_bench_lines(&figure, scale, 0.0);
    }
}
