//! Figure 10: Bullet with the disjoint transmission strategy disabled (every
//! parent tries to send everything to every child).

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 10 — non-disjoint data transmission");
    let figure = figures::fig10(scale);
    print!("{}", report::render_figure(&figure));
}
