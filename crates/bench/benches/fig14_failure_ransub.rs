//! Figure 14: the same worst-case failure with RanSub epoch-timeout failure
//! detection enabled (the root keeps distributing fresh random subsets).

use bullet_bench::announce;
use bullet_experiments::{figures, report};

fn main() {
    let scale = announce("Figure 14 — worst-case failure, RanSub recovery enabled");
    let figure = figures::fig14(scale);
    print!("{}", report::render_figure(&figure));
}
