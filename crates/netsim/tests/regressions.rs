//! Regression tests for two event-queue/timer edge paths of the
//! zero-allocation simulator rework:
//!
//! 1. the current-instant FIFO fast path after `run_until` rewinds the
//!    clock (a same-instant push must not be allowed to jump ahead of an
//!    earlier-keyed event still sitting in the heap, and vice versa), and
//! 2. cancelling a stale `TimerId` twice after its generation-stamped slot
//!    has been reused by a newer timer (the stale id must stay dead and the
//!    newer timer must be unaffected).

use bullet_netsim::{
    Agent, Context, LinkSpec, NetworkSpec, OverlayId, Sim, SimDuration, SimTime, TimerId,
};

fn two_node_spec() -> NetworkSpec {
    let mut spec = NetworkSpec::new(2);
    spec.add_link(LinkSpec::new(0, 1, 10e6, SimDuration::from_millis(10)));
    spec.attach(0);
    spec.attach(1);
    spec
}

/// An inert agent used where only externally scheduled events matter.
struct Inert;

impl Agent for Inert {
    type Msg = ();
    fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: OverlayId, _msg: ()) {}
    fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _tag: u64) {}
}

/// After `run_until` rewinds the clock, a push at the rewound instant has a
/// *larger* sequence number but an *earlier* time than events already queued
/// at the old instant. The FIFO fast path must reject it (its key is not
/// larger than the FIFO back) so the heap restores global `(time, seq)`
/// order: here, the recovery at t=5 s must dispatch before the failure
/// queued at t=10 s, leaving the node failed.
#[test]
fn clock_rewind_keeps_fifo_and_heap_in_global_key_order() {
    let spec = two_node_spec();
    let mut sim = Sim::new(&spec, vec![Inert, Inert], 1);
    sim.run_until(SimTime::from_secs(10));
    // Queued at the current instant: takes the FIFO fast path.
    sim.schedule_failure(SimTime::from_secs(10), 1);
    // Rewind the clock; the failure is still pending at t=10 s.
    sim.run_until(SimTime::from_secs(5));
    // Scheduled at the rewound "now": must NOT ride the FIFO behind the
    // t=10 s failure — chronological order is recovery first.
    sim.schedule_recovery(SimTime::from_secs(5), 1);
    assert!(!sim.is_failed(1));
    sim.run_until(SimTime::from_secs(20));
    assert!(
        sim.is_failed(1),
        "recovery(5s) must dispatch before failure(10s) despite later scheduling"
    );
    assert_eq!(sim.counters().events, 2);
}

/// Same rewind, opposite order: events pushed at the rewound instant in
/// increasing key order may use the FIFO again, and they dispatch before
/// the later-time event left in the queue.
#[test]
fn pushes_after_rewind_dispatch_before_older_later_events() {
    let spec = two_node_spec();
    let mut sim = Sim::new(&spec, vec![Inert, Inert], 1);
    sim.run_until(SimTime::from_secs(10));
    sim.schedule_recovery(SimTime::from_secs(10), 0);
    sim.run_until(SimTime::from_secs(4));
    // Two same-instant events after the rewind; chronologically they come
    // first and must themselves stay in seq order: fail then recover.
    sim.schedule_failure(SimTime::from_secs(4), 0);
    sim.schedule_recovery(SimTime::from_secs(4), 0);
    sim.run_until(SimTime::from_secs(4));
    assert!(!sim.is_failed(0), "fail(4s) then recover(4s) in seq order");
    // The t=10 s recovery is still pending.
    sim.schedule_failure(SimTime::from_secs(9), 0);
    sim.run_until(SimTime::from_secs(20));
    assert!(!sim.is_failed(0), "recover(10s) dispatches after fail(9s)");
    assert_eq!(sim.counters().events, 4);
}

/// Arms a short and a long timer; when the short one fires it cancels the
/// long timer's *stale predecessor id* twice, after the slot has been
/// reused. The stale cancels must be no-ops: the live reincarnation fires.
struct StaleCanceller {
    /// The id whose slot will be retired and reused.
    stale: Option<TimerId>,
    fired: Vec<(u64, SimTime)>,
}

const TAG_SHORT: u64 = 1;
const TAG_FIRST: u64 = 2;
const TAG_REUSED: u64 = 3;

impl Agent for StaleCanceller {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        // Slot 0: will fire at 1 s and be retired.
        self.stale = Some(ctx.set_timer(SimDuration::from_secs(1), TAG_FIRST));
        ctx.set_timer(SimDuration::from_secs(2), TAG_SHORT);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: OverlayId, _msg: ()) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, ()>, tag: u64) {
        self.fired.push((tag, ctx.now()));
        match tag {
            TAG_FIRST => {
                // Nothing: the slot is now retired and free for reuse.
            }
            TAG_SHORT => {
                // Reuse the retired slot (generation bumped), then cancel
                // the stale id twice. Neither cancel may touch the reused
                // slot's live timer.
                ctx.set_timer(SimDuration::from_secs(1), TAG_REUSED);
                let stale = self.stale.take().expect("armed at start");
                ctx.cancel_timer(stale);
                ctx.cancel_timer(stale);
            }
            _ => {}
        }
    }
}

#[test]
fn double_cancel_of_stale_id_after_slot_reuse_is_a_no_op() {
    let spec = two_node_spec();
    let agents = vec![
        StaleCanceller {
            stale: None,
            fired: Vec::new(),
        },
        StaleCanceller {
            stale: None,
            fired: Vec::new(),
        },
    ];
    let mut sim = Sim::new(&spec, agents, 7);
    sim.run_until(SimTime::from_secs(10));
    for node in 0..2 {
        let fired = &sim.agent(node).fired;
        assert_eq!(
            fired.iter().map(|&(tag, _)| tag).collect::<Vec<_>>(),
            vec![TAG_FIRST, TAG_SHORT, TAG_REUSED],
            "node {node}: the reused-slot timer must fire despite stale cancels"
        );
        assert_eq!(
            fired[2].1,
            SimTime::from_secs(3),
            "reused timer fires on time"
        );
    }
    let (_, _, timer_slots, live) = sim.pool_stats();
    assert_eq!(live, 0, "all timers resolved");
    assert!(
        timer_slots <= 4,
        "stale cancels must not grow the slab (got {timer_slots} slots)"
    );
    assert_eq!(sim.counters().timers_fired, 6);
}
