//! Proves the simulator's steady-state hot path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; the test warms a
//! streaming workload (interning every route, growing the event queue,
//! flight pool, timer slab, and scratch buffers to their steady-state
//! sizes), snapshots the allocation counter, runs five more simulated
//! seconds of traffic, and requires the counter not to move: every
//! `send_message` → `handle_hop` → `handle_deliver` cycle and every timer
//! arm/cancel/fire must recycle pooled memory.
//!
//! This file contains exactly one test so no concurrent test can touch the
//! process-wide counter during the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bullet_netsim::{
    Agent, Context, LinkSpec, NetworkSpec, OverlayId, Sim, SimDuration, SimTime, TimerId,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const NODES: usize = 32;
const PACKET_BYTES: u32 = 1_200;

#[derive(Clone, Copy)]
struct Pkt {
    seq: u64,
}

/// A heap-free streaming agent: the source emits packets on a timer; every
/// node forwards to its children and churns a per-packet watchdog timer
/// (arm + cancel), exercising the send, hop, deliver, set-timer and
/// cancel-timer paths on every message.
struct FloodNode {
    children: Vec<OverlayId>,
    is_source: bool,
    next_seq: u64,
    received: u64,
    last_seq: u64,
    watchdog: Option<TimerId>,
}

impl Agent for FloodNode {
    type Msg = Pkt;

    fn on_start(&mut self, ctx: &mut Context<'_, Pkt>) {
        if self.is_source {
            ctx.set_timer(SimDuration::from_millis(4), 0);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Pkt>, _from: OverlayId, msg: Pkt) {
        self.received += 1;
        self.last_seq = msg.seq;
        if let Some(id) = self.watchdog.take() {
            ctx.cancel_timer(id);
        }
        self.watchdog = Some(ctx.set_timer(SimDuration::from_secs(1), 1));
        for &child in &self.children {
            ctx.send_data(child, msg, PACKET_BYTES);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Pkt>, tag: u64) {
        if tag == 0 {
            let seq = self.next_seq;
            self.next_seq += 1;
            for &child in &self.children {
                ctx.send_data(child, Pkt { seq }, PACKET_BYTES);
            }
            ctx.set_timer(SimDuration::from_millis(4), 0);
        }
    }
}

#[test]
fn steady_state_message_delivery_allocates_nothing() {
    // Star topology plus a colocated participant to exercise the loopback
    // (empty-route) delivery path inside the measured window.
    let mut spec = NetworkSpec::new(NODES + 1);
    for i in 0..NODES {
        spec.add_link(LinkSpec::new(
            NODES,
            i,
            50_000_000.0,
            SimDuration::from_millis(5),
        ));
        spec.attach(i);
    }
    let colocated = spec.attach(0); // shares router 0 with participant 0
    let n = spec.participants();

    // A fixed binary-ish tree over the participants, built without RNG.
    let agents: Vec<FloodNode> = (0..n)
        .map(|i| {
            let mut children: Vec<OverlayId> = [2 * i + 1, 2 * i + 2]
                .into_iter()
                .filter(|&c| c < NODES)
                .collect();
            if i == 0 {
                children.push(colocated);
            }
            FloodNode {
                children,
                is_source: i == 0,
                next_seq: 0,
                received: 0,
                last_seq: 0,
                watchdog: None,
            }
        })
        .collect();

    let mut sim = Sim::new(&spec, agents, 7);

    // Warm-up: intern all routes, grow the queue/pools to steady state.
    sim.run_until(SimTime::from_secs(5));
    let (flight_slots, _, timer_slots, _) = sim.pool_stats();
    assert!(flight_slots > 0 && timer_slots > 0, "pools are in use");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sim.run_until(SimTime::from_secs(10));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    let delivered = sim.counters().delivered;
    assert!(
        delivered > 50_000,
        "workload too small to be meaningful: {delivered} deliveries"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state hot path allocated {} times over {} deliveries",
        after - before,
        delivered
    );
    assert!(
        sim.agent(colocated).received > 0,
        "loopback participant received traffic"
    );

    // The pools must have served the second half of the run without
    // growing (recycling, not leaking).
    let (flight_slots_after, _, timer_slots_after, live_timers) = sim.pool_stats();
    assert_eq!(flight_slots, flight_slots_after, "flight pool did not grow");
    assert_eq!(timer_slots, timer_slots_after, "timer slab did not grow");
    assert!(live_timers <= n + 1, "watchdogs are recycled, not leaked");
}
