//! Deterministic random number generation for the simulator.
//!
//! Every source of randomness in an experiment flows from a single seed so
//! that two runs with the same scenario configuration produce identical
//! packet traces. The generator is a small xoshiro256** implementation; we
//! deliberately avoid depending on `rand`'s default generators here so that
//! simulator reproducibility does not change underneath us when the `rand`
//! crate revs its algorithms.

/// A deterministic, seedable pseudo random number generator.
///
/// The implementation is xoshiro256**, which is fast, has a 256-bit state and
/// passes the usual statistical test batteries. It is *not* cryptographically
/// secure; it only needs to be statistically uniform and reproducible.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed using splitmix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s.iter().all(|&x| x == 0) {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Derives an independent child generator, e.g. one per overlay node.
    ///
    /// The child stream is decorrelated from the parent by mixing the salt
    /// through an extra splitmix64 step.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base = self.next_u64() ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
        SimRng::new(base)
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be positive");
        // Lemire-style rejection to avoid modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Returns a uniform `u64` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(0, slice.len())])
        }
    }

    /// Shuffles `slice` in place with a Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct elements from `slice` uniformly at random.
    ///
    /// If `k >= slice.len()` all elements are returned (in shuffled order).
    pub fn sample<T: Clone>(&mut self, slice: &[T], k: usize) -> Vec<T> {
        let mut indices: Vec<usize> = (0..slice.len()).collect();
        self.shuffle(&mut indices);
        indices
            .into_iter()
            .take(k)
            .map(|i| slice[i].clone())
            .collect()
    }

    /// Samples from an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_uniform_enough() {
        let mut rng = SimRng::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 each; allow +-10%.
            assert!((9_000..=11_000).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..=3_000).contains(&hits));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_returns_distinct_elements() {
        let mut rng = SimRng::new(13);
        let pool: Vec<u32> = (0..50).collect();
        let s = rng.sample(&pool, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn sample_caps_at_population() {
        let mut rng = SimRng::new(17);
        let pool: Vec<u32> = (0..5).collect();
        let s = rng.sample(&pool, 10);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut root = SimRng::new(99);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }
}
