//! The simulator's pending-event priority queue.
//!
//! A 4-ary min-heap over a packed `(time, seq)` key. Every queued event
//! carries a unique key — simulated time in the high 64 bits, an
//! ever-increasing sequence number in the low 64 — so the heap order is a
//! *total* order and any correct priority queue pops the exact same event
//! sequence; swapping this in for `std::collections::BinaryHeap` cannot
//! change simulation results. The 4-ary layout halves the tree depth, which
//! matters because workloads with long-lived timers keep hundreds of
//! thousands of events in flight, and each sift then touches half as many
//! cache lines as a binary heap.

/// A min-ordered priority queue keyed by a packed `u128`.
///
/// Keys and values are stored in parallel arrays so the sift loops walk a
/// dense key array — the four children of a 4-ary node occupy a single
/// cache line of keys — and event payloads are only moved on actual swaps.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    keys: Vec<u128>,
    values: Vec<T>,
}

/// Packs an event's time (microseconds) and tie-breaking sequence number
/// into one totally-ordered 128-bit key.
#[inline]
pub fn event_key(time_micros: u64, seq: u64) -> u128 {
    ((time_micros as u128) << 64) | seq as u128
}

/// Extracts the time (microseconds) from a packed key.
#[inline]
pub fn key_time_micros(key: u128) -> u64 {
    (key >> 64) as u64
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The smallest pending key, if any.
    pub fn peek_key(&self) -> Option<u128> {
        self.keys.first().copied()
    }

    /// Inserts an event. `key` values must be unique (the simulator
    /// guarantees this via the sequence number).
    pub fn push(&mut self, key: u128, value: T) {
        self.keys.push(key);
        self.values.push(value);
        self.sift_up(self.keys.len() - 1);
    }

    /// Removes and returns the event with the smallest key.
    pub fn pop(&mut self) -> Option<(u128, T)> {
        let len = self.keys.len();
        if len == 0 {
            return None;
        }
        self.keys.swap(0, len - 1);
        self.values.swap(0, len - 1);
        let key = self.keys.pop().expect("checked non-empty");
        let value = self.values.pop().expect("keys and values stay in step");
        if !self.keys.is_empty() {
            self.sift_down(0);
        }
        Some((key, value))
    }

    /// Removes every event whose value fails `keep`, then restores the heap
    /// invariant in one bottom-up pass.
    ///
    /// Keys are unique and popping always returns the minimum key, so the
    /// pop *sequence* after a `retain` is identical to what it would have
    /// been had the removed events simply been popped and discarded — the
    /// internal array layout cannot leak into simulation results. Used by
    /// the simulator's dead-timer compaction sweep.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let mut write = 0;
        for read in 0..self.keys.len() {
            if keep(&self.values[read]) {
                if write != read {
                    self.keys.swap(write, read);
                    self.values.swap(write, read);
                }
                write += 1;
            }
        }
        self.keys.truncate(write);
        self.values.truncate(write);
        // Floyd heapify: sift every internal node down, deepest first.
        if write > 1 {
            for parent in (0..=(write - 2) / 4).rev() {
                self.sift_down(parent);
            }
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.keys.swap(a, b);
        self.values.swap(a, b);
    }

    #[inline]
    fn sift_up(&mut self, mut child: usize) {
        while child > 0 {
            let parent = (child - 1) / 4;
            if self.keys[parent] <= self.keys[child] {
                break;
            }
            self.swap(parent, child);
            child = parent;
        }
    }

    #[inline]
    fn sift_down(&mut self, mut parent: usize) {
        let len = self.keys.len();
        loop {
            let first_child = parent * 4 + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + 4).min(len);
            let mut smallest = first_child;
            for child in first_child + 1..last_child {
                if self.keys[child] < self.keys[smallest] {
                    smallest = child;
                }
            }
            if self.keys[parent] <= self.keys[smallest] {
                break;
            }
            self.swap(parent, smallest);
            parent = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packing_orders_by_time_then_seq() {
        assert!(event_key(1, 999) < event_key(2, 0));
        assert!(event_key(5, 1) < event_key(5, 2));
        assert_eq!(key_time_micros(event_key(123, 456)), 123);
    }

    #[test]
    fn pops_in_key_order() {
        let mut q = EventQueue::new();
        let keys = [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0];
        for (seq, &t) in keys.iter().enumerate() {
            q.push(event_key(t, seq as u64), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn equal_times_pop_in_sequence_order() {
        let mut q = EventQueue::new();
        for seq in (0..100u64).rev() {
            q.push(event_key(7, seq), seq);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        let expected: Vec<u64> = (0..100).collect();
        assert_eq!(popped, expected);
    }

    #[test]
    fn matches_std_binary_heap_order_on_random_input() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut fast = EventQueue::new();
        let mut reference = BinaryHeap::new();
        // Deterministic pseudo-random mix of times with unique seqs.
        let mut state = 0x1234_5678_9abc_def0u64;
        for seq in 0..10_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = state >> 40;
            fast.push(event_key(t, seq), (t, seq));
            reference.push(Reverse((t, seq)));
        }
        while let Some(Reverse(expected)) = reference.pop() {
            let (_, got) = fast.pop().expect("same length");
            assert_eq!(got, expected);
        }
        assert!(fast.is_empty());
    }

    #[test]
    fn retain_preserves_pop_order_of_kept_events() {
        let mut state = 0xdead_beef_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 40
        };
        let mut q = EventQueue::new();
        let mut kept = Vec::new();
        for seq in 0..5_000u64 {
            let t = next();
            q.push(event_key(t, seq), (t, seq));
            if seq % 3 != 0 {
                kept.push((t, seq));
            }
        }
        q.retain(|&(_, seq)| seq % 3 != 0);
        assert_eq!(q.len(), kept.len());
        kept.sort_unstable();
        let popped: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, kept, "retain changed the pop sequence");
    }

    #[test]
    fn retain_handles_empty_and_full_removal() {
        let mut q: EventQueue<u64> = EventQueue::new();
        q.retain(|_| true);
        assert!(q.is_empty());
        for seq in 0..10 {
            q.push(event_key(seq, seq), seq);
        }
        q.retain(|_| false);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push(event_key(3, 0), "c");
        q.push(event_key(1, 1), "a");
        q.push(event_key(2, 2), "b");
        assert_eq!(q.peek_key(), Some(event_key(1, 1)));
        assert_eq!(q.pop(), Some((event_key(1, 1), "a")));
        assert_eq!(q.len(), 2);
    }
}
