//! The protocol-agent abstraction.
//!
//! Every protocol in this workspace (Bullet, RanSub-over-tree streaming, the
//! gossip baselines) is written as an [`Agent`]: a state machine that reacts
//! to received messages and timer expirations by emitting [`Action`]s. The
//! agent never touches the simulator directly, which keeps the protocol code
//! independent of the runtime that drives it (the discrete-event simulator in
//! this crate, or the thread-based live runtime in the examples).

use bullet_telemetry::{FlightRecorder, TraceData};

use crate::network::OverlayId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Handle to a pending timer, used for cancellation.
///
/// The value packs a slot index (low 32 bits) and a generation stamp (high
/// 32 bits) allocated by [`TimerAlloc`]; a retired id never matches a live
/// slot again, so cancelling an already-fired timer is a cheap no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// Generation-stamped timer slot allocator.
///
/// Each armed timer occupies one slot; firing or cancelling the timer
/// *retires* the slot by bumping its generation and returning it to a free
/// list. A [`TimerId`] is live only while its generation matches its slot's
/// current generation, which gives runtimes O(1) cancellation with no
/// unbounded growth — unlike a cancelled-id set, which leaks an entry every
/// time an agent cancels a timer that already fired.
#[derive(Clone, Debug, Default)]
pub struct TimerAlloc {
    /// Current generation per slot.
    gens: Vec<u32>,
    /// Per-slot `(owning node, tag)` of the currently armed timer. Keeping
    /// the metadata here lets runtimes enqueue just the 8-byte [`TimerId`]
    /// per pending timer.
    meta: Vec<(u32, u64)>,
    /// Retired slots available for reuse.
    free: Vec<u32>,
}

impl TimerAlloc {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn parts(id: TimerId) -> (u32, u32) {
        ((id.0 >> 32) as u32, id.0 as u32)
    }

    /// Allocates a live timer id owned by `node` carrying `tag`, reusing a
    /// retired slot when possible.
    pub fn alloc(&mut self, node: u32, tag: u64) -> TimerId {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.meta[slot as usize] = (node, tag);
                slot
            }
            None => {
                assert!(self.gens.len() < u32::MAX as usize, "timer slots exhausted");
                self.gens.push(0);
                self.meta.push((node, tag));
                (self.gens.len() - 1) as u32
            }
        };
        TimerId(((self.gens[slot as usize] as u64) << 32) | slot as u64)
    }

    /// Whether `id` refers to a timer that has been armed but not yet fired
    /// or cancelled.
    pub fn is_live(&self, id: TimerId) -> bool {
        let (gen, slot) = Self::parts(id);
        self.gens.get(slot as usize) == Some(&gen)
    }

    /// Retires `id` (on firing or cancellation). Returns the timer's
    /// `(node, tag)` if the id was live; retiring an already-retired id is
    /// a no-op returning `None`.
    ///
    /// A slot whose generation reaches `u32::MAX` is never reused: reuse
    /// would let a `TimerId` from 2^32 cycles ago alias a live timer (ABA).
    /// Leaking that one slot keeps stale ids dead forever.
    pub fn retire(&mut self, id: TimerId) -> Option<(u32, u64)> {
        let (gen, slot) = Self::parts(id);
        match self.gens.get_mut(slot as usize) {
            Some(g) if *g == gen => {
                *g = g.wrapping_add(1);
                if *g != u32::MAX {
                    self.free.push(slot);
                }
                Some(self.meta[slot as usize])
            }
            _ => None,
        }
    }

    /// The `(node, tag)` of a live timer without retiring it, or `None`
    /// if `id` is stale.
    pub fn peek(&self, id: TimerId) -> Option<(u32, u64)> {
        self.is_live(id).then(|| self.meta[id.0 as u32 as usize])
    }

    /// Number of currently live (armed) timers.
    pub fn live(&self) -> usize {
        self.gens.len() - self.free.len()
    }

    /// Total slots ever allocated — the allocator's high-water mark.
    pub fn slots(&self) -> usize {
        self.gens.len()
    }
}

/// Classification of a message for accounting purposes.
///
/// The paper reports per-node *control overhead* (≈30 Kbps) separately from
/// application data; tagging each send lets the harness reproduce that split
/// without protocols having to maintain their own byte counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Application payload (stream data).
    Data,
    /// Protocol control traffic (RanSub sets, Bloom filters, peering
    /// requests, transport feedback, ...).
    Control,
}

/// An output emitted by an agent in response to an event.
#[derive(Clone, Debug)]
pub enum Action<M> {
    /// Send `msg` of `size_bytes` to overlay participant `to`.
    Send {
        /// Destination overlay participant.
        to: OverlayId,
        /// The message payload.
        msg: M,
        /// Serialized size used for bandwidth accounting on the wire.
        size_bytes: u32,
        /// Data or control classification.
        class: MsgClass,
        /// Optional trace id for link-stress accounting.
        trace: Option<u64>,
    },
    /// Arm a timer that fires after `delay` with the given `tag`.
    SetTimer {
        /// Timer handle allocated by the context.
        id: TimerId,
        /// Delay until expiry.
        delay: SimDuration,
        /// Application-defined discriminator echoed back on expiry.
        tag: u64,
    },
    /// Cancel a previously armed timer.
    CancelTimer(TimerId),
}

/// The execution context handed to an agent callback.
///
/// It records the agent's outputs; the runtime applies them after the
/// callback returns. This "collect then apply" structure is what lets the
/// same protocol code run under both the simulator and a live runtime.
pub struct Context<'a, M> {
    now: SimTime,
    node: OverlayId,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action<M>>,
    timers: &'a mut TimerAlloc,
    /// Optional flight-recorder sink for protocol-level trace events
    /// (`None` unless the driving runtime installed one; recording never
    /// feeds back into protocol behaviour).
    recorder: Option<&'a mut FlightRecorder>,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context. Used by runtimes; protocol code only consumes it.
    pub fn new(
        now: SimTime,
        node: OverlayId,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action<M>>,
        timers: &'a mut TimerAlloc,
    ) -> Self {
        Context {
            now,
            node,
            rng,
            actions,
            timers,
            recorder: None,
        }
    }

    /// Creates a context with a flight-recorder sink attached, so agent
    /// callbacks can emit protocol trace events via [`Context::trace`].
    pub fn with_recorder(
        now: SimTime,
        node: OverlayId,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action<M>>,
        timers: &'a mut TimerAlloc,
        recorder: Option<&'a mut FlightRecorder>,
    ) -> Self {
        Context {
            now,
            node,
            rng,
            actions,
            timers,
            recorder,
        }
    }

    /// Whether any category in `mask` is being traced. Protocol code
    /// guards event construction behind this so the untraced path costs
    /// one branch.
    #[inline]
    pub fn tracing(&self, mask: u32) -> bool {
        self.recorder.as_ref().is_some_and(|rec| rec.wants(mask))
    }

    /// Records a protocol trace event on this node at the current sim
    /// time. A no-op without a recorder (or outside its category mask).
    #[inline]
    pub fn trace(&mut self, data: TraceData) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(self.now.as_micros(), self.node as u32, data);
        }
    }

    /// The current simulated (or wall-clock) time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The overlay id of the agent being invoked.
    pub fn node(&self) -> OverlayId {
        self.node
    }

    /// The deterministic random number generator for this run.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends an application-data message.
    pub fn send_data(&mut self, to: OverlayId, msg: M, size_bytes: u32) {
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
            class: MsgClass::Data,
            trace: None,
        });
    }

    /// Sends an application-data message carrying a trace id for link-stress
    /// accounting.
    pub fn send_data_traced(&mut self, to: OverlayId, msg: M, size_bytes: u32, trace: u64) {
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
            class: MsgClass::Data,
            trace: Some(trace),
        });
    }

    /// Sends a protocol-control message.
    pub fn send_control(&mut self, to: OverlayId, msg: M, size_bytes: u32) {
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
            class: MsgClass::Control,
            trace: None,
        });
    }

    /// Arms a timer firing after `delay`; `tag` is echoed back to
    /// [`Agent::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.timers.alloc(self.node as u32, tag);
        self.actions.push(Action::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired timer is
    /// a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }
}

/// A protocol endpoint running on one overlay participant.
pub trait Agent: Sized {
    /// The wire message type exchanged between agents of this protocol.
    type Msg: Clone;

    /// Invoked once when the run starts, before any message is delivered.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Invoked when a message from `from` is delivered to this agent.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: OverlayId, msg: Self::Msg);

    /// Invoked when a timer armed via [`Context::set_timer`] expires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, tag: u64);

    /// Rewrites a data message an adversarial sender is corrupting in
    /// flight (a `FaultPlan` with `corrupt_chance` hit; see the simulator's
    /// fault plumbing). *Which* packets are corrupted is drawn off the
    /// simulator RNG; what corruption *means* is protocol-specific, so the
    /// protocol supplies the rewrite — e.g. Bullet flips the block digest
    /// its data packets carry. The default leaves messages untouched, so
    /// protocols that ignore adversaries run unchanged under any plan.
    fn tamper(msg: Self::Msg) -> Self::Msg {
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_records_actions_in_order() {
        let mut rng = SimRng::new(1);
        let mut actions = Vec::new();
        let mut timers = TimerAlloc::new();
        let mut ctx: Context<'_, &'static str> = Context::new(
            SimTime::from_secs(1),
            3,
            &mut rng,
            &mut actions,
            &mut timers,
        );
        ctx.send_data(5, "payload", 1500);
        ctx.send_control(6, "ctrl", 100);
        let timer = ctx.set_timer(SimDuration::from_secs(5), 42);
        ctx.cancel_timer(timer);
        assert_eq!(actions.len(), 4);
        match &actions[0] {
            Action::Send {
                to,
                size_bytes,
                class,
                ..
            } => {
                assert_eq!(*to, 5);
                assert_eq!(*size_bytes, 1500);
                assert_eq!(*class, MsgClass::Data);
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &actions[2] {
            Action::SetTimer { id, tag, .. } => {
                assert_eq!(*id, TimerId(0));
                assert_eq!(*tag, 42);
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &actions[3] {
            Action::CancelTimer(id) => assert_eq!(*id, TimerId(0)),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn timer_ids_are_unique_across_contexts() {
        let mut rng = SimRng::new(1);
        let mut timers = TimerAlloc::new();
        let mut first = Vec::new();
        let id_a = Context::<'_, ()>::new(SimTime::ZERO, 0, &mut rng, &mut first, &mut timers)
            .set_timer(SimDuration::from_secs(1), 0);
        let mut second = Vec::new();
        let id_b = Context::<'_, ()>::new(SimTime::ZERO, 0, &mut rng, &mut second, &mut timers)
            .set_timer(SimDuration::from_secs(1), 0);
        assert_ne!(id_a, id_b);
    }

    #[test]
    fn timer_alloc_reuses_retired_slots_without_id_collisions() {
        let mut alloc = TimerAlloc::new();
        let a = alloc.alloc(3, 100);
        let b = alloc.alloc(4, 200);
        assert!(alloc.is_live(a) && alloc.is_live(b));
        assert_eq!(
            alloc.retire(a),
            Some((3, 100)),
            "live id retires to its meta"
        );
        assert_eq!(alloc.retire(a), None, "double retire is a no-op");
        assert!(!alloc.is_live(a));
        // The slot is reused but the generation differs, so the old id stays
        // dead and the new timer's metadata wins.
        let c = alloc.alloc(5, 300);
        assert_ne!(a, c);
        assert_eq!(a.0 as u32, c.0 as u32, "slot is reused");
        assert!(!alloc.is_live(a));
        assert!(alloc.is_live(c));
        assert_eq!(alloc.retire(c), Some((5, 300)));
        assert_eq!(alloc.retire(b), Some((4, 200)));
        assert_eq!(alloc.slots(), 2, "no growth from the retire/alloc cycle");
    }

    #[test]
    fn cancelling_after_fire_does_not_grow_state() {
        // The regression the slab fixes: a cancelled-id set grows forever
        // when agents cancel timers that already fired.
        let mut alloc = TimerAlloc::new();
        for i in 0..10_000u64 {
            let id = alloc.alloc(0, i);
            assert_eq!(alloc.retire(id), Some((0, i)), "fire");
            assert_eq!(alloc.retire(id), None, "cancel after fire is a no-op");
        }
        assert_eq!(alloc.slots(), 1, "a single slot is recycled throughout");
        assert_eq!(alloc.live(), 0);
    }
}
