//! The protocol-agent abstraction.
//!
//! Every protocol in this workspace (Bullet, RanSub-over-tree streaming, the
//! gossip baselines) is written as an [`Agent`]: a state machine that reacts
//! to received messages and timer expirations by emitting [`Action`]s. The
//! agent never touches the simulator directly, which keeps the protocol code
//! independent of the runtime that drives it (the discrete-event simulator in
//! this crate, or the thread-based live runtime in the examples).

use crate::network::OverlayId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Handle to a pending timer, used for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// Classification of a message for accounting purposes.
///
/// The paper reports per-node *control overhead* (≈30 Kbps) separately from
/// application data; tagging each send lets the harness reproduce that split
/// without protocols having to maintain their own byte counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Application payload (stream data).
    Data,
    /// Protocol control traffic (RanSub sets, Bloom filters, peering
    /// requests, transport feedback, ...).
    Control,
}

/// An output emitted by an agent in response to an event.
#[derive(Clone, Debug)]
pub enum Action<M> {
    /// Send `msg` of `size_bytes` to overlay participant `to`.
    Send {
        /// Destination overlay participant.
        to: OverlayId,
        /// The message payload.
        msg: M,
        /// Serialized size used for bandwidth accounting on the wire.
        size_bytes: u32,
        /// Data or control classification.
        class: MsgClass,
        /// Optional trace id for link-stress accounting.
        trace: Option<u64>,
    },
    /// Arm a timer that fires after `delay` with the given `tag`.
    SetTimer {
        /// Timer handle allocated by the context.
        id: TimerId,
        /// Delay until expiry.
        delay: SimDuration,
        /// Application-defined discriminator echoed back on expiry.
        tag: u64,
    },
    /// Cancel a previously armed timer.
    CancelTimer(TimerId),
}

/// The execution context handed to an agent callback.
///
/// It records the agent's outputs; the runtime applies them after the
/// callback returns. This "collect then apply" structure is what lets the
/// same protocol code run under both the simulator and a live runtime.
pub struct Context<'a, M> {
    now: SimTime,
    node: OverlayId,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action<M>>,
    next_timer_id: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context. Used by runtimes; protocol code only consumes it.
    pub fn new(
        now: SimTime,
        node: OverlayId,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action<M>>,
        next_timer_id: &'a mut u64,
    ) -> Self {
        Context {
            now,
            node,
            rng,
            actions,
            next_timer_id,
        }
    }

    /// The current simulated (or wall-clock) time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The overlay id of the agent being invoked.
    pub fn node(&self) -> OverlayId {
        self.node
    }

    /// The deterministic random number generator for this run.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends an application-data message.
    pub fn send_data(&mut self, to: OverlayId, msg: M, size_bytes: u32) {
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
            class: MsgClass::Data,
            trace: None,
        });
    }

    /// Sends an application-data message carrying a trace id for link-stress
    /// accounting.
    pub fn send_data_traced(&mut self, to: OverlayId, msg: M, size_bytes: u32, trace: u64) {
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
            class: MsgClass::Data,
            trace: Some(trace),
        });
    }

    /// Sends a protocol-control message.
    pub fn send_control(&mut self, to: OverlayId, msg: M, size_bytes: u32) {
        self.actions.push(Action::Send {
            to,
            msg,
            size_bytes,
            class: MsgClass::Control,
            trace: None,
        });
    }

    /// Arms a timer firing after `delay`; `tag` is echoed back to
    /// [`Agent::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired timer is
    /// a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }
}

/// A protocol endpoint running on one overlay participant.
pub trait Agent: Sized {
    /// The wire message type exchanged between agents of this protocol.
    type Msg: Clone;

    /// Invoked once when the run starts, before any message is delivered.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Invoked when a message from `from` is delivered to this agent.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: OverlayId, msg: Self::Msg);

    /// Invoked when a timer armed via [`Context::set_timer`] expires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, tag: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_records_actions_in_order() {
        let mut rng = SimRng::new(1);
        let mut actions = Vec::new();
        let mut next_timer = 0;
        let mut ctx: Context<'_, &'static str> =
            Context::new(SimTime::from_secs(1), 3, &mut rng, &mut actions, &mut next_timer);
        ctx.send_data(5, "payload", 1500);
        ctx.send_control(6, "ctrl", 100);
        let timer = ctx.set_timer(SimDuration::from_secs(5), 42);
        ctx.cancel_timer(timer);
        assert_eq!(actions.len(), 4);
        match &actions[0] {
            Action::Send { to, size_bytes, class, .. } => {
                assert_eq!(*to, 5);
                assert_eq!(*size_bytes, 1500);
                assert_eq!(*class, MsgClass::Data);
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &actions[2] {
            Action::SetTimer { id, tag, .. } => {
                assert_eq!(*id, TimerId(0));
                assert_eq!(*tag, 42);
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &actions[3] {
            Action::CancelTimer(id) => assert_eq!(*id, TimerId(0)),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn timer_ids_are_unique_across_contexts() {
        let mut rng = SimRng::new(1);
        let mut next_timer = 0;
        let mut first = Vec::new();
        let id_a = Context::<'_, ()>::new(SimTime::ZERO, 0, &mut rng, &mut first, &mut next_timer)
            .set_timer(SimDuration::from_secs(1), 0);
        let mut second = Vec::new();
        let id_b = Context::<'_, ()>::new(SimTime::ZERO, 0, &mut rng, &mut second, &mut next_timer)
            .set_timer(SimDuration::from_secs(1), 0);
        assert_ne!(id_a, id_b);
    }
}
