//! Shortest-path routing over the physical topology.
//!
//! The paper assumes fixed IP unicast routing between overlay participants
//! (OMBT assumption 1). We model that with per-source Dijkstra shortest path
//! trees computed over link propagation delay, which is how the INET-placed
//! topologies derive their routes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::link::{DirectedLinkId, RouterId};

/// Adjacency representation used by the router: for each router, the list of
/// `(neighbor, directed link id, cost)` edges leaving it.
#[derive(Clone, Debug, Default)]
pub struct Adjacency {
    edges: Vec<Vec<(RouterId, DirectedLinkId, u64)>>,
}

impl Adjacency {
    /// Creates an adjacency structure for `routers` nodes.
    pub fn new(routers: usize) -> Self {
        Adjacency {
            edges: vec![Vec::new(); routers],
        }
    }

    /// Adds a directed edge.
    pub fn add_edge(&mut self, from: RouterId, to: RouterId, link: DirectedLinkId, cost: u64) {
        self.edges[from].push((to, link, cost));
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the topology has no routers.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Edges leaving `router`.
    pub fn neighbors(&self, router: RouterId) -> &[(RouterId, DirectedLinkId, u64)] {
        &self.edges[router]
    }
}

/// The shortest path tree rooted at one source router.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: RouterId,
    /// For each router, the directed link used to reach it on the shortest
    /// path from `source` (and the router that link comes from).
    prev: Vec<Option<(RouterId, DirectedLinkId)>>,
    /// Shortest path cost from `source` to each router; `u64::MAX` if
    /// unreachable.
    dist: Vec<u64>,
}

impl ShortestPaths {
    /// Runs Dijkstra from `source` over the adjacency structure.
    pub fn compute(adj: &Adjacency, source: RouterId) -> Self {
        let n = adj.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<(RouterId, DirectedLinkId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0;
        heap.push(Reverse((0u64, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, link, cost) in adj.neighbors(u) {
                let nd = d.saturating_add(cost);
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = Some((u, link));
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        ShortestPaths { source, prev, dist }
    }

    /// The source router this tree is rooted at.
    pub fn source(&self) -> RouterId {
        self.source
    }

    /// Shortest-path cost to `dst`, or `None` if unreachable.
    pub fn cost_to(&self, dst: RouterId) -> Option<u64> {
        (self.dist[dst] != u64::MAX).then_some(self.dist[dst])
    }

    /// The sequence of directed link ids on the path from the source to
    /// `dst`, or `None` if `dst` is unreachable.
    pub fn path_to(&self, dst: RouterId) -> Option<Vec<DirectedLinkId>> {
        if self.dist[dst] == u64::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != self.source {
            let (p, link) = self.prev[cur]?;
            path.push(link);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a line topology 0 - 1 - 2 - 3 with unit costs, where the
    /// directed link id from i to i+1 is `2*i` and the reverse is `2*i+1`.
    fn line(n: usize) -> Adjacency {
        let mut adj = Adjacency::new(n);
        for i in 0..n - 1 {
            adj.add_edge(i, i + 1, 2 * i, 1);
            adj.add_edge(i + 1, i, 2 * i + 1, 1);
        }
        adj
    }

    #[test]
    fn path_on_a_line() {
        let adj = line(4);
        let sp = ShortestPaths::compute(&adj, 0);
        assert_eq!(sp.cost_to(3), Some(3));
        assert_eq!(sp.path_to(3), Some(vec![0, 2, 4]));
        assert_eq!(sp.path_to(0), Some(vec![]));
    }

    #[test]
    fn unreachable_node_reports_none() {
        let mut adj = Adjacency::new(3);
        adj.add_edge(0, 1, 0, 1);
        adj.add_edge(1, 0, 1, 1);
        let sp = ShortestPaths::compute(&adj, 0);
        assert_eq!(sp.cost_to(2), None);
        assert_eq!(sp.path_to(2), None);
    }

    #[test]
    fn picks_cheaper_of_two_routes() {
        // 0 -> 1 -> 2 costs 2; direct 0 -> 2 costs 5.
        let mut adj = Adjacency::new(3);
        adj.add_edge(0, 1, 0, 1);
        adj.add_edge(1, 2, 1, 1);
        adj.add_edge(0, 2, 2, 5);
        let sp = ShortestPaths::compute(&adj, 0);
        assert_eq!(sp.cost_to(2), Some(2));
        assert_eq!(sp.path_to(2), Some(vec![0, 1]));
    }

    #[test]
    fn reverse_direction_uses_reverse_links() {
        let adj = line(3);
        let sp = ShortestPaths::compute(&adj, 2);
        assert_eq!(sp.path_to(0), Some(vec![3, 1]));
    }
}
